//! Property-based tests over the core data structures and invariants.

use ipm_repro::ipm::{
    from_xml, merge_runs, to_xml, validate_chrome_trace, ChromeTrace, CompactPolicy,
    EventSignature, Export, PerfTable, ProfileEntry, RankProfile, TraceKind, TraceRank,
    TraceRecord, TraceRing,
};
use ipm_repro::numlib::{blaskernels, fftkernels, Complex64, FftDirection, Transpose};
use ipm_repro::sim::{RunningStats, SimClock, SimRng};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Performance hash table vs a reference model
// ---------------------------------------------------------------------

proptest! {
    /// PerfTable agrees with a naive HashMap model for any update stream.
    #[test]
    fn perf_table_matches_reference_model(
        updates in prop::collection::vec(
            ((0u8..6), (0u64..4), (0u16..3), 0.0f64..10.0),
            1..200,
        )
    ) {
        let names = ["cudaMemcpy(D2H)", "cudaLaunch", "MPI_Send", "@CUDA_HOST_IDLE", "cublasZgemm", "cufftExecZ2Z"];
        let table = PerfTable::new();
        let mut model: std::collections::HashMap<(u8, u64, u16), RunningStats> =
            std::collections::HashMap::new();
        for &(n, bytes, region, dur) in &updates {
            let sig = EventSignature::call(names[n as usize], bytes).in_region(region);
            table.update(&sig, dur);
            model.entry((n, bytes, region)).or_default().record(dur);
        }
        prop_assert_eq!(table.len(), model.len());
        for ((n, bytes, region), want) in model {
            let sig = EventSignature::call(names[n as usize], bytes).in_region(region);
            let got = table.get(&sig).expect("entry exists");
            prop_assert_eq!(got.count, want.count);
            prop_assert!((got.total - want.total).abs() < 1e-9);
            prop_assert_eq!(got.min, want.min);
            prop_assert_eq!(got.max, want.max);
        }
    }

    /// Capacity caps are respected for arbitrary shapes.
    #[test]
    fn perf_table_never_exceeds_capacity(cap in 1usize..32, shards in 1usize..8, n in 0u64..200) {
        let table = PerfTable::with_shape(cap, shards);
        for i in 0..n {
            table.update(&EventSignature::call("x", i), 0.5);
        }
        prop_assert!(table.len() <= cap);
        prop_assert_eq!(table.len() as u64 + table.overflow(), n);
    }
}

// ---------------------------------------------------------------------
// XML round trip for arbitrary profiles
// ---------------------------------------------------------------------

fn arb_profile() -> impl Strategy<Value = RankProfile> {
    let entry = (
        "[a-zA-Z@_()<>&\"0-9]{1,24}",
        prop::option::of("[a-z_]{1,16}"),
        any::<u32>(),
        0u16..4,
        1u64..1000,
        0.0f64..100.0,
    )
        .prop_map(|(name, detail, bytes, region, count, total)| {
            let mut stats = RunningStats::new();
            for i in 0..count.min(5) {
                stats.record(total / (i + 1) as f64);
            }
            ProfileEntry {
                name,
                detail,
                bytes: bytes as u64,
                region,
                stats,
            }
        });
    (
        0usize..512,
        "[ -~]{0,40}",
        prop::collection::vec(entry, 0..20),
        0.0f64..1e5,
    )
        .prop_map(|(rank, command, entries, wallclock)| RankProfile {
            rank,
            nranks: rank + 1,
            host: format!("dirac{:02}", rank % 48),
            command,
            wallclock,
            regions: vec!["<program>".to_owned(), "solve & report".to_owned()],
            entries,
            dropped_events: rank as u64,
            monitor: Default::default(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Any profile round-trips exactly through the XML dialect.
    #[test]
    fn xml_roundtrip_is_identity(profile in arb_profile()) {
        let xml = to_xml(&profile);
        let back = from_xml(&xml).expect("parse");
        prop_assert_eq!(back, profile);
    }
}

// ---------------------------------------------------------------------
// Numerics: FFT and GEMM invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Forward-then-inverse FFT recovers the signal (scaled by n).
    #[test]
    fn fft_roundtrip(signal in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..6)) {
        // extend to the next power of two
        let n = signal.len().next_power_of_two().max(2);
        let mut data: Vec<Complex64> =
            signal.iter().map(|&(re, im)| Complex64::new(re, im)).collect();
        data.resize(n, Complex64::ZERO);
        let orig = data.clone();
        fftkernels::fft_in_place(&mut data, FftDirection::Forward);
        fftkernels::fft_in_place(&mut data, FftDirection::Inverse);
        for (got, want) in data.iter().zip(&orig) {
            let scaled = got.scale(1.0 / n as f64);
            prop_assert!((scaled - *want).abs() < 1e-6,
                "{scaled:?} vs {want:?}");
        }
    }

    /// Parseval: energy is preserved (up to the 1/n convention).
    #[test]
    fn fft_parseval(signal in prop::collection::vec(-1e2f64..1e2, 4..5)) {
        let n = 16;
        let mut data: Vec<Complex64> =
            signal.iter().map(|&re| Complex64::new(re, 0.0)).collect();
        data.resize(n, Complex64::ZERO);
        let time_energy: f64 = data.iter().map(|c| c.norm_sqr()).sum();
        fftkernels::fft_in_place(&mut data, FftDirection::Forward);
        let freq_energy: f64 = data.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time_energy - freq_energy).abs() <= 1e-6 * time_energy.max(1.0));
    }

    /// GEMM: identity is neutral and alpha scales linearly.
    #[test]
    fn dgemm_identity_and_scaling(
        vals in prop::collection::vec(-1e3f64..1e3, 9..10),
        alpha in -8.0f64..8.0,
    ) {
        let n = 3;
        let a = vals.clone();
        let mut ident = vec![0.0; n * n];
        for i in 0..n {
            ident[i * n + i] = 1.0;
        }
        // I * A = A
        let mut c = vec![0.0; n * n];
        blaskernels::dgemm(Transpose::N, Transpose::N, n, n, n, 1.0, &ident, n, &a, n, 0.0, &mut c, n);
        for (got, want) in c.iter().zip(&a) {
            prop_assert!((got - want).abs() < 1e-9);
        }
        // alpha * (A*I) = alpha * A
        let mut c2 = vec![0.0; n * n];
        blaskernels::dgemm(Transpose::N, Transpose::N, n, n, n, alpha, &a, n, &ident, n, 0.0, &mut c2, n);
        for (got, want) in c2.iter().zip(&a) {
            prop_assert!((got - alpha * want).abs() < 1e-6 * want.abs().max(1.0));
        }
    }

    /// Transposing both operands transposes the product:
    /// (A^T B^T)^T = B A.
    #[test]
    fn dgemm_transpose_identity(
        a in prop::collection::vec(-100.0f64..100.0, 4..5),
        b in prop::collection::vec(-100.0f64..100.0, 4..5),
    ) {
        let n = 2;
        let mut ba = vec![0.0; 4];
        blaskernels::dgemm(Transpose::N, Transpose::N, n, n, n, 1.0, &b, n, &a, n, 0.0, &mut ba, n);
        let mut atbt = vec![0.0; 4];
        blaskernels::dgemm(Transpose::T, Transpose::T, n, n, n, 1.0, &a, n, &b, n, 0.0, &mut atbt, n);
        // (A^T B^T) should equal (B A)^T
        for i in 0..n {
            for j in 0..n {
                prop_assert!((atbt[j * n + i] - ba[i * n + j]).abs() < 1e-9);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Clock and RNG invariants
// ---------------------------------------------------------------------

proptest! {
    /// The virtual clock is monotone under any interleaving of advance
    /// and advance_to.
    #[test]
    fn clock_is_monotone(ops in prop::collection::vec((any::<bool>(), 0.0f64..100.0), 1..50)) {
        let clock = SimClock::new();
        let mut last = 0.0;
        for (kind, v) in ops {
            if kind {
                clock.advance(v);
            } else {
                clock.advance_to(v);
            }
            let now = clock.now();
            prop_assert!(now >= last, "clock went backwards: {last} -> {now}");
            last = now;
        }
    }

    /// RunningStats invariants: min <= mean <= max, total = sum.
    #[test]
    fn running_stats_invariants(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut stats = RunningStats::new();
        for &v in &values {
            stats.record(v);
        }
        prop_assert_eq!(stats.count as usize, values.len());
        prop_assert!(stats.min <= stats.mean() + 1e-9);
        prop_assert!(stats.mean() <= stats.max + 1e-9);
        let sum: f64 = values.iter().sum();
        prop_assert!((stats.total - sum).abs() < 1e-6 * sum.abs().max(1.0));
    }

    /// SimRng uniform draws respect their bounds; below() respects n.
    #[test]
    fn rng_bounds(seed in any::<u64>(), lo in -1e3f64..0.0, width in 0.001f64..1e3, n in 1u64..1000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let u = rng.uniform_in(lo, lo + width);
            prop_assert!(u >= lo && u < lo + width);
            prop_assert!(rng.below(n) < n);
        }
    }
}

// ---------------------------------------------------------------------
// MPI collectives vs sequential folds
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Allreduce equals the sequential fold over all contributions, for
    /// any rank count and payload.
    #[test]
    fn allreduce_matches_sequential_fold(
        nranks in 1usize..6,
        base in prop::collection::vec(-1e3f64..1e3, 1..8),
    ) {
        use ipm_repro::mpi::{ReduceOp, World};
        let base = std::sync::Arc::new(base);
        let expected: Vec<f64> = base
            .iter()
            .map(|v| (0..nranks).map(|r| v + r as f64).sum())
            .collect();
        let outs = World::run(nranks, |rank| {
            let mine: Vec<f64> = base.iter().map(|v| v + rank.rank() as f64).collect();
            rank.allreduce_f64(&mine, ReduceOp::Sum).expect("allreduce")
        });
        for got in outs {
            for (g, w) in got.iter().zip(&expected) {
                prop_assert!((g - w).abs() < 1e-6 * w.abs().max(1.0));
            }
        }
    }
}

// ---------------------------------------------------------------------
// GPU runtime semantics
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// For any sequence of kernels and syncs, a synchronous D2H copy never
    /// completes before every previously launched kernel's device time has
    /// elapsed — the implicit-blocking invariant IPM relies on.
    #[test]
    fn sync_d2h_waits_for_all_prior_kernels(
        durations in prop::collection::vec(1e-4f64..5e-2, 1..10),
    ) {
        use ipm_repro::gpu::{launch_kernel, GpuConfig, GpuRuntime, Kernel, KernelCost, LaunchConfig};
        let rt = GpuRuntime::single(GpuConfig::dirac_node().with_context_init(0.0));
        let dev = rt.malloc(64).expect("malloc");
        let total: f64 = durations.iter().sum();
        for &d in &durations {
            let k = Kernel::timed("k", KernelCost::Fixed(d));
            launch_kernel(&rt, &k, LaunchConfig::simple(1u32, 1u32), &[]).expect("launch");
        }
        let mut out = [0u8; 64];
        rt.memcpy_d2h(&mut out, dev).expect("d2h");
        prop_assert!(
            rt.clock().now() >= total,
            "host at {} before kernels totalling {total} finished",
            rt.clock().now()
        );
    }

    /// Event timestamps recorded on one stream are monotone in record
    /// order, whatever work is interleaved.
    #[test]
    fn event_timestamps_are_monotone_per_stream(
        plan in prop::collection::vec((any::<bool>(), 1e-5f64..1e-2), 2..12),
    ) {
        use ipm_repro::gpu::{launch_kernel, GpuConfig, GpuRuntime, Kernel, KernelCost, LaunchConfig, StreamId};
        let rt = GpuRuntime::single(GpuConfig::dirac_node().with_context_init(0.0));
        let mut events = Vec::new();
        for (do_kernel, dur) in plan {
            if do_kernel {
                let k = Kernel::timed("k", KernelCost::Fixed(dur));
                launch_kernel(&rt, &k, LaunchConfig::simple(1u32, 1u32), &[]).expect("launch");
            }
            let ev = rt.event_create().expect("event");
            rt.event_record(ev, StreamId::DEFAULT).expect("record");
            events.push(ev);
        }
        rt.thread_synchronize().expect("sync");
        for pair in events.windows(2) {
            let dt = rt.event_elapsed_time(pair[0], pair[1]).expect("elapsed");
            prop_assert!(dt >= 0.0, "events out of order: {dt}");
        }
    }
}

// ---------------------------------------------------------------------
// Streaming trace: ring accounting and Chrome-trace export
// ---------------------------------------------------------------------

fn trace_rec(
    kind: TraceKind,
    name: &str,
    begin: f64,
    end: f64,
    stream: Option<u32>,
    corr: u64,
) -> TraceRecord {
    TraceRecord {
        kind,
        name: name.into(),
        detail: None,
        begin,
        end,
        bytes: 0,
        region: 0,
        stream,
        corr,
        agg: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Under concurrent emission from several ranks' worth of threads, the
    /// trace ring's books balance exactly whatever the capacity and stripe
    /// shape: captured + dropped == emitted, and a drain hands back
    /// precisely the captured records in timestamp order.
    #[test]
    fn trace_ring_accounting_exact_under_concurrent_emission(
        capacity in 1usize..257,
        shards in 1usize..9,
        pushes in prop::collection::vec(0usize..300, 1..5),
    ) {
        let ring = TraceRing::new(capacity, shards);
        std::thread::scope(|s| {
            for (t, &n) in pushes.iter().enumerate() {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..n {
                        let b = (t * 1000 + i) as f64;
                        ring.push(trace_rec(
                            TraceKind::Call, "cudaStreamQuery", b, b + 0.5, None, 0,
                        ));
                    }
                });
            }
        });
        let total: u64 = pushes.iter().map(|&n| n as u64).sum();
        prop_assert_eq!(ring.emitted(), total);
        prop_assert_eq!(ring.captured() + ring.dropped(), ring.emitted());
        prop_assert!(ring.captured() <= ring.capacity() as u64);
        prop_assert!(ring.high_water_mark() <= ring.capacity() as u64);
        let drained = ring.drain();
        prop_assert_eq!(drained.len() as u64, ring.captured());
        for w in drained.windows(2) {
            prop_assert!(w[0].begin <= w[1].begin, "drain not time-sorted");
        }
        // Counters are cumulative; draining frees space without forgetting.
        prop_assert!(ring.is_empty());
        prop_assert_eq!(ring.captured() + ring.dropped(), total);
        prop_assert!(ring.push(trace_rec(TraceKind::Call, "x", 0.0, 1.0, None, 0)));
        prop_assert_eq!(ring.emitted(), total + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Any generated multi-rank workload exports to structurally valid
    /// Chrome trace-event JSON: balanced B/E slices, per-lane monotone
    /// timestamps, every flow arrow paired — with the exact slice, lane,
    /// process, and flow counts the workload implies. Names include quotes,
    /// backslashes, and control characters to exercise JSON escaping.
    #[test]
    fn chrome_trace_export_is_well_formed(
        plans in prop::collection::vec(
            prop::collection::vec(
                // (is_launch, name index, duration, gap before, stream)
                (any::<bool>(), 0usize..6, 1e-6f64..1e-2, 0.0f64..1e-3, 0u32..3),
                1..25,
            ),
            1..4,
        ),
    ) {
        let names = [
            "cudaLaunch",
            "cudaMemcpy(H2D)",
            "MPI_Allreduce",
            "odd \"name\" with \\escapes\tand\ncontrol",
            "@CUDA_HOST_IDLE",
            "cuCtxCreate",
        ];
        let mut corr = 0u64;
        let mut launches = 0usize;
        let mut total = 0usize;
        let mut lanes = 0usize;
        let ranks: Vec<TraceRank> = plans
            .iter()
            .enumerate()
            .map(|(r, plan)| {
                let mut records = Vec::new();
                let mut host_t = 0.0f64;
                let mut stream_t = [0.0f64; 3];
                let mut streams_used = std::collections::HashSet::new();
                for &(is_launch, name, dur, gap, stream) in plan {
                    let begin = host_t + gap;
                    let end = begin + dur;
                    host_t = end;
                    let kind =
                        if name == 4 { TraceKind::HostIdle } else { TraceKind::Call };
                    let c = if is_launch {
                        corr += 1;
                        launches += 1;
                        corr
                    } else {
                        0
                    };
                    records.push(trace_rec(kind, names[name], begin, end, None, c));
                    total += 1;
                    if is_launch {
                        // The matching device-side execution on its stream.
                        let s = stream as usize;
                        let kb = stream_t[s].max(end);
                        let ke = kb + dur;
                        stream_t[s] = ke;
                        records.push(trace_rec(
                            TraceKind::KernelExec,
                            "@CUDA_EXEC",
                            kb,
                            ke,
                            Some(stream),
                            c,
                        ));
                        total += 1;
                        streams_used.insert(stream);
                    }
                }
                lanes += 1 + streams_used.len(); // host lane + device lanes
                TraceRank {
                    rank: r,
                    host: format!("dirac{r:02}"),
                    epoch: 0.0,
                    records,
                    prof: Vec::new(),
                }
            })
            .collect();
        let nranks = ranks.len();
        let export = ranks.into_iter().fold(Export::new(), Export::with_trace_rank);
        let json = export.to(ChromeTrace).expect("ranks present");
        let stats = match validate_chrome_trace(&json) {
            Ok(stats) => stats,
            Err(e) => return Err(TestCaseError::fail(format!("invalid trace: {e}"))),
        };
        prop_assert_eq!(stats.processes, nranks);
        prop_assert_eq!(stats.slices, total);
        prop_assert_eq!(stats.flow_pairs, launches);
        prop_assert_eq!(stats.lanes, lanes);
    }
}

// ---------------------------------------------------------------------
// Trace compaction: conservation, bounding, and merge-vs-sort equivalence
// ---------------------------------------------------------------------

/// Timestamp quantum for conservation properties: durations and gaps are
/// integer multiples of 2^-20 s, so every partial sum is a dyadic rational
/// well inside f64's exact-integer range — summation order cannot perturb
/// totals and `==` on f64 sums is legitimate.
const Q: f64 = 1.0 / (1 << 20) as f64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Compaction conserves per-signature event count and total busy time
    /// EXACTLY (not approximately), whatever the record stream, cap, or
    /// stripe shape; summary min/max never escape the durations actually
    /// merged; and the widened accounting invariant closes.
    #[test]
    fn compaction_conserves_per_signature_count_and_time(
        capacity in 32usize..400,
        shards in 1usize..5,
        high_water in 4usize..48,
        // (signature index, duration steps, gap steps)
        stream in prop::collection::vec((0usize..4, 1u32..64, 0u32..32), 1..400),
    ) {
        let names = ["cudaLaunch", "cudaMemcpy(H2D)", "MPI_Allreduce", "@CUDA_HOST_IDLE"];
        let ring = TraceRing::with_policy(
            capacity, shards, CompactPolicy::with_high_water(high_water),
        );
        // reference model: per-signature (count, total, min, max) over the
        // records the ring actually accepted
        let mut model = std::collections::HashMap::<usize, (u64, f64, f64, f64)>::new();
        let mut t = 0.0f64;
        let mut accepted = 0u64;
        for &(sig, dur, gap) in &stream {
            let begin = t + gap as f64 * Q;
            let end = begin + dur as f64 * Q;
            t = end;
            let kind = if sig == 3 { TraceKind::HostIdle } else { TraceKind::Call };
            if ring.push(trace_rec(kind, names[sig], begin, end, None, 0)) {
                accepted += 1;
                let e = model.entry(sig).or_insert((0, 0.0, f64::INFINITY, 0.0));
                e.0 += 1;
                e.1 += dur as f64 * Q;
                e.2 = e.2.min(dur as f64 * Q);
                e.3 = e.3.max(dur as f64 * Q);
            }
        }
        prop_assert_eq!(
            ring.captured() + ring.dropped() + ring.compacted_away(),
            ring.emitted()
        );
        prop_assert_eq!(ring.emitted(), stream.len() as u64);
        prop_assert_eq!(ring.emitted() - ring.dropped(), accepted);
        let drained = ring.drain();
        let mut got = std::collections::HashMap::<usize, (u64, f64)>::new();
        for r in &drained {
            let sig = names.iter().position(|n| **n == *r.name).expect("known name");
            let e = got.entry(sig).or_default();
            e.0 += r.event_count();
            e.1 += r.busy_total();
            if let Some(a) = r.agg {
                let (_, _, min, max) = model[&sig];
                prop_assert!(a.min >= min && a.max <= max,
                    "summary [{}, {}] escapes merged durations [{min}, {max}]", a.min, a.max);
                prop_assert!(a.min <= a.max);
                let (eb, ee) = a.exemplar;
                prop_assert!(eb >= r.begin && ee <= r.end, "exemplar outside summary span");
                prop_assert!((ee - eb) == a.max, "exemplar is the longest merged record");
            }
        }
        for (sig, (count, total, _, _)) in model {
            let (gc, gt) = got.get(&sig).copied().unwrap_or_default();
            prop_assert_eq!(gc, count, "event count not conserved for {}", names[sig]);
            // exact: quantized dyadic durations make every sum exact
            prop_assert_eq!(gt, total, "busy time not conserved for {}", names[sig]);
        }
    }

    /// A compacted multi-stripe drain always exports to structurally valid
    /// Chrome trace JSON. Writers rotate stripes, so each stripe compacts
    /// an interleaved subsequence of a burst and per-stripe summaries can
    /// partially overlap in time — the exporter must render summaries as
    /// self-contained `X` events (B/E nesting cannot express the overlap).
    #[test]
    fn compacted_multi_stripe_drain_exports_valid_chrome_trace(
        shards in 1usize..9,
        high_water in 2usize..24,
        // (signature index, duration steps, gap steps)
        stream in prop::collection::vec((0usize..4, 1u32..64, 0u32..16), 1..400),
    ) {
        let names = ["cudaLaunch", "cudaMemcpy(H2D)", "@CUDA_HOST_IDLE", "@CUDA_EXEC_STRM00"];
        let ring = TraceRing::with_policy(
            1 << 12, shards, CompactPolicy::with_high_water(high_water),
        );
        let mut t = 0.0f64;
        for &(sig, dur, gap) in &stream {
            let begin = t + gap as f64 * Q;
            let end = begin + dur as f64 * Q;
            t = end;
            let (kind, stream_id) = match sig {
                2 => (TraceKind::HostIdle, None),
                3 => (TraceKind::KernelExec, Some(0)),
                _ => (TraceKind::Call, None),
            };
            ring.push(trace_rec(kind, names[sig], begin, end, stream_id, 0));
        }
        let rank = TraceRank {
            rank: 0,
            host: "dirac00".to_owned(),
            epoch: 0.0,
            records: ring.drain(),
            prof: Vec::new(),
        };
        let json = Export::new()
            .with_trace_rank(rank)
            .to(ChromeTrace)
            .expect("rank present");
        if let Err(e) = validate_chrome_trace(&json) {
            return Err(TestCaseError::fail(format!("invalid compacted trace: {e}")));
        }
    }

    /// The k-way merged drain equals the old sort-everything drain
    /// record-for-record on uncompacted input: merging the per-stripe runs
    /// reproduces a stable global sort of the stripes' concatenation, ties
    /// and all.
    #[test]
    fn merged_drain_equals_global_sort_reference(
        capacity in 8usize..300,
        shards in 1usize..9,
        // unordered (begin, duration) pairs, coarse enough to force ties
        stream in prop::collection::vec((0u32..24, 0u32..4), 1..300),
    ) {
        let ring = TraceRing::new(capacity, shards);
        for (i, &(begin, dur)) in stream.iter().enumerate() {
            ring.push(trace_rec(
                TraceKind::Call,
                ["a", "b", "c"][i % 3],
                begin as f64 * 0.125,
                (begin + dur) as f64 * 0.125,
                None,
                i as u64 + 1, // distinct corrs make records distinguishable
            ));
        }
        let runs = ring.snapshot_runs();
        for run in &runs {
            for w in run.windows(2) {
                prop_assert!(
                    (w[0].begin, w[0].end) <= (w[1].begin, w[1].end),
                    "stripe run not pre-sorted"
                );
            }
        }
        // the old drain: concatenate stripes, stable-sort by (begin, end)
        let mut reference: Vec<TraceRecord> = runs.iter().flatten().cloned().collect();
        reference.sort_by(|a, b| {
            a.begin
                .partial_cmp(&b.begin)
                .unwrap()
                .then(a.end.partial_cmp(&b.end).unwrap())
        });
        let merged = merge_runs(runs);
        prop_assert_eq!(&merged, &reference, "merge differs from stable global sort");
        prop_assert_eq!(&ring.snapshot(), &reference);
        prop_assert_eq!(&ring.drain(), &reference);
    }
}

/// The ISSUE acceptance case, pinned as a plain test: a 1M-event synthetic
/// run against a 4k-per-stripe cap stays under the cap without dropping a
/// single event's accounting, and conserves per-signature count and busy
/// time exactly.
#[test]
fn million_event_run_stays_under_cap_and_conserves() {
    const HW: usize = 4096;
    const N: u64 = 1_000_000;
    let ring = TraceRing::with_policy(1 << 16, 8, CompactPolicy::with_high_water(HW));
    let names = ["cudaLaunch", "cudaMemcpy(D2H)", "MPI_Send"];
    let mut t = 0.0f64;
    let mut pushed_per_sig = [0u64; 3];
    for i in 0..N {
        // bursty mix: runs of identical calls, the shape compaction targets
        let sig = ((i / 64) % 3) as usize;
        let dur = ((i % 13) + 1) as f64 * Q;
        let accepted = ring.push(trace_rec(TraceKind::Call, names[sig], t, t + dur, None, 0));
        assert!(accepted, "compacting ring must never drop (event {i})");
        pushed_per_sig[sig] += 1;
        t += dur + Q;
    }
    assert_eq!(ring.emitted(), N);
    assert_eq!(ring.dropped(), 0);
    assert_eq!(
        ring.captured() + ring.compacted_away(),
        N,
        "accounting closes"
    );
    // 8 stripes, each bounded by the high-water mark plus the compaction
    // gate's len/8 overshoot allowance
    let cap = 8 * (HW + HW / 8 + 1);
    assert!(
        ring.len() <= cap,
        "resident {} exceeds bound {cap}",
        ring.len()
    );
    assert!(ring.high_water_mark() <= cap as u64);
    let drained = ring.drain();
    assert!(drained.len() <= cap);
    let mut count_per_sig = [0u64; 3];
    let mut total_per_sig = [0.0f64; 3];
    for r in &drained {
        let sig = names.iter().position(|n| **n == *r.name).unwrap();
        count_per_sig[sig] += r.event_count();
        total_per_sig[sig] += r.busy_total();
    }
    // expected totals, accumulated the same exact-dyadic way
    let mut want_total = [0.0f64; 3];
    for i in 0..N {
        let sig = ((i / 64) % 3) as usize;
        want_total[sig] += ((i % 13) + 1) as f64 * Q;
    }
    assert_eq!(count_per_sig, pushed_per_sig, "event counts conserved");
    assert_eq!(total_per_sig, want_total, "busy time conserved exactly");
}

// ---------------------------------------------------------------------
// MPI ordering
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Messages between one sender/receiver pair with one tag are
    /// non-overtaking (MPI's ordering guarantee).
    #[test]
    fn same_tag_messages_do_not_overtake(n in 1usize..30) {
        use ipm_repro::mpi::World;
        let outs = World::run(2, |rank| {
            if rank.rank() == 0 {
                for i in 0..n {
                    rank.send(1, 5, &[i as u8]).expect("send");
                }
                Vec::new()
            } else {
                (0..n).map(|_| rank.recv(Some(0), 5).expect("recv").1[0]).collect()
            }
        });
        let got = &outs[1];
        let want: Vec<u8> = (0..n as u8).collect();
        prop_assert_eq!(got, &want);
    }
}

// ---------------------------------------------------------------------
// OTLP export (feature-gated like the backend itself)
// ---------------------------------------------------------------------

#[cfg(feature = "otlp")]
mod otlp_props {
    use super::*;
    use ipm_repro::ipm::{validate_otlp, Otlp};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Whatever a trace ring hands back — compacted summaries, partial
        /// launch/kernel pairs, dropped records, multiple stripes — the
        /// OTLP backend renders a document [`validate_otlp`] accepts, and
        /// the spans/links it reports never exceed what went in.
        #[test]
        fn arbitrary_ring_contents_export_to_valid_otlp(
            capacity in 8usize..300,
            shards in 1usize..9,
            high_water in 2usize..24,
            epoch in 0.0f64..4.0,
            // (signature index, duration steps, gap steps, corr)
            stream in prop::collection::vec(
                (0usize..5, 1u32..64, 0u32..16, 0u64..6), 1..300,
            ),
        ) {
            const Q: f64 = 1.0 / (1 << 20) as f64;
            let names = [
                "cudaLaunch",
                "cudaMemcpy(H2D)",
                "@CUDA_HOST_IDLE",
                "@CUDA_EXEC_STRM00",
                "odd \"name\" with \\escapes",
            ];
            let ring = TraceRing::with_policy(
                capacity, shards, CompactPolicy::with_high_water(high_water),
            );
            let mut t = 0.0f64;
            let mut launches = 0usize;
            for &(sig, dur, gap, corr) in &stream {
                let begin = t + gap as f64 * Q;
                let end = begin + dur as f64 * Q;
                t = end;
                let (kind, stream_id) = match sig {
                    2 => (TraceKind::HostIdle, None),
                    3 => (TraceKind::KernelExec, Some(0)),
                    _ => (TraceKind::Call, None),
                };
                // corr only on launches and kernels, so links can resolve
                let corr = if sig == 0 || sig == 3 { corr } else { 0 };
                if ring.push(trace_rec(kind, names[sig], begin, end, stream_id, corr))
                    && sig == 0 && corr != 0
                {
                    launches += 1;
                }
            }
            let json = Export::new()
                .with_trace_rank(TraceRank {
                    rank: 3,
                    host: "dirac03".to_owned(),
                    epoch,
                    records: ring.drain(),
                    prof: Vec::new(),
                })
                .to(Otlp)
                .expect("rank present");
            let stats = match validate_otlp(&json) {
                Ok(stats) => stats,
                Err(e) => return Err(TestCaseError::fail(format!("invalid OTLP: {e}"))),
            };
            prop_assert_eq!(stats.resources, 1);
            // every span comes from a drained record; a link needs a live
            // launch, so compaction can only shrink these
            prop_assert!(stats.spans as u64 <= ring.captured());
            prop_assert!(stats.links <= launches);
        }
    }
}
