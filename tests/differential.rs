//! Differential test for the record-path refactor: the legacy string-keyed
//! path (a fresh `Arc<str>` per recorded call, one string-hashed map)
//! replayed next to the interned `CallId` path, over real application runs.
//!
//! [`LegacyMirror`] receives every event the primary table receives — the
//! monitor forwards each `update`/`span`/`update_pseudo` to it when
//! installed — and books it the way the pre-interning monitor did. The two
//! paths must then render **byte-identical** banner, region report, and XML
//! for the same run: the refactor changed representation, not results.
//!
//! Runs are single-rank so per-signature float accumulation order is the
//! same on both sides (one thread-local delta cell, flushed once at
//! profile time, merges into an empty shard — i.e. verbatim).

use ipm_repro::apps::{
    run_amber, run_cluster, run_hpl, run_paratec, AmberConfig, BlasBackend, ClusterConfig,
    HplConfig, ParatecConfig, RankCtx,
};
use ipm_repro::ipm::{Banner, Export, IpmConfig, LegacyMirror, RankProfile, RegionReport, Xml};
use std::sync::Arc;

/// Run `app` monitored with the mirror riding along; return the primary
/// profile and a clone of it with the mirror's entries swapped in.
fn mirrored_run<R: Send>(
    cfg: IpmConfig,
    command: &str,
    app: impl Fn(&mut RankCtx) -> R + Send + Sync,
) -> (RankProfile, RankProfile) {
    let cluster = ClusterConfig::dirac(1, 1)
        .with_ipm(cfg)
        .with_command(command);
    let mirror = LegacyMirror::new();
    let hook = Arc::clone(&mirror);
    let run = run_cluster(&cluster, move |ctx| {
        let ipm = ctx.ipm.as_ref().expect("monitored run");
        // nothing is recorded before the app body (library constructors
        // make no monitored calls), so the mirror sees the whole stream
        assert!(
            ipm.profile().entries.is_empty(),
            "events recorded before the mirror could attach"
        );
        ipm.install_mirror(Arc::clone(&hook));
        app(ctx)
    });
    let primary = run.profiles.into_iter().next().expect("one rank");
    let mut legacy = primary.clone();
    legacy.entries = mirror.profile_entries();
    (primary, legacy)
}

/// Banner, region report, and XML for one profile.
fn renderings(p: &RankProfile) -> (String, String, String) {
    (
        Export::from_profile(p.clone())
            .max_rows(0)
            .to(Banner)
            .expect("banner"),
        Export::from_profile(p.clone())
            .max_rows(0)
            .to(RegionReport)
            .expect("region report"),
        Export::from_profile(p.clone()).to(Xml).expect("xml"),
    )
}

fn assert_paths_agree(primary: &RankProfile, legacy: &RankProfile) {
    // entry-level equality first: names, bytes, regions, details, stats
    assert_eq!(
        primary.entries, legacy.entries,
        "interned path and string-keyed path disagree on the table"
    );
    let (banner_a, region_a, xml_a) = renderings(primary);
    let (banner_b, region_b, xml_b) = renderings(legacy);
    assert_eq!(banner_a, banner_b, "banner must be byte-identical");
    assert_eq!(region_a, region_b, "region report must be byte-identical");
    assert_eq!(xml_a, xml_b, "XML log must be byte-identical");
}

/// The MD (PMEMD-like) workload: kernels, transfers, host idle, regions.
#[test]
fn md_profiles_are_identical_across_record_paths() {
    let (primary, legacy) = mirrored_run(IpmConfig::default(), "pmemd.cuda", |ctx| {
        run_amber(ctx, AmberConfig::tiny()).expect("md")
    });
    assert!(
        primary.entries.iter().any(|e| e.name == "cudaLaunch"),
        "md run recorded no launches — differential test is vacuous"
    );
    assert!(
        primary.entries.iter().any(|e| e.name.starts_with('@')),
        "md run produced no pseudo entries (exec/idle) — pseudo path untested"
    );
    assert_paths_agree(&primary, &legacy);
}

/// The Linpack workload: raw kernel launches, event-API synchronization,
/// byte-attributed MPI and async copies.
#[test]
fn hpl_profiles_are_identical_across_record_paths() {
    let (primary, legacy) = mirrored_run(IpmConfig::default(), "xhpl.cuda", |ctx| {
        run_hpl(ctx, HplConfig::tiny()).expect("hpl")
    });
    assert!(
        primary
            .entries
            .iter()
            .any(|e| e.name.starts_with("MPI_") && e.bytes > 0),
        "hpl run recorded no byte-attributed MPI calls"
    );
    assert_paths_agree(&primary, &legacy);
}

/// The PARATEC workload with the thunking-CUBLAS backend: every zgemm
/// routes through the numlib facade with byte attribution.
#[test]
fn paratec_profiles_are_identical_across_record_paths() {
    let (primary, legacy) = mirrored_run(IpmConfig::default(), "paratec.mpi", |ctx| {
        run_paratec(ctx, ParatecConfig::tiny(BlasBackend::CublasThunking)).expect("paratec")
    });
    assert!(
        primary
            .entries
            .iter()
            .any(|e| e.name.starts_with("cublas") && e.bytes > 0),
        "paratec run recorded no byte-attributed cublas calls"
    );
    assert_paths_agree(&primary, &legacy);
}

/// Host-timing-only configuration exercises the non-pseudo half of the
/// path (no KTT booking), with regions still present.
#[test]
fn host_only_md_is_identical_across_record_paths() {
    let (primary, legacy) = mirrored_run(IpmConfig::host_timing_only(), "pmemd.cuda", |ctx| {
        run_amber(ctx, AmberConfig::tiny()).expect("md")
    });
    assert_paths_agree(&primary, &legacy);
}
