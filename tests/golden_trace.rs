//! Golden-file test for the merged multi-rank Chrome-trace export.
//!
//! Builds a deterministic two-rank trace — each rank's ring compacts a
//! host-call burst into a summary record, and the ranks start at different
//! local epochs — then pins the exporter's exact JSON against
//! `results/trace_compacted.json`. Regenerate the golden after an
//! intentional exporter change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```

use ipm_repro::ipm::{
    validate_chrome_trace, ChromeTrace, CompactPolicy, Export, TraceKind, TraceRank, TraceRecord,
    TraceRing,
};

fn rec(
    kind: TraceKind,
    name: &str,
    begin: f64,
    end: f64,
    stream: Option<u32>,
    corr: u64,
) -> TraceRecord {
    TraceRecord {
        kind,
        name: name.into(),
        detail: None,
        begin,
        end,
        bytes: 0,
        region: 0,
        stream,
        corr,
        agg: None,
    }
}

/// One rank's worth of deterministic workload, expressed in that rank's own
/// clock (everything offset by its epoch `e`). Dyadic timestamps keep the
/// exported microsecond values integral, so the JSON is stable digit-for-digit.
fn rank(r: usize, e: f64, corr: u64) -> TraceRank {
    let ring = TraceRing::with_policy(64, 1, CompactPolicy::with_high_water(4));
    for i in 0..6 {
        let b = e + i as f64 * 0.25;
        ring.push(rec(
            TraceKind::Call,
            "cudaMemcpy(H2D)",
            b,
            b + 0.125,
            None,
            0,
        ));
    }
    ring.push(rec(
        TraceKind::Call,
        "cudaLaunch",
        e + 1.5,
        e + 1.625,
        None,
        corr,
    ));
    ring.push(rec(
        TraceKind::KernelExec,
        "@CUDA_EXEC_STRM00",
        e + 1.75,
        e + 2.0,
        Some(0),
        corr,
    ));
    // pushed after the exec record but earlier in time: exercises the
    // per-stripe sort before the merged drain
    ring.push(rec(
        TraceKind::HostIdle,
        "@CUDA_HOST_IDLE",
        e + 1.625,
        e + 1.75,
        None,
        0,
    ));
    assert_eq!(
        ring.captured() + ring.dropped() + ring.compacted_away(),
        ring.emitted()
    );
    assert!(ring.compacted_away() > 0, "burst must compact");
    TraceRank {
        rank: r,
        host: format!("dirac{r:02}"),
        epoch: e,
        records: ring.drain(),
        prof: Vec::new(),
    }
}

#[test]
fn merged_two_rank_export_matches_golden() {
    // rank 1 boots 1.5 virtual seconds after rank 0; epoch alignment must
    // land the identical workloads on identical timestamps anyway
    let json = Export::new()
        .with_trace_rank(rank(0, 1.0, 7))
        .with_trace_rank(rank(1, 2.5, 9))
        .to(ChromeTrace)
        .expect("ranks present");

    // structurally valid: parses, every B closes, ts monotone per lane,
    // every flow start finds its finish
    let stats = validate_chrome_trace(&json).expect("exporter output invalid");
    assert_eq!(stats.processes, 2);
    // per rank: compacted summary + launch + host idle + kernel exec
    assert_eq!(stats.slices, 8);
    assert_eq!(stats.lanes, 4, "host lane + one stream lane per rank");
    assert_eq!(stats.flow_pairs, 2, "one launch→exec arrow per rank");

    // the compacted burst exports as ONE slice carrying its aggregate
    // args: 6 merged copies of 0.125 s each
    assert_eq!(json.matches("\"count\":6").count(), 2);
    assert_eq!(json.matches("\"total_us\":750000").count(), 2);

    // epoch alignment: each rank's first slice sits at ts 0 even though
    // their local clocks started 1.5 s apart
    assert_eq!(json.matches("\"ts\":0,").count(), 2);
    // and the kernel execs land on the same aligned instant on both ranks
    assert_eq!(json.matches("\"ts\":1750000,").count(), 2);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/trace_compacted.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &json).expect("write golden");
    }
    let golden =
        std::fs::read_to_string(path).expect("golden file missing — run with UPDATE_GOLDEN=1");
    assert_eq!(
        json, golden,
        "export drifted from results/trace_compacted.json"
    );
}

/// The same deterministic two-rank workload pinned through the OTLP
/// backend against `results/trace_otlp.json` (regenerate with
/// `UPDATE_GOLDEN=1` after an intentional exporter change).
#[cfg(feature = "otlp")]
#[test]
fn merged_two_rank_otlp_export_matches_golden() {
    use ipm_repro::ipm::{validate_otlp, Otlp};
    let json = Export::new()
        .with_trace_rank(rank(0, 1.0, 7))
        .with_trace_rank(rank(1, 2.5, 9))
        .to(Otlp)
        .expect("ranks present");

    let stats = validate_otlp(&json).expect("exporter output invalid");
    assert_eq!(stats.resources, 2);
    // per rank: compacted summary + launch + host idle + kernel exec
    assert_eq!(stats.spans, 8);
    assert_eq!(stats.links, 2, "one launch→exec link per rank");
    assert_eq!(stats.summary_spans, 2, "one compacted burst per rank");

    // epoch alignment: each rank's first span starts at nano 0 even though
    // their local clocks started 1.5 s apart
    assert_eq!(json.matches("\"startTimeUnixNano\":\"0\"").count(), 2);
    assert_eq!(
        json.matches("\"startTimeUnixNano\":\"1750000000\"").count(),
        2
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/results/trace_otlp.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &json).expect("write golden");
    }
    let golden =
        std::fs::read_to_string(path).expect("golden file missing — run with UPDATE_GOLDEN=1");
    assert_eq!(json, golden, "export drifted from results/trace_otlp.json");
}

/// Link correlation, checked span by span: every `cudaLaunch` span in the
/// OTLP document carries exactly one link, and that link resolves to a
/// kernel-execution span in the same trace.
#[cfg(feature = "otlp")]
#[test]
fn every_launch_span_links_to_its_kernel_span() {
    use ipm_repro::ipm::jsonw::{parse_json, Json};
    use ipm_repro::ipm::Otlp;
    use std::collections::HashMap;

    let json = Export::new()
        .with_trace_rank(rank(0, 1.0, 7))
        .with_trace_rank(rank(1, 2.5, 9))
        .to(Otlp)
        .expect("ranks present");
    let doc = parse_json(&json).expect("parses");

    // first pass: index every span's name by (traceId, spanId)
    let mut names: HashMap<(String, String), String> = HashMap::new();
    let mut spans: Vec<&Json> = Vec::new();
    for rs in doc.get("resourceSpans").and_then(Json::as_arr).unwrap() {
        for scope in rs.get("scopeSpans").and_then(Json::as_arr).unwrap() {
            for span in scope.get("spans").and_then(Json::as_arr).unwrap() {
                let key = (
                    span.get("traceId")
                        .and_then(Json::as_str)
                        .unwrap()
                        .to_owned(),
                    span.get("spanId")
                        .and_then(Json::as_str)
                        .unwrap()
                        .to_owned(),
                );
                let name = span.get("name").and_then(Json::as_str).unwrap().to_owned();
                names.insert(key, name);
                spans.push(span);
            }
        }
    }

    let mut launches = 0;
    for span in spans {
        if span.get("name").and_then(Json::as_str) != Some("cudaLaunch") {
            continue;
        }
        launches += 1;
        let links = span
            .get("links")
            .and_then(Json::as_arr)
            .expect("launch span without links");
        assert_eq!(links.len(), 1);
        let own_trace = span.get("traceId").and_then(Json::as_str).unwrap();
        let lt = links[0].get("traceId").and_then(Json::as_str).unwrap();
        let ls = links[0].get("spanId").and_then(Json::as_str).unwrap();
        assert_eq!(lt, own_trace, "links stay within the rank's trace");
        let target = &names[&(lt.to_owned(), ls.to_owned())];
        assert!(
            target.starts_with("@CUDA_EXEC_STRM"),
            "launch links to '{target}', not a kernel span"
        );
    }
    assert_eq!(launches, 2, "one launch span per rank");
}
