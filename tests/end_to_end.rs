//! Cross-crate integration tests: the full monitored stack end to end.
//!
//! Each test exercises several workspace crates together the way a user
//! of the released tool would: application → (IPM) → substrates →
//! reports → `ipm_parse` round trips.

use ipm_repro::apps::{
    run_amber, run_cluster, run_hpl, run_square, AmberConfig, ClusterConfig, HplConfig,
    SquareConfig,
};
use ipm_repro::gpu::{GpuConfig, GpuRuntime};
use ipm_repro::ipm::{
    banner_from_xml, cluster_banner_from_xml, from_xml, to_xml, Banner, ClusterReport, Export,
    Html, Ipm, IpmConfig, IpmCuda,
};
use std::sync::Arc;

/// The full Fig. 3→Fig. 6 pipeline: app → monitor → banner → XML →
/// ipm_parse → identical banner.
#[test]
fn square_profile_survives_the_xml_roundtrip() {
    let rt = Arc::new(GpuRuntime::single(GpuConfig::dirac_node()));
    let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
    ipm.set_metadata(0, 1, "dirac15", "./cuda.ipm");
    let cuda = IpmCuda::new(ipm.clone(), rt);
    run_square(&cuda, SquareConfig::default()).expect("square");
    cuda.finalize();

    let profile = ipm.profile();
    let direct_banner = Export::from(&ipm).max_rows(0).to(Banner).expect("profile");
    let xml = to_xml(&profile);
    let parsed = from_xml(&xml).expect("parse own XML");
    assert_eq!(parsed, profile);
    let reparsed_banner = banner_from_xml(&xml).expect("banner from XML");
    assert_eq!(direct_banner, reparsed_banner);
}

/// Monitoring must not change application *results* — only add overhead.
#[test]
fn monitoring_is_semantically_transparent() {
    let monitored = {
        let rt = Arc::new(GpuRuntime::single(GpuConfig::dirac_node()));
        let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
        let cuda = IpmCuda::new(ipm, rt);
        run_square(&cuda, SquareConfig::tiny()).expect("square")
    };
    let bare = {
        let rt = GpuRuntime::single(GpuConfig::dirac_node());
        run_square(&rt, SquareConfig::tiny()).expect("square")
    };
    assert_eq!(monitored, bare);
}

/// A multi-rank job: profiles aggregate, parse, and render across every
/// output format.
#[test]
fn cluster_run_feeds_every_report_format() {
    let nranks = 4;
    let cfg = ClusterConfig::dirac(nranks, 2).with_command("xhpl.cuda");
    let run = run_cluster(&cfg, |ctx| run_hpl(ctx, HplConfig::tiny()).expect("hpl"));
    assert_eq!(run.profiles.len(), nranks);

    // per-rank XML logs, like the files IPM writes at job exit
    let xmls: Vec<String> = run.profiles.iter().map(to_xml).collect();
    let banner = cluster_banner_from_xml(&xmls, 2).expect("cluster banner");
    assert!(banner.contains("mpi_tasks : 4 on 2 nodes"));
    assert!(banner.contains("dgemm_nn_e_kernel") || banner.contains("@CUDA_EXEC_STRM"));

    let report = ClusterReport::from_profiles(run.profiles.clone(), 2);
    let html = Export::from_profiles(report.profiles().to_vec())
        .nodes(2)
        .to(Html)
        .expect("ranks present");
    assert!(html.contains("dgemm_nn_e_kernel"));

    let cube = ipm_repro::ipm::build_cube(&report);
    assert!(cube.node_count() > 5);
    let cube_xml = ipm_repro::ipm::cube_to_xml(&cube, &report);
    assert!(cube_xml.contains("<cube"));
}

/// Two ranks sharing one GPU serialize their kernels; the profiles show
/// the contention as longer device times than the exclusive setup.
#[test]
fn shared_gpu_contention_is_visible_in_profiles() {
    let run_with = |nodes: usize| {
        let cfg = ClusterConfig::dirac(2, nodes).with_command("md");
        let mut amber = AmberConfig::tiny();
        amber.steps = 40;
        let run = run_cluster(&cfg, |ctx| run_amber(ctx, amber).expect("md"));
        run.wallclocks.iter().copied().fold(0.0f64, f64::max)
    };
    let exclusive = run_with(2);
    let shared = run_with(1);
    assert!(
        shared > exclusive * 1.05,
        "no visible contention: shared {shared} vs exclusive {exclusive}"
    );
}

/// Trace compaction is observability-internal: an MD cluster run with the
/// compactor off and one with a tight per-stripe cap must produce identical
/// profiles — same wallclocks, same regions, same `@CUDA_EXEC_STRMxx` and
/// `@CUDA_HOST_IDLE` totals, entry-for-entry equal perf tables — while the
/// compacted run's widened trace ledger still accounts for exactly the
/// events the uncompacted run captured.
#[test]
fn trace_compaction_never_perturbs_the_profile() {
    let run_with = |ipm_cfg: IpmConfig| {
        let cfg = ClusterConfig::dirac(2, 2)
            .with_command("md")
            .with_ipm(ipm_cfg);
        let mut amber = AmberConfig::tiny();
        amber.steps = 24;
        run_cluster(&cfg, |ctx| {
            let out = run_amber(ctx, amber).expect("md");
            // a status-poll burst: the adjacent-duplicate record shape
            // compaction exists to collapse in real traces
            for _ in 0..200 {
                ctx.cuda.cuda_get_device_count().expect("poll");
            }
            out
        })
    };
    let off = run_with(IpmConfig::default());
    let on = run_with(IpmConfig::default().with_trace_compaction(32));

    assert_eq!(off.wallclocks, on.wallclocks, "compaction perturbed timing");
    assert_eq!(off.profiles.len(), on.profiles.len());
    let mut compacted = 0;
    for (a, b) in off.profiles.iter().zip(&on.profiles) {
        assert_eq!(a.wallclock, b.wallclock);
        assert_eq!(a.regions, b.regions);
        // entry-for-entry equal perf tables (iteration order over the
        // table's hash stripes is scheduling-dependent, so sort first)
        let sorted = |p: &ipm_repro::ipm::RankProfile| {
            let mut e = p.entries.clone();
            e.sort_by(|x, y| {
                (&x.name, &x.detail, x.bytes, x.region)
                    .cmp(&(&y.name, &y.detail, y.bytes, y.region))
            });
            e
        };
        assert_eq!(sorted(a), sorted(b), "perf table must be untouched");
        // the headline report quantities, spelled out
        assert!(a.time_of("@CUDA_EXEC_STRM00") > 0.0);
        assert_eq!(
            a.time_of("@CUDA_EXEC_STRM00"),
            b.time_of("@CUDA_EXEC_STRM00")
        );
        assert_eq!(a.time_of("@CUDA_HOST_IDLE"), b.time_of("@CUDA_HOST_IDLE"));
        // both runs saw the same event stream; compaction only reshapes it
        assert_eq!(a.monitor.trace_compacted, 0);
        assert_eq!(
            a.monitor.trace_captured + a.monitor.trace_dropped,
            b.monitor.trace_captured + b.monitor.trace_dropped + b.monitor.trace_compacted,
        );
        compacted += b.monitor.trace_compacted;
    }
    assert!(compacted > 0, "tight cap never engaged the compactor");
}

/// The same application binary code runs monitored and unmonitored — the
/// paper's deployment property — and the monitored run self-reports an
/// overhead below 1%.
#[test]
fn dilatation_stays_below_one_percent() {
    let app = |ctx: &mut ipm_repro::apps::RankCtx| run_hpl(ctx, HplConfig::tiny()).expect("hpl");
    let monitored = run_cluster(&ClusterConfig::dirac(2, 2), app);
    let bare = run_cluster(&ClusterConfig::dirac(2, 2).unmonitored(), app);
    let mon_t = monitored.wallclocks.iter().copied().fold(0.0f64, f64::max);
    let bare_t = bare.wallclocks.iter().copied().fold(0.0f64, f64::max);
    let dil = (mon_t - bare_t) / bare_t;
    assert!(dil >= 0.0, "monitored run faster than bare: {dil}");
    assert!(dil < 0.01, "dilatation {dil}");
    // and the outputs agree
    assert_eq!(monitored.outputs[0].gpu_flops, bare.outputs[0].gpu_flops);
}

/// Driver-API usage (cu*) hits the same device state as the runtime API.
#[test]
fn driver_and_runtime_apis_share_one_device() {
    use ipm_repro::gpu::DriverContext;
    let rt = Arc::new(GpuRuntime::single(
        GpuConfig::dirac_node().with_context_init(0.0),
    ));
    let drv = DriverContext::new(rt.clone());
    drv.cu_init(0).expect("cuInit");
    let p = drv.cu_mem_alloc(64).expect("cuMemAlloc");
    drv.cu_memcpy_htod(p, &[5u8; 64]).expect("cuMemcpyHtoD");
    // read back through the *runtime* API
    let mut out = [0u8; 64];
    rt.memcpy_d2h(&mut out, p).expect("cudaMemcpy");
    assert_eq!(out, [5u8; 64]);
    assert_eq!(rt.device().memory_used(), 64);
}

/// The blocking-set microbenchmark, the spec registry, and the monitored
/// facade all agree on which calls block implicitly.
#[test]
fn blocking_classification_is_consistent_across_layers() {
    use ipm_repro::interpose::{BlockingClass, Registry};
    let probes = ipm_repro::ipm::discover_blocking_set();
    let registry = Registry::global();
    let memcpy_spec = registry.spec(registry.id("cudaMemcpy").expect("cudaMemcpy"));
    assert_eq!(memcpy_spec.blocking, BlockingClass::ImplicitSync);
    let memset_spec = registry.spec(registry.id("cudaMemset").expect("cudaMemset"));
    assert_ne!(memset_spec.blocking, BlockingClass::ImplicitSync);
    assert!(probes
        .iter()
        .any(|p| p.name == "cudaMemcpy(D2H)" && p.blocks));
    assert!(probes.iter().any(|p| p.name == "cudaMemset" && !p.blocks));
}
