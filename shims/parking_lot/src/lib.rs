//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the *subset* of parking_lot's API it actually uses —
//! `Mutex` (guard returned directly, no `Result`) and `Condvar`
//! (`wait(&mut guard)` / `notify_*`) — implemented over `std::sync`.
//! Poisoning is deliberately transparent: like the real parking_lot, a
//! panic while holding a lock does not poison it for later users.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike `std`, returns
    /// the guard directly; poisoning from a panicked holder is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` dance lets [`Condvar::wait`]
/// temporarily hand the underlying std guard back to the OS wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Condition variable with parking_lot's `wait(&mut guard)` shape.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard not already waiting");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn poisoned_lock_is_transparent() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: later lockers are unaffected
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wait_and_notify_all() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(h.join().unwrap());
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
