//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates-registry access, so this in-tree
//! shim provides the subset of criterion's API the workspace benches use:
//! `Criterion::bench_function`, `benchmark_group` (with `sample_size`,
//! `throughput`, `bench_function`, `bench_with_input`, `finish`),
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark auto-calibrates an
//! iteration count to a ~50 ms measurement window, then reports the mean
//! time per iteration (plus MB/s when a byte throughput is set). There is
//! no statistical analysis, HTML report, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for a bench within a group: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Work-per-iteration hint used to report a rate next to the mean time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Runs the closure under measurement. Passed to bench closures.
pub struct Bencher {
    /// Mean seconds per iteration, filled in by `iter`.
    mean_secs: f64,
}

const TARGET_WINDOW: Duration = Duration::from_millis(50);
const MAX_CALIBRATION_ITERS: u64 = 1 << 20;

impl Bencher {
    fn new() -> Self {
        Self { mean_secs: 0.0 }
    }

    /// Measure `f`, auto-calibrating the iteration count so the timed
    /// window is long enough to be meaningful but short enough to keep
    /// bench suites fast.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: double iterations until one batch takes >= ~5 ms.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_WINDOW / 10 || iters >= MAX_CALIBRATION_ITERS {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 2;
        };

        // Measure one window sized from the calibration estimate.
        let measured_iters = ((TARGET_WINDOW.as_secs_f64() / per_iter.max(1e-12)) as u64)
            .clamp(1, MAX_CALIBRATION_ITERS);
        let start = Instant::now();
        for _ in 0..measured_iters {
            black_box(f());
        }
        self.mean_secs = start.elapsed().as_secs_f64() / measured_iters as f64;
    }

    /// Mean seconds per iteration from the last `iter` call.
    pub fn mean_secs(&self) -> f64 {
        self.mean_secs
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn report(label: &str, mean_secs: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if mean_secs > 0.0 => {
            format!("  {:.1} MiB/s", n as f64 / mean_secs / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if mean_secs > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / mean_secs)
        }
        _ => String::new(),
    };
    println!("{label:<48} time: {:>10}{rate}", fmt_time(mean_secs));
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, b.mean_secs, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named group of related benches.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes its own windows.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.label),
            b.mean_secs,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.label),
            b.mean_secs,
            self.throughput,
        );
        self
    }

    pub fn finish(self) {}
}

/// Collects bench functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Bytes(1024));
        g.bench_function(BenchmarkId::new("sum", 8), |b| {
            b.iter(|| (0..8u64).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter(16), &16u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
