//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates-registry access, so this in-tree
//! shim provides the subset of proptest's API the workspace tests use:
//!
//! - `proptest! { ... }` with optional `#![proptest_config(...)]`
//! - `prop_assert!` / `prop_assert_eq!`
//! - numeric `Range` strategies, regex-lite `&str` strategies
//!   (`"[a-z]{1,16}"` char-class form), tuples up to 6 elements,
//!   `prop::collection::vec`, `prop::option::of`, `any::<T>()`,
//!   `.prop_map(...)`
//!
//! Differences from real proptest, by design: cases are generated from a
//! deterministic per-test seed (FNV of the test name + case index), there
//! is **no shrinking** (a failing case panics with the generated inputs'
//! case number), and the default case count is 64.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG: SplitMix64, deterministic per test name.
// ---------------------------------------------------------------------------

/// Deterministic RNG handed to strategies during generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5D,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Core trait + config + error.
// ---------------------------------------------------------------------------

/// A value generator. Unlike real proptest there is no value tree or
/// shrinking: `generate` directly yields a case input.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategies are generated through shared references inside the macro
/// expansion, so blanket-impl for references too.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Per-test configuration; only `cases` is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Error type returned by `prop_assert!` family via early `return`.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Driver called by the `proptest!` expansion. Panics on the first
/// failing case, reporting the case index (inputs are reproducible from
/// the deterministic seed).
pub fn run_proptest<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    for i in 0..config.cases {
        let seed = base ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case {}/{}: {msg}",
                    i + 1,
                    config.cases
                )
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Numeric range strategies.
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// `any::<T>()`.
// ---------------------------------------------------------------------------

/// Types with a full-domain default strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric; avoids NaN/inf which real proptest also
        // excludes by default.
        (rng.next_f64() - 0.5) * 2.0e12
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Regex-lite string strategies: `"[chars]{m,n}"`.
// ---------------------------------------------------------------------------

fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };

    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` range form: needs a char on both sides of the dash.
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo <= hi {
                for c in lo..=hi {
                    if let Some(c) = char::from_u32(c) {
                        chars.push(c);
                    }
                }
                i += 3;
                continue;
            }
        }
        chars.push(class[i]);
        i += 1;
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, min, max))
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_char_class(self) {
            Some((chars, min, max)) => {
                let len = min + rng.below((max - min + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            // Not a `[...]{m,n}` pattern: treat as a literal constant.
            None => (*self).to_string(),
        }
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies (2..=6).
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// Constant strategy (`Just`).
// ---------------------------------------------------------------------------

/// Always yields a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// `prop::` namespace: collections and options.
// ---------------------------------------------------------------------------

pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Length bound accepted by [`vec`]: a range or an exact count.
        pub struct SizeRange {
            min: usize,
            max: usize, // inclusive
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec length range");
                Self {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                Self {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { min: n, max: n }
            }
        }

        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len =
                    self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }
    }

    pub mod option {
        use super::super::{Strategy, TestRng};

        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                // Real proptest defaults to ~75% Some.
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }

        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     /// doc comments and attributes carry through
///     fn my_test(x in 0u32..10, (a, b) in (0f64..1.0, any::<bool>())) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $config;
            $crate::run_proptest(stringify!($name), &__config, |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; on failure the case returns an error
/// (reported with the case index) instead of unwinding mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` ({}:{})\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                __l
            )));
        }
    }};
}

// ---------------------------------------------------------------------------
// Prelude.
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        fn int_range_in_bounds(x in 3u64..17) {
            prop_assert!((3..17).contains(&x));
        }

        fn f64_range_in_bounds(x in -1e3f64..1e3) {
            prop_assert!((-1e3..1e3).contains(&x), "got {}", x);
        }

        fn string_class_respects_len(s in "[a-z_]{1,16}") {
            prop_assert!(!s.is_empty() && s.len() <= 16);
            prop_assert!(s.chars().all(|c| c == '_' || c.is_ascii_lowercase()));
        }

        fn tuples_and_vec((a, b) in (0u8..6, 0u16..3), v in prop::collection::vec(0u32..100, 0usize..8)) {
            prop_assert!(a < 6 && b < 3);
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        fn option_and_map(o in prop::option::of(1u64..10), m in (0u8..4).prop_map(|x| x * 2)) {
            if let Some(x) = o {
                prop_assert!((1..10).contains(&x));
            }
            prop_assert_eq!(m % 2, 0);
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_panics_with_index() {
        crate::run_proptest("always_fails", &ProptestConfig::with_cases(3), |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
