//! Offline stand-in for the `loom` model checker.
//!
//! Real loom simulates threads on one OS thread and explores every
//! interleaving allowed by the C11 memory model. This shim keeps the part the
//! workspace relies on — *exhaustive exploration of schedules around
//! synchronisation points* — with a much simpler construction:
//!
//! - every `loom::thread::spawn` is a real OS thread, but a cooperative
//!   scheduler lets **exactly one** managed thread run at a time;
//! - each lock acquisition and atomic access is a *switch point* where the
//!   scheduler may hand control to any other runnable thread;
//! - the sequence of scheduling decisions is recorded, and [`model`] replays
//!   prefixes depth-first until every branch has been visited (or the
//!   `LOOM_MAX_ITERATIONS` bound is hit).
//!
//! Because only one thread runs between switch points, all explored
//! executions are sequentially consistent. That is weaker than real loom (no
//! weak-memory reorderings) but strictly stronger than the property tests it
//! backs: every SC interleaving of lock/atomic operations is visited, not a
//! random sample.
//!
//! Outside [`model`] every primitive falls back to its `std` equivalent, so
//! code compiled with `--cfg loom` still behaves sensibly if executed by a
//! regular test harness.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

const MAIN: usize = 0;
/// Sentinel for "no thread is current" (all threads finished).
const NOBODY: usize = usize::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    BlockedOnLock(usize),
    BlockedOnJoin(usize),
    Finished,
}

struct State {
    threads: Vec<TState>,
    current: usize,
    /// `(chosen, options)` for every branch point (>1 runnable thread) so far.
    decisions: Vec<(usize, usize)>,
    /// Choices to replay from a previous execution, one per branch point.
    replay: Vec<usize>,
}

struct Sched {
    state: StdMutex<State>,
    cv: Condvar,
}

impl Sched {
    fn new(replay: Vec<usize>) -> Self {
        Sched {
            state: StdMutex::new(State {
                threads: vec![TState::Runnable],
                current: MAIN,
                decisions: Vec::new(),
                replay,
            }),
            cv: Condvar::new(),
        }
    }

    /// Pick the next thread to run. Called with the state lock held, after
    /// the caller has updated its own entry in `threads`.
    fn pick_next(&self, st: &mut State) {
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|s| *s == TState::Finished) {
                st.current = NOBODY;
                self.cv.notify_all();
                return;
            }
            panic!(
                "loom-shim: deadlock — no runnable threads (states: {:?})",
                st.threads
            );
        }
        let chosen = if runnable.len() == 1 {
            0
        } else {
            let branch = st.decisions.len();
            let c = if branch < st.replay.len() {
                st.replay[branch]
            } else {
                0
            };
            assert!(c < runnable.len(), "loom-shim: replay diverged");
            st.decisions.push((c, runnable.len()));
            c
        };
        st.current = runnable[chosen];
        self.cv.notify_all();
    }

    /// Register `my_state` for the calling thread, schedule the next thread,
    /// then block until control returns to the caller.
    fn reschedule(&self, me: usize, my_state: TState) {
        let mut st = self.state.lock().unwrap();
        st.threads[me] = my_state;
        self.pick_next(&mut st);
        while st.current != me {
            assert!(
                st.current != NOBODY,
                "loom-shim: execution finished while a thread was waiting"
            );
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Plain preemption point: any runnable thread may run next.
    fn switch(&self, me: usize) {
        self.reschedule(me, TState::Runnable);
    }

    /// Block until the mutex with id `mid` is released, then resume.
    fn block_on_lock(&self, me: usize, mid: usize) {
        self.reschedule(me, TState::BlockedOnLock(mid));
    }

    /// Block until thread `target` finishes.
    fn block_on_join(&self, me: usize, target: usize) {
        let finished = {
            let st = self.state.lock().unwrap();
            st.threads[target] == TState::Finished
        };
        if !finished {
            self.reschedule(me, TState::BlockedOnJoin(target));
        }
    }

    /// Mark waiters of mutex `mid` runnable again (they re-contend at their
    /// next scheduling turn). Unlock itself is not a branch point.
    fn on_unlock(&self, mid: usize) {
        let mut st = self.state.lock().unwrap();
        for s in st.threads.iter_mut() {
            if *s == TState::BlockedOnLock(mid) {
                *s = TState::Runnable;
            }
        }
    }

    fn register_thread(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.threads.push(TState::Runnable);
        st.threads.len() - 1
    }

    /// First scheduling wait of a freshly spawned thread.
    fn wait_until_current(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        while st.current != me {
            assert!(st.current != NOBODY, "loom-shim: spawned thread orphaned");
            st = self.cv.wait(st).unwrap();
        }
    }

    fn finish(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        st.threads[me] = TState::Finished;
        for s in st.threads.iter_mut() {
            if *s == TState::BlockedOnJoin(me) {
                *s = TState::Runnable;
            }
        }
        self.pick_next(&mut st);
    }

    fn is_finished(&self, target: usize) -> bool {
        self.state.lock().unwrap().threads[target] == TState::Finished
    }
}

fn active_slot() -> &'static StdMutex<Option<Arc<Sched>>> {
    static ACTIVE: OnceLock<StdMutex<Option<Arc<Sched>>>> = OnceLock::new();
    ACTIVE.get_or_init(|| StdMutex::new(None))
}

thread_local! {
    static MANAGED_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// `(scheduler, managed thread id)` if the calling thread is inside a model.
fn managed() -> Option<(Arc<Sched>, usize)> {
    let id = MANAGED_ID.with(|c| c.get())?;
    let sched = active_slot().lock().unwrap().clone()?;
    Some((sched, id))
}

/// Index of the calling managed thread (0 = the thread that called
/// [`model`]), or `None` outside a model. Deterministic across replayed
/// executions, unlike `std::thread::current().id()`.
pub fn managed_thread_index() -> Option<usize> {
    MANAGED_ID.with(|c| c.get())
}

fn explicit_switch_point() {
    if let Some((sched, me)) = managed() {
        sched.switch(me);
    }
}

fn next_replay_prefix(decisions: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut d = decisions.to_vec();
    while let Some((chosen, options)) = d.pop() {
        if chosen + 1 < options {
            let mut prefix: Vec<usize> = d.iter().map(|&(c, _)| c).collect();
            prefix.push(chosen + 1);
            return Some(prefix);
        }
    }
    None
}

fn iteration_cap() -> u64 {
    std::env::var("LOOM_MAX_ITERATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

/// Run `f` under every schedule the shim can distinguish (depth-first over
/// branch points), up to `LOOM_MAX_ITERATIONS` executions (default 100 000).
///
/// Models must be self-contained: create all shared state inside `f` and join
/// every spawned thread before returning.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    // Serialise models: the scheduler slot is process-global.
    static MODEL_GATE: OnceLock<StdMutex<()>> = OnceLock::new();
    let _gate = MODEL_GATE
        .get_or_init(|| StdMutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner());

    let cap = iteration_cap();
    let mut replay: Vec<usize> = Vec::new();
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        let sched = Arc::new(Sched::new(replay.clone()));
        *active_slot().lock().unwrap() = Some(sched.clone());
        MANAGED_ID.with(|c| c.set(Some(MAIN)));

        let outcome = catch_unwind(AssertUnwindSafe(&f));

        MANAGED_ID.with(|c| c.set(None));
        *active_slot().lock().unwrap() = None;
        let st = sched.state.lock().unwrap_or_else(|p| p.into_inner());
        if let Err(payload) = outcome {
            eprintln!(
                "loom-shim: model failed on iteration {iterations} \
                 (schedule: {:?})",
                st.decisions
            );
            std::panic::resume_unwind(payload);
        }
        assert!(
            st.threads.iter().skip(1).all(|s| *s == TState::Finished),
            "loom-shim: model returned with unjoined threads"
        );
        match next_replay_prefix(&st.decisions) {
            Some(p) => replay = p,
            None => break,
        }
        if iterations >= cap {
            eprintln!(
                "loom-shim: stopping after {iterations} executions \
                 (LOOM_MAX_ITERATIONS bound) — exploration incomplete"
            );
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

pub mod thread {
    use super::*;

    enum Inner<T> {
        Managed {
            sched: Arc<Sched>,
            idx: usize,
            result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
            os: std::thread::JoinHandle<()>,
        },
        Plain(std::thread::JoinHandle<T>),
    }

    /// Handle for a thread spawned with [`spawn`]; `join` mirrors
    /// `std::thread::JoinHandle::join`.
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Managed {
                    sched,
                    idx,
                    result,
                    os,
                } => {
                    let (_, me) = managed().expect("join of a managed thread outside its model");
                    sched.block_on_join(me, idx);
                    debug_assert!(sched.is_finished(idx));
                    // The OS thread is past its last scheduler interaction;
                    // reap it so no thread leaks across executions.
                    os.join().expect("loom-shim: worker thread vanished");
                    result
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .take()
                        .expect("loom-shim: joined thread left no result")
                }
                Inner::Plain(h) => h.join(),
            }
        }
    }

    /// Spawn a managed thread inside a model (a plain `std` thread outside).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match managed() {
            Some((sched, me)) => {
                let idx = sched.register_thread();
                let result = Arc::new(StdMutex::new(None));
                let result2 = Arc::clone(&result);
                let sched2 = Arc::clone(&sched);
                let os = std::thread::spawn(move || {
                    MANAGED_ID.with(|c| c.set(Some(idx)));
                    sched2.wait_until_current(idx);
                    let r = catch_unwind(AssertUnwindSafe(f));
                    *result2.lock().unwrap_or_else(|p| p.into_inner()) = Some(r);
                    MANAGED_ID.with(|c| c.set(None));
                    sched2.finish(idx);
                });
                // Spawning is itself a branch point: the child may run first.
                sched.switch(me);
                JoinHandle(Inner::Managed {
                    sched,
                    idx,
                    result,
                    os,
                })
            }
            None => JoinHandle(Inner::Plain(std::thread::spawn(f))),
        }
    }

    /// Cooperative yield: inside a model, a branch point; outside, the OS
    /// scheduler's `yield_now`.
    pub fn yield_now() {
        if managed().is_some() {
            explicit_switch_point();
        } else {
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------------
// sync
// ---------------------------------------------------------------------------

pub mod sync {
    use super::*;

    pub use std::sync::Arc;

    static NEXT_MUTEX_ID: AtomicUsize = AtomicUsize::new(0);

    /// Scheduler-aware mutex. `lock` returns the guard directly (the
    /// parking_lot convention used throughout this workspace), and a thread
    /// blocked on a held lock is *not schedulable*, so exploration stays
    /// finite where a spin loop would diverge.
    pub struct Mutex<T> {
        id: usize,
        inner: StdMutex<T>,
    }

    pub struct MutexGuard<'a, T> {
        // `Option` so `drop` can release the std guard before notifying the
        // scheduler that waiters may re-contend.
        inner: Option<std::sync::MutexGuard<'a, T>>,
        mid: usize,
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex {
                id: NEXT_MUTEX_ID.fetch_add(1, StdOrdering::Relaxed),
                inner: StdMutex::new(value),
            }
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            if let Some((sched, me)) = managed() {
                loop {
                    sched.switch(me);
                    match self.inner.try_lock() {
                        Ok(g) => {
                            return MutexGuard {
                                inner: Some(g),
                                mid: self.id,
                            }
                        }
                        Err(std::sync::TryLockError::WouldBlock) => {
                            sched.block_on_lock(me, self.id);
                        }
                        Err(std::sync::TryLockError::Poisoned(p)) => {
                            return MutexGuard {
                                inner: Some(p.into_inner()),
                                mid: self.id,
                            }
                        }
                    }
                }
            } else {
                let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
                MutexGuard {
                    inner: Some(g),
                    mid: self.id,
                }
            }
        }

        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard already released")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard already released")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            self.inner.take();
            if let Some((sched, _)) = managed() {
                sched.on_unlock(self.mid);
            }
        }
    }

    pub mod atomic {
        use super::super::explicit_switch_point;

        pub use std::sync::atomic::Ordering;

        macro_rules! shim_atomic {
            ($name:ident, $std:ident, $ty:ty) => {
                /// Atomic whose every access is a scheduler branch point.
                pub struct $name(std::sync::atomic::$std);

                impl $name {
                    pub fn new(v: $ty) -> Self {
                        Self(std::sync::atomic::$std::new(v))
                    }
                    pub fn load(&self, order: Ordering) -> $ty {
                        explicit_switch_point();
                        self.0.load(order)
                    }
                    pub fn store(&self, v: $ty, order: Ordering) {
                        explicit_switch_point();
                        self.0.store(v, order)
                    }
                    pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                        explicit_switch_point();
                        self.0.fetch_add(v, order)
                    }
                    pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                        explicit_switch_point();
                        self.0.fetch_max(v, order)
                    }
                    pub fn compare_exchange(
                        &self,
                        cur: $ty,
                        new: $ty,
                        ok: Ordering,
                        err: Ordering,
                    ) -> Result<$ty, $ty> {
                        explicit_switch_point();
                        self.0.compare_exchange(cur, new, ok, err)
                    }
                }
            };
        }

        shim_atomic!(AtomicU64, AtomicU64, u64);
        shim_atomic!(AtomicUsize, AtomicUsize, usize);
        shim_atomic!(AtomicU16, AtomicU16, u16);

        /// Atomic bool whose every access is a scheduler branch point.
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            pub fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }
            pub fn load(&self, order: Ordering) -> bool {
                explicit_switch_point();
                self.0.load(order)
            }
            pub fn store(&self, v: bool, order: Ordering) {
                explicit_switch_point();
                self.0.store(v, order)
            }
            pub fn compare_exchange(
                &self,
                cur: bool,
                new: bool,
                ok: Ordering,
                err: Ordering,
            ) -> Result<bool, bool> {
                explicit_switch_point();
                self.0.compare_exchange(cur, new, ok, err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};
    use super::*;

    #[test]
    fn explores_both_orders_of_two_increments() {
        // With two racing lock-increment threads the final count is always 2;
        // the point is that model() terminates and visits >1 schedule.
        let schedules = Arc::new(std::sync::Mutex::new(0u64));
        let schedules2 = Arc::clone(&schedules);
        model(move || {
            *schedules2.lock().unwrap() += 1;
            let n = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let mut g = n.lock();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*n.lock(), 2);
        });
        assert!(*schedules.lock().unwrap() > 1, "only one schedule explored");
    }

    #[test]
    fn finds_atomicity_violation() {
        // A non-atomic read-modify-write over an atomic cell must lose an
        // update under SOME schedule; prove the shim finds it.
        let lost = Arc::new(std::sync::Mutex::new(false));
        let lost2 = Arc::clone(&lost);
        let result = std::panic::catch_unwind(AssertUnwindSafe(move || {
            model(move || {
                let n = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let n = Arc::clone(&n);
                        thread::spawn(move || {
                            let v = n.load(Ordering::SeqCst);
                            n.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                if n.load(Ordering::SeqCst) != 2 {
                    *lost2.lock().unwrap() = true;
                    panic!("lost update found (expected)");
                }
            });
        }));
        assert!(result.is_err(), "exploration missed the lost update");
        assert!(*lost.lock().unwrap());
    }

    #[test]
    fn managed_index_is_stable() {
        model(|| {
            assert_eq!(managed_thread_index(), Some(0));
            let h = thread::spawn(managed_thread_index);
            assert_eq!(h.join().unwrap(), Some(1));
        });
        assert_eq!(managed_thread_index(), None);
    }
}
