//! `ipm-repro` — umbrella crate for the IPM GPU-cluster monitoring reproduction.
//!
//! This crate re-exports the public APIs of all workspace members so that the
//! examples and integration tests can exercise the whole stack through a
//! single dependency, the same way a downstream user would consume a released
//! `ipm` package.
//!
//! The reproduced paper is *"Comprehensive Performance Monitoring for GPU
//! Cluster Systems"* (Fürlinger, Wright, Skinner — IPPS/IPDPS 2011). See
//! `DESIGN.md` at the repository root for the system inventory and the
//! per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use ipm_apps as apps;
pub use ipm_core as ipm;
pub use ipm_gpu_sim as gpu;
pub use ipm_interpose as interpose;
pub use ipm_mpi_sim as mpi;
pub use ipm_numlib as numlib;
pub use ipm_sim_core as sim;
