//! Monitor accelerated numerical libraries (the PARATEC workflow).
//!
//! §III-D of the paper: developers exploring GPUs by re-linking against
//! CUBLAS need performance data in terms of the *library* calls. This
//! example multiplies complex matrices through the thunking CUBLAS
//! wrappers under IPM and shows (a) the cublas* entries with operand
//! sizes, (b) the library's *internal* CUDA calls — intercepted too, as
//! `LD_PRELOAD` composes — and (c) the transfer-vs-compute breakdown that
//! motivated the paper's PARATEC analysis.
//!
//! ```text
//! cargo run --example library_acceleration
//! ```

use ipm_repro::gpu::{CudaApi, GpuConfig, GpuRuntime};
use ipm_repro::ipm::{Ipm, IpmConfig, IpmCuda};
use ipm_repro::numlib::{thunking, Complex64, CublasContext, DeviceLibConfig, Transpose};
use std::sync::Arc;

fn main() {
    // monitored stack: IPM around CUDA, CUBLAS built over the monitored API
    let rt = Arc::new(GpuRuntime::single(
        GpuConfig::dirac_node().with_context_init(0.0),
    ));
    let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
    ipm.set_metadata(0, 1, "dirac03", "paratec-like");
    let cuda: Arc<dyn CudaApi> = Arc::new(IpmCuda::new(ipm.clone(), rt));
    let blas = CublasContext::init(cuda.clone(), DeviceLibConfig::default());

    // a few thunking zgemms, like a Fortran code linked with the wrappers
    let n = 48;
    let a: Vec<Complex64> = (0..n * n)
        .map(|i| Complex64::new((i % 13) as f64, -((i % 7) as f64)))
        .collect();
    let b: Vec<Complex64> = (0..n * n)
        .map(|i| Complex64::new(1.0 / (1 + i % 5) as f64, 0.25))
        .collect();
    let mut c = vec![Complex64::ZERO; n * n];
    for _ in 0..4 {
        thunking::zgemm(
            &blas,
            Transpose::N,
            Transpose::N,
            n,
            n,
            n,
            Complex64::ONE,
            &a,
            n,
            &b,
            n,
            Complex64::ZERO,
            &mut c,
            n,
        )
        .expect("zgemm");
    }
    println!("C[0] = {:?} (real math through the device library)\n", c[0]);

    let profile = ipm.profile();
    println!("library-level view (what the thunking wrapper costs):");
    for name in [
        "cudaMemcpy(H2D)",
        "cudaMemcpy(D2H)",
        "cudaLaunch",
        "cudaMalloc",
        "cudaFree",
    ] {
        println!(
            "  {:<18} {:>3} calls  {:>9.6} s",
            name,
            profile.count_of(name),
            profile.time_of(name)
        );
    }
    let transfers = profile.time_of("cudaMemcpy(H2D)") + profile.time_of("cudaMemcpy(D2H)");
    let kernel = profile.time_of("@CUDA_EXEC_STRM00");
    println!("\ntransfer time {transfers:.6} s vs zgemm kernel time {kernel:.6} s");
    println!(
        "(the paper's PARATEC finding: for thunking-wrapper usage the\n\
         blocking transfers dwarf the accelerated compute — the profile\n\
         points straight at overlap/direct-interface tuning)"
    );

    let breakdown = profile.kernel_breakdown();
    println!(
        "\nGPU kernels seen inside the library: {:?}",
        breakdown[0].0
    );
}
