//! Quickstart: monitor a CUDA program with IPM, no source changes.
//!
//! This is the paper's Fig. 3 program (`square`) run under full IPM
//! monitoring — the exact scenario of Figs. 4–6. The application code
//! (`run_square`) only knows the `CudaApi` trait; installing IPM is the
//! single line that wraps the runtime, the library analogue of
//! `LD_PRELOAD=libipm.so`.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ipm_repro::apps::{run_square, SquareConfig};
use ipm_repro::gpu::{GpuConfig, GpuRuntime};
use ipm_repro::ipm::{to_xml, Banner, Export, Ipm, IpmConfig, IpmCuda};
use std::sync::Arc;

fn main() {
    // the "machine": one simulated Dirac node (Tesla C2050, CUDA 3.1)
    let runtime = Arc::new(GpuRuntime::single(GpuConfig::dirac_node()));

    // install IPM between the application and the runtime
    let ipm = Ipm::new(runtime.clock().clone(), IpmConfig::default());
    ipm.set_metadata(0, 1, "dirac15", "./cuda.ipm");
    let cuda = IpmCuda::new(ipm.clone(), runtime);

    // run the unmodified application against the monitored API
    let result = run_square(&cuda, SquareConfig::default()).expect("square");
    println!(
        "array returned from the device, first elements: {:?}",
        &result[..4.min(result.len())]
    );
    println!("(at the paper's N=100k/REPEAT=10k shape the kernel is timing-modeled;");
    println!(" use SquareConfig::tiny() to see the math verified for real)\n");

    // at exit, IPM prints the banner (Fig. 6) — the export pipeline
    // captures the live context and renders it through any backend
    cuda.finalize();
    let profile = ipm.profile();
    println!(
        "{}",
        Export::from(&ipm)
            .max_rows(10)
            .to(Banner)
            .expect("profile present")
    );

    // ... and writes the XML log for ipm_parse
    let xml = to_xml(&profile);
    println!(
        "XML profiling log: {} bytes (first line: {})",
        xml.len(),
        xml.lines().next().unwrap()
    );

    println!(
        "\nkey metrics: kernel time on GPU = {:.2} s, implicit host blocking = {:.2} s",
        profile.time_of("@CUDA_EXEC_STRM00"),
        profile.host_idle_time(),
    );
}
