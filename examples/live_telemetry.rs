//! Live telemetry: watch a cluster job while it runs.
//!
//! Runs an HPL-like Linpack job on a simulated 4-rank/2-node cluster and,
//! concurrently, samples every rank's IPM context through
//! [`ClusterObserver::sample`]: each sample is a cheap per-family *delta*
//! of the performance table since the previous sample, merged across ranks
//! into a one-line cluster dashboard. This is the monitoring-as-you-go
//! counterpart of the post-mortem banner — nothing about the application
//! changes, the observer just polls the same IPM contexts the wrappers
//! feed.
//!
//! ```text
//! cargo run --release --example live_telemetry
//! ```

use ipm_repro::apps::hpl::{run_hpl, HplConfig};
use ipm_repro::apps::{run_cluster_observed, ClusterConfig};
use std::time::Duration;

fn main() {
    let (nranks, nodes) = (4, 2);
    // a tight retention cap keeps the trace ring bounded for the whole job:
    // bursts of short same-signature records compact into summaries
    let cluster = ClusterConfig::dirac(nranks, nodes)
        .with_command("./xhpl.ipm")
        .with_ipm(ipm_repro::ipm::IpmConfig::default().with_trace_compaction(64));
    // a mid-size instance: enough panel iterations for several samples
    let hpl = HplConfig {
        n: 16_384,
        nb: 256,
        overlap: 0.9,
    };

    println!("live cluster view ({nranks} ranks on {nodes} nodes, virtual time):");
    let run = run_cluster_observed(
        &cluster,
        |ctx| run_hpl(ctx, hpl).expect("hpl rank failed"),
        |obs| {
            while !obs.is_done() {
                // auto-tuned: the period that keeps the measured sweep cost
                // within each rank's snapshot overhead budget (fixed 2 ms
                // warm-up until the first sweep has been timed)
                let period = obs.auto_period().unwrap_or(Duration::from_millis(2));
                std::thread::sleep(period);
                print_sample(obs);
            }
            // final delta: whatever was booked after the last poll
            print_sample(obs);
        },
    );

    let gflops: f64 = run.outputs.iter().map(|r| r.gflops()).sum();
    println!(
        "\njob done: {:.2} virtual s, {gflops:.1} GFLOP/s aggregate",
        run.runtime()
    );

    // monitor-the-monitor: what the telemetry itself cost, per rank
    for p in &run.profiles {
        let m = &p.monitor;
        println!(
            "rank {}: IPM self-cost {:.3} ms wall-clock, trace {} captured / {} dropped / {} compacted",
            p.rank,
            m.self_wall_ns as f64 / 1e6,
            m.trace_captured,
            m.trace_dropped,
            m.trace_compacted,
        );
    }
}

fn print_sample(obs: &ipm_repro::apps::ClusterObserver) {
    if let Some((snap, interval)) = obs.sample() {
        if interval > 0.0 {
            println!("  {}", snap.render_line(interval));
        }
    }
}
