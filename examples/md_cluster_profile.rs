//! Profile a molecular-dynamics job across a GPU cluster.
//!
//! The scenario the paper's introduction motivates: an MPI+CUDA
//! application (here the Amber/PMEMD-like MD code) running on several
//! GPU nodes, where per-kernel workstation profiling can't see load
//! imbalance or communication behavior. IPM's cross-rank aggregation can:
//! this example runs 4 ranks, prints the cluster banner, ranks the GPU
//! kernels, flags the imbalanced ones, and writes an HTML report.
//!
//! ```text
//! cargo run --example md_cluster_profile
//! ```

use ipm_repro::apps::{run_amber, run_cluster, AmberConfig, ClusterConfig};
use ipm_repro::ipm::{Banner, ClusterReport, Export, Html};

fn main() {
    let nranks = 4;
    let mut md = AmberConfig::jac_dhfr();
    md.steps = 800;

    let cluster = ClusterConfig::dirac(nranks, nranks).with_command("pmemd.cuda.MPI");
    let run = run_cluster(&cluster, |ctx| run_amber(ctx, md).expect("md step failed"));
    let report = ClusterReport::from_profiles(run.profiles, nranks);

    // one source, many renderings: the banner now, the HTML page below
    let export = Export::from_profiles(report.profiles().to_vec())
        .nodes(nranks)
        .max_rows(14);
    println!("{}", export.to(Banner).expect("ranks present"));

    println!("GPU kernels by share of device time:");
    for (kernel, share) in report.kernel_shares().into_iter().take(6) {
        println!("  {:<44} {:>5.1}%", kernel, share * 100.0);
    }

    println!("\nload imbalance across ranks (max-min)/max:");
    let mut imbalances = report.kernel_imbalance();
    imbalances.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (kernel, imb) in imbalances.into_iter().take(4) {
        let flag = if imb > 0.3 {
            "  <-- optimization target"
        } else {
            ""
        };
        println!("  {:<44} {:>5.1}%{}", kernel, imb * 100.0, flag);
    }

    let html = export.to(Html).expect("ranks present");
    let path = std::env::temp_dir().join("ipm_md_profile.html");
    std::fs::write(&path, html).expect("write HTML report");
    println!("\nHTML report written to {}", path.display());
}
