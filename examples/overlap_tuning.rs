//! Use `@CUDA_HOST_IDLE` to find missed overlap — and fix it.
//!
//! The paper's §III-C metric in action. Version A of a toy solver uses a
//! synchronous `cudaMemcpy` right after each kernel launch: the host
//! silently blocks inside the transfer, and IPM attributes the wait to
//! `@CUDA_HOST_IDLE` — a *tuning opportunity*. Version B overlaps host
//! work with the kernel and fetches results asynchronously: the idle
//! metric collapses and the runtime shrinks accordingly.
//!
//! ```text
//! cargo run --example overlap_tuning
//! ```

use ipm_repro::gpu::{
    launch_kernel, CudaApi, GpuConfig, GpuRuntime, Kernel, KernelCost, LaunchConfig,
};
use ipm_repro::ipm::{Ipm, IpmConfig, IpmCuda, RankProfile};
use std::sync::Arc;

const STEPS: usize = 50;
const KERNEL_SECS: f64 = 0.02;
const HOST_WORK_SECS: f64 = 0.018;

fn monitored_stack() -> (Arc<Ipm>, IpmCuda) {
    let rt = Arc::new(GpuRuntime::single(
        GpuConfig::dirac_node().with_context_init(0.0),
    ));
    let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
    ipm.set_metadata(0, 1, "dirac07", "./solver");
    let cuda = IpmCuda::new(ipm.clone(), rt);
    (ipm, cuda)
}

/// Version A: blocking transfer right after the launch (no overlap).
fn version_a() -> RankProfile {
    let (ipm, cuda) = monitored_stack();
    let kernel = Kernel::timed("relax_step", KernelCost::Fixed(KERNEL_SECS));
    let dev = cuda.cuda_malloc(1 << 16).unwrap();
    let mut out = vec![0u8; 1 << 16];
    for _ in 0..STEPS {
        launch_kernel(&cuda, &kernel, LaunchConfig::simple(64u32, 256u32), &[]).unwrap();
        // fetch immediately: implicitly blocks until the kernel finishes
        cuda.cuda_memcpy_d2h(&mut out, dev).unwrap();
        // host post-processing happens *after* the wait — no overlap
        ipm.clock().advance(HOST_WORK_SECS);
    }
    cuda.cuda_free(dev).unwrap();
    cuda.finalize();
    ipm.profile()
}

/// Version B: overlap host work with the kernel, fetch asynchronously.
fn version_b() -> RankProfile {
    let (ipm, cuda) = monitored_stack();
    let kernel = Kernel::timed("relax_step", KernelCost::Fixed(KERNEL_SECS));
    let dev = cuda.cuda_malloc(1 << 16).unwrap();
    let stream = cuda.cuda_stream_create().unwrap();
    let mut out = vec![0u8; 1 << 16];
    for _ in 0..STEPS {
        launch_kernel(
            &cuda,
            &kernel,
            LaunchConfig::simple(64u32, 256u32).on_stream(stream),
            &[],
        )
        .unwrap();
        // host post-processing runs while the GPU computes
        ipm.clock().advance(HOST_WORK_SECS);
        cuda.cuda_memcpy_d2h_async(&mut out, dev, stream).unwrap();
        cuda.cuda_stream_synchronize(stream).unwrap();
    }
    cuda.cuda_stream_destroy(stream).unwrap();
    cuda.cuda_free(dev).unwrap();
    cuda.finalize();
    ipm.profile()
}

fn main() {
    let a = version_a();
    let b = version_b();
    println!("version A — synchronous fetch after each launch:");
    println!("  wallclock        {:>8.3} s", a.wallclock);
    println!(
        "  @CUDA_HOST_IDLE  {:>8.3} s   <-- missed overlap, IPM says",
        a.host_idle_time()
    );
    println!(
        "  GPU kernel time  {:>8.3} s\n",
        a.time_of("@CUDA_EXEC_STRM00")
    );

    println!("version B — host work overlapped, asynchronous fetch:");
    println!("  wallclock        {:>8.3} s", b.wallclock);
    println!("  @CUDA_HOST_IDLE  {:>8.3} s", b.host_idle_time().max(0.0));
    println!(
        "  cudaStreamSynchronize {:>5.3} s  (the residual, explicit wait)\n",
        b.time_of("cudaStreamSynchronize")
    );

    let speedup = a.wallclock / b.wallclock;
    println!("speedup from acting on the host-idle metric: {speedup:.2}x");
    assert!(b.host_idle_time() < 0.05 * a.host_idle_time());
    assert!(speedup > 1.2);
}
