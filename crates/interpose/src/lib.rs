//! # ipm-interpose
//!
//! Library-interposition machinery for the IPM reproduction:
//!
//! * [`spec`] — the formal call specification IPM's wrapper generator
//!   consumes: all 65 CUDA runtime + 99 CUDA driver + 167 CUBLAS +
//!   13 CUFFT entry points (the counts quoted in §III-A/§III-D of the
//!   paper), each tagged with its API family, its blocking class (the
//!   *implicit blocking set* of §III-C), and whether it carries a byte
//!   count.
//! * [`registry`] — the unified table with interned [`registry::CallId`]s,
//!   plus the [`registry::NameTable`] interner and the [`site!`] per-site
//!   resolution cache: the record path carries only ids; names come back
//!   at report time.
//! * [`wrap`] — the wrapper anatomy of Fig. 2: a higher-order `wrap_call`
//!   plus the `wrap_method!` generator macro, reporting into a
//!   [`wrap::MonitorSink`].
//!
//! In the real tool, interposition happens at the dynamic linker
//! (`LD_PRELOAD`) or via `ld --wrap`. Rust has no stable equivalent, so the
//! seam is a trait: applications program against `CudaApi` / `MpiApi` /
//! `BlasApi` / `FftApi` (defined next to each substrate), and `ipm-core`
//! provides monitored implementations that wrap the bare ones. Application
//! code is byte-for-byte identical under both stacks — the deployment
//! property the paper advertises.

pub mod registry;
pub mod spec;
pub mod wrap;

pub use registry::{CallHandle, CallId, CallSite, NameTable, Registry};
pub use spec::{ApiFamily, BlockingClass, CallSpec};
pub use wrap::{wrap_call, wrap_call_sized, MonitorSink, NullSink};
