//! The unified call registry.
//!
//! Collects every [`CallSpec`] from the specification into one table with
//! stable integer [`CallId`]s — the analogue of IPM's generated wrapper
//! table. Monitors intern call names once and use ids on the hot path.

use crate::spec::{
    cublas_calls, ApiFamily, BlockingClass, CallSpec, CUDA_DRIVER_CALLS, CUDA_RUNTIME_CALLS,
    CUFFT_CALLS, MPI_CALLS,
};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Index of a call in the global registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallId(pub u32);

/// The global wrapper registry.
pub struct Registry {
    calls: Vec<CallSpec>,
    by_name: HashMap<&'static str, CallId>,
}

impl Registry {
    fn build() -> Self {
        let mut calls: Vec<CallSpec> = Vec::new();
        calls.extend_from_slice(CUDA_RUNTIME_CALLS);
        calls.extend_from_slice(CUDA_DRIVER_CALLS);
        calls.extend(cublas_calls());
        calls.extend_from_slice(CUFFT_CALLS);
        calls.extend_from_slice(MPI_CALLS);
        let by_name = calls
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name, CallId(i as u32)))
            .collect();
        Self { calls, by_name }
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static REG: OnceLock<Registry> = OnceLock::new();
        REG.get_or_init(Registry::build)
    }

    /// Total number of interposable calls.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// True if the registry is empty (it never is; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Look up a call by name.
    pub fn id(&self, name: &str) -> Option<CallId> {
        self.by_name.get(name).copied()
    }

    /// The spec for an id.
    pub fn spec(&self, id: CallId) -> &CallSpec {
        &self.calls[id.0 as usize]
    }

    /// All calls of one family.
    pub fn family(&self, family: ApiFamily) -> impl Iterator<Item = &CallSpec> {
        self.calls.iter().filter(move |c| c.family == family)
    }

    /// The **implicit blocking set**: the calls IPM instruments with a
    /// preceding `cudaStreamSynchronize` for host-idle attribution.
    pub fn implicit_blocking_set(&self) -> impl Iterator<Item = &CallSpec> {
        self.calls
            .iter()
            .filter(|c| c.blocking == BlockingClass::ImplicitSync)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_aggregates_all_families() {
        let r = Registry::global();
        assert_eq!(r.family(ApiFamily::CudaRuntime).count(), 65);
        assert_eq!(r.family(ApiFamily::CudaDriver).count(), 99);
        assert_eq!(r.family(ApiFamily::Cublas).count(), 167);
        assert_eq!(r.family(ApiFamily::Cufft).count(), 13);
        assert!(r.family(ApiFamily::Mpi).count() > 10);
        assert_eq!(
            r.len(),
            65 + 99 + 167 + 13 + r.family(ApiFamily::Mpi).count()
        );
        assert!(!r.is_empty());
    }

    #[test]
    fn lookup_roundtrips() {
        let r = Registry::global();
        let id = r.id("cudaLaunch").expect("cudaLaunch registered");
        assert_eq!(r.spec(id).name, "cudaLaunch");
        assert!(r.id("cudaNotARealCall").is_none());
    }

    #[test]
    fn implicit_blocking_set_is_cuda_memory_ops_plus_cublas_transfers() {
        let r = Registry::global();
        let set: Vec<&str> = r.implicit_blocking_set().map(|c| c.name).collect();
        assert!(set.contains(&"cudaMemcpy"));
        assert!(set.contains(&"cuMemcpyDtoH"));
        assert!(set.contains(&"cublasGetMatrix"));
        assert!(!set.iter().any(|n| n.contains("Memset")));
        assert!(!set.iter().any(|n| n.ends_with("Async")));
    }

    #[test]
    fn ids_are_stable_across_lookups() {
        let r = Registry::global();
        assert_eq!(r.id("cublasZgemm"), r.id("cublasZgemm"));
        assert_ne!(r.id("cudaMemcpy"), r.id("cuMemcpyHtoD"));
    }
}
