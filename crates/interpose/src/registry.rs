//! The unified call registry and the name interner.
//!
//! Collects every [`CallSpec`] from the specification into one table with
//! stable integer [`CallId`]s — the analogue of IPM's generated wrapper
//! table. Monitors intern call names once and use ids on the hot path.
//!
//! Two layers live here:
//!
//! * [`Registry`] — the immutable spec table (one row per specified entry
//!   point, `CallId` = row index).
//! * [`NameTable`] — the process-wide **interner**. It is seeded with the
//!   registry rows (so a spec name's interned id *is* its registry id) and
//!   grows append-only with dynamic names the monitors invent at run time:
//!   direction-split copies (`cudaMemcpy(H2D)`), pseudo-events
//!   (`@CUDA_EXEC_STRM00`, `@CUDA_HOST_IDLE`), kernel symbols. The record
//!   path carries only the interned [`CallId`]; the string comes back out
//!   at report/export time via [`NameTable::name`].
//!
//! Wrap sites resolve their name exactly once through a [`CallSite`]
//! static (see the [`site!`](crate::site) macro): the first execution
//! interns the name and caches the packed [`CallHandle`] in an atomic, so
//! the steady-state cost of a wrapped call includes no string hashing and
//! no allocation.

use crate::spec::{
    cublas_calls, ApiFamily, BlockingClass, CallSpec, CUDA_DRIVER_CALLS, CUDA_RUNTIME_CALLS,
    CUFFT_CALLS, IO_CALLS, MPI_CALLS,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Index of a call in the global registry / name table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallId(pub u32);

/// The global wrapper registry.
pub struct Registry {
    calls: Vec<CallSpec>,
    by_name: HashMap<&'static str, CallId>,
}

impl Registry {
    fn build() -> Self {
        let mut calls: Vec<CallSpec> = Vec::new();
        calls.extend_from_slice(CUDA_RUNTIME_CALLS);
        calls.extend_from_slice(CUDA_DRIVER_CALLS);
        calls.extend(cublas_calls());
        calls.extend_from_slice(CUFFT_CALLS);
        calls.extend_from_slice(MPI_CALLS);
        calls.extend_from_slice(IO_CALLS);
        let by_name = calls
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name, CallId(i as u32)))
            .collect();
        Self { calls, by_name }
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static REG: OnceLock<Registry> = OnceLock::new();
        REG.get_or_init(Registry::build)
    }

    /// Total number of interposable calls.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// True if the registry is empty (it never is; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Look up a call by name.
    pub fn id(&self, name: &str) -> Option<CallId> {
        self.by_name.get(name).copied()
    }

    /// The spec for an id.
    pub fn spec(&self, id: CallId) -> &CallSpec {
        &self.calls[id.0 as usize]
    }

    /// All calls of one family.
    pub fn family(&self, family: ApiFamily) -> impl Iterator<Item = &CallSpec> {
        self.calls.iter().filter(move |c| c.family == family)
    }

    /// The **implicit blocking set**: the calls IPM instruments with a
    /// preceding `cudaStreamSynchronize` for host-idle attribution.
    pub fn implicit_blocking_set(&self) -> impl Iterator<Item = &CallSpec> {
        self.calls
            .iter()
            .filter(|c| c.blocking == BlockingClass::ImplicitSync)
    }
}

/// What a wrap site needs to know about its call, resolved once and carried
/// by value on the hot path: the interned id plus the spec attributes that
/// steer the wrapper anatomy (host-idle probing, byte attribution).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallHandle {
    /// Interned name id (spec row index for specified calls).
    pub id: CallId,
    /// In the implicit blocking set (§III-C): the wrapper core probes host
    /// idle before timing the call.
    pub implicit_sync: bool,
    /// The spec says this call carries a byte count.
    pub has_bytes: bool,
}

struct NameRow {
    name: Arc<str>,
    implicit_sync: bool,
    has_bytes: bool,
}

struct NameTableInner {
    rows: Vec<NameRow>,
    by_name: HashMap<Arc<str>, CallId>,
}

/// The process-wide name interner (see the module docs).
pub struct NameTable {
    inner: RwLock<NameTableInner>,
}

impl NameTable {
    fn build() -> Self {
        let reg = Registry::global();
        let mut rows = Vec::with_capacity(reg.len());
        let mut by_name = HashMap::with_capacity(reg.len());
        for i in 0..reg.len() {
            let spec = reg.spec(CallId(i as u32));
            let name: Arc<str> = Arc::from(spec.name);
            rows.push(NameRow {
                name: name.clone(),
                implicit_sync: spec.blocking == BlockingClass::ImplicitSync,
                has_bytes: spec.has_bytes,
            });
            by_name.insert(name, CallId(i as u32));
        }
        Self {
            inner: RwLock::new(NameTableInner { rows, by_name }),
        }
    }

    /// The process-wide interner, seeded from [`Registry::global`].
    pub fn global() -> &'static NameTable {
        static TABLE: OnceLock<NameTable> = OnceLock::new();
        TABLE.get_or_init(NameTable::build)
    }

    /// Intern `name`, returning its handle. Spec attributes come from the
    /// registry row of the same name, or — for derived names such as
    /// `cudaMemcpy(H2D)` — from the base name before the `(` suffix.
    /// Unknown names intern with no attributes (plain timed call).
    pub fn intern(&self, name: &str) -> CallHandle {
        if let Some(h) = self.lookup(name) {
            return h;
        }
        let reg = Registry::global();
        let base = name.split('(').next().unwrap_or(name);
        let spec = reg.id(name).or_else(|| reg.id(base)).map(|id| reg.spec(id));
        let (implicit_sync, has_bytes) = spec
            .map(|s| (s.blocking == BlockingClass::ImplicitSync, s.has_bytes))
            .unwrap_or((false, false));
        let mut inner = self.inner.write().expect("name table poisoned");
        // double-check: another thread may have interned it meanwhile
        if let Some(&id) = inner.by_name.get(name) {
            let row = &inner.rows[id.0 as usize];
            return CallHandle {
                id,
                implicit_sync: row.implicit_sync,
                has_bytes: row.has_bytes,
            };
        }
        let id = CallId(inner.rows.len() as u32);
        let arc: Arc<str> = Arc::from(name);
        inner.rows.push(NameRow {
            name: arc.clone(),
            implicit_sync,
            has_bytes,
        });
        inner.by_name.insert(arc, id);
        CallHandle {
            id,
            implicit_sync,
            has_bytes,
        }
    }

    /// The handle for an already-interned name, if any.
    pub fn lookup(&self, name: &str) -> Option<CallHandle> {
        let inner = self.inner.read().expect("name table poisoned");
        inner.by_name.get(name).map(|&id| {
            let row = &inner.rows[id.0 as usize];
            CallHandle {
                id,
                implicit_sync: row.implicit_sync,
                has_bytes: row.has_bytes,
            }
        })
    }

    /// The interned name for an id — report/export-time resolution. O(1);
    /// clones the shared `Arc`, so no allocation.
    ///
    /// Panics on an id this table never issued (there is no way to obtain
    /// one through the public API).
    pub fn name(&self, id: CallId) -> Arc<str> {
        let inner = self.inner.read().expect("name table poisoned");
        inner.rows[id.0 as usize].name.clone()
    }

    /// The handle for an id this table issued.
    pub fn handle(&self, id: CallId) -> CallHandle {
        let inner = self.inner.read().expect("name table poisoned");
        let row = &inner.rows[id.0 as usize];
        CallHandle {
            id,
            implicit_sync: row.implicit_sync,
            has_bytes: row.has_bytes,
        }
    }

    /// Number of interned names (≥ the registry size).
    pub fn len(&self) -> usize {
        self.inner.read().expect("name table poisoned").rows.len()
    }

    /// Never true; for API completeness.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CallHandle {
    /// Intern `name` in the global table — the dynamic-name path (tests,
    /// legacy mirrors, derived names built at run time). Wrap sites with a
    /// literal name should use the [`site!`](crate::site) macro instead,
    /// which caches this resolution in a per-site static.
    pub fn of(name: &str) -> CallHandle {
        NameTable::global().intern(name)
    }

    /// The interned name (report-time lookup).
    pub fn name(&self) -> Arc<str> {
        NameTable::global().name(self.id)
    }
}

// CallHandle packing for the CallSite atomic: bit 63 marks "resolved",
// bits 0/1 carry the spec flags, bits 2.. the id. 2^61 ids is plenty.
const SITE_RESOLVED: u64 = 1 << 63;

fn pack(h: CallHandle) -> u64 {
    SITE_RESOLVED | ((h.id.0 as u64) << 2) | ((h.implicit_sync as u64) << 1) | (h.has_bytes as u64)
}

fn unpack(v: u64) -> CallHandle {
    CallHandle {
        id: CallId(((v & !SITE_RESOLVED) >> 2) as u32),
        implicit_sync: v & 0b10 != 0,
        has_bytes: v & 0b01 != 0,
    }
}

/// Per-call-site resolution cache: a static cell that interns its name on
/// first use and then answers from one relaxed atomic load. Declared by
/// the [`site!`](crate::site) macro; rarely used directly.
pub struct CallSite {
    name: &'static str,
    cell: AtomicU64,
}

impl CallSite {
    /// A site for `name`, unresolved until first use.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: AtomicU64::new(0),
        }
    }

    /// The site's handle (resolving and caching it on first call).
    #[inline]
    pub fn handle(&self) -> CallHandle {
        let v = self.cell.load(Ordering::Relaxed);
        if v != 0 {
            return unpack(v);
        }
        self.resolve_slow()
    }

    #[cold]
    fn resolve_slow(&self) -> CallHandle {
        let h = NameTable::global().intern(self.name);
        self.cell.store(pack(h), Ordering::Relaxed);
        h
    }
}

/// Resolve a wrap site's name literal to its [`CallHandle`] through a
/// per-site static cache: the name is interned exactly once per site, and
/// every later execution is a single atomic load.
///
/// ```
/// use ipm_interpose::site;
/// let h = site!("cudaMemcpy");
/// assert!(h.implicit_sync && h.has_bytes);
/// ```
#[macro_export]
macro_rules! site {
    ($name:literal) => {{
        static SITE: $crate::registry::CallSite = $crate::registry::CallSite::new($name);
        SITE.handle()
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_aggregates_all_families() {
        let r = Registry::global();
        assert_eq!(r.family(ApiFamily::CudaRuntime).count(), 65);
        assert_eq!(r.family(ApiFamily::CudaDriver).count(), 99);
        assert_eq!(r.family(ApiFamily::Cublas).count(), 167);
        assert_eq!(r.family(ApiFamily::Cufft).count(), 13);
        assert_eq!(r.family(ApiFamily::Io).count(), 4);
        assert!(r.family(ApiFamily::Mpi).count() > 10);
        assert_eq!(
            r.len(),
            65 + 99 + 167 + 13 + 4 + r.family(ApiFamily::Mpi).count()
        );
        assert!(!r.is_empty());
    }

    #[test]
    fn lookup_roundtrips() {
        let r = Registry::global();
        let id = r.id("cudaLaunch").expect("cudaLaunch registered");
        assert_eq!(r.spec(id).name, "cudaLaunch");
        assert!(r.id("cudaNotARealCall").is_none());
    }

    #[test]
    fn implicit_blocking_set_is_cuda_memory_ops_plus_cublas_transfers() {
        let r = Registry::global();
        let set: Vec<&str> = r.implicit_blocking_set().map(|c| c.name).collect();
        assert!(set.contains(&"cudaMemcpy"));
        assert!(set.contains(&"cuMemcpyDtoH"));
        assert!(set.contains(&"cublasGetMatrix"));
        assert!(!set.iter().any(|n| n.contains("Memset")));
        assert!(!set.iter().any(|n| n.ends_with("Async")));
    }

    #[test]
    fn ids_are_stable_across_lookups() {
        let r = Registry::global();
        assert_eq!(r.id("cublasZgemm"), r.id("cublasZgemm"));
        assert_ne!(r.id("cudaMemcpy"), r.id("cuMemcpyHtoD"));
    }

    #[test]
    fn interner_is_seeded_with_the_registry() {
        let reg = Registry::global();
        let names = NameTable::global();
        assert!(names.len() >= reg.len());
        // a spec name's interned id IS its registry id
        let h = names.intern("cudaMemcpy");
        assert_eq!(Some(h.id), reg.id("cudaMemcpy"));
        assert_eq!(&*names.name(h.id), "cudaMemcpy");
        assert!(h.implicit_sync && h.has_bytes);
    }

    #[test]
    fn dynamic_names_get_appended_ids_with_base_name_attributes() {
        let names = NameTable::global();
        let split = names.intern("cudaMemcpy(D2H)");
        assert!(
            split.id.0 as usize >= Registry::global().len(),
            "derived names live past the spec rows"
        );
        // attributes come from the cudaMemcpy base row
        assert!(split.implicit_sync && split.has_bytes);
        let async_split = names.intern("cudaMemcpyAsync(H2D)");
        assert!(!async_split.implicit_sync && async_split.has_bytes);
        // pseudo-events and unknown names carry no attributes
        let idle = names.intern("@CUDA_HOST_IDLE");
        assert!(!idle.implicit_sync && !idle.has_bytes);
        // interning is idempotent
        assert_eq!(names.intern("cudaMemcpy(D2H)"), split);
        assert_eq!(&*names.name(split.id), "cudaMemcpy(D2H)");
    }

    #[test]
    fn call_sites_cache_their_resolution() {
        let first = site!("cudaMemcpy");
        let second = site!("cudaMemcpy");
        // two *sites* for the same name share the interned id
        assert_eq!(first.id, second.id);
        assert!(first.implicit_sync && first.has_bytes);
        // a site's repeated executions agree with the interner
        for _ in 0..3 {
            assert_eq!(site!("MPI_Recv"), CallHandle::of("MPI_Recv"));
        }
        // packing roundtrips all flag combinations
        for (implicit_sync, has_bytes) in
            [(false, false), (true, false), (false, true), (true, true)]
        {
            let h = CallHandle {
                id: CallId(12345),
                implicit_sync,
                has_bytes,
            };
            assert_eq!(unpack(pack(h)), h);
        }
    }
}
