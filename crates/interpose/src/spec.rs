//! The formal call specification.
//!
//! IPM generates its wrappers from "a formal specification file derived
//! from the headers shipped with the CUDA SDK" (paper §III-A): 65 runtime
//! API calls, 99 driver API calls, plus 167 CUBLAS and 13 CUFFT entry
//! points (§III-D). This module is that specification: every interposable
//! call, tagged with the attributes the wrapper generator needs —
//! which API family it belongs to, whether it is in the **implicit
//! blocking set** discovered by the paper's microbenchmark (all synchronous
//! memory operations except the memsets), and whether it carries a byte
//! count worth recording in the hash table's `bytes` attribute.

/// Which library a call belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ApiFamily {
    /// `cuda*` — the CUDA runtime API.
    CudaRuntime,
    /// `cu*` — the CUDA driver API.
    CudaDriver,
    /// `cublas*`.
    Cublas,
    /// `cufft*`.
    Cufft,
    /// `MPI_*`.
    Mpi,
    /// Host filesystem I/O (`fopen`/`fread`/...). Not part of the paper's
    /// interface inventory — a repo extension so the I/O facade gets the
    /// same spec-driven wrapper treatment as the GPU and MPI families.
    Io,
}

/// Host-blocking behavior of a call, as classified by the paper's
/// microbenchmark (§III-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockingClass {
    /// Returns after submission; never waits for the device.
    NonBlocking,
    /// Synchronous memory operation that **implicitly waits** for
    /// outstanding device work — the set IPM instruments for
    /// `@CUDA_HOST_IDLE`.
    ImplicitSync,
    /// Explicitly synchronizing by contract
    /// (`cudaStreamSynchronize`, `cudaEventSynchronize`, ...).
    ExplicitSync,
    /// Plain host-side call (allocation, query, configuration).
    Local,
}

/// One row of the specification.
#[derive(Clone, Copy, Debug)]
pub struct CallSpec {
    /// The entry-point name as the dynamic linker would see it.
    pub name: &'static str,
    /// Owning library.
    pub family: ApiFamily,
    /// Blocking classification.
    pub blocking: BlockingClass,
    /// Whether the wrapper records a transfer/operand size.
    pub has_bytes: bool,
}

const fn call(
    name: &'static str,
    family: ApiFamily,
    blocking: BlockingClass,
    has_bytes: bool,
) -> CallSpec {
    CallSpec {
        name,
        family,
        blocking,
        has_bytes,
    }
}

macro_rules! rt_local {
    ($($n:literal),* $(,)?) => { [$(call($n, ApiFamily::CudaRuntime, BlockingClass::Local, false)),*] };
}
macro_rules! drv_local {
    ($($n:literal),* $(,)?) => { [$(call($n, ApiFamily::CudaDriver, BlockingClass::Local, false)),*] };
}

/// The 65 CUDA **runtime API** calls (CUDA 3.1).
pub static CUDA_RUNTIME_CALLS: &[CallSpec] = &{
    let mut out = [call("", ApiFamily::CudaRuntime, BlockingClass::Local, false); 65];
    let mut i = 0;
    macro_rules! push {
        ($spec:expr) => {{
            out[i] = $spec;
            i += 1;
        }};
    }
    // allocation carries the requested size as its bytes attribute (same
    // convention as cublasAlloc): still Local — no device wait involved
    push!(call(
        "cudaMalloc",
        ApiFamily::CudaRuntime,
        BlockingClass::Local,
        true
    ));
    // memory management (local host-side calls)
    let locals = rt_local![
        "cudaMallocHost",
        "cudaMallocPitch",
        "cudaMallocArray",
        "cudaMalloc3D",
        "cudaMalloc3DArray",
        "cudaFree",
        "cudaFreeHost",
        "cudaFreeArray",
        "cudaHostAlloc",
        "cudaHostGetDevicePointer",
        "cudaHostGetFlags",
    ];
    let mut j = 0;
    while j < locals.len() {
        push!(locals[j]);
        j += 1;
    }
    // synchronous copies: the implicit-blocking set
    let sync_copies = [
        "cudaMemcpy",
        "cudaMemcpyToSymbol",
        "cudaMemcpyFromSymbol",
        "cudaMemcpy2D",
        "cudaMemcpy2DToArray",
        "cudaMemcpy2DFromArray",
        "cudaMemcpyToArray",
        "cudaMemcpyFromArray",
        "cudaMemcpy3D",
    ];
    j = 0;
    while j < sync_copies.len() {
        push!(call(
            sync_copies[j],
            ApiFamily::CudaRuntime,
            BlockingClass::ImplicitSync,
            true
        ));
        j += 1;
    }
    // asynchronous copies
    let async_copies = [
        "cudaMemcpyAsync",
        "cudaMemcpyToSymbolAsync",
        "cudaMemcpyFromSymbolAsync",
        "cudaMemcpy2DAsync",
        "cudaMemcpy3DAsync",
    ];
    j = 0;
    while j < async_copies.len() {
        push!(call(
            async_copies[j],
            ApiFamily::CudaRuntime,
            BlockingClass::NonBlocking,
            true
        ));
        j += 1;
    }
    // memsets: synchronous in name, but NOT implicitly blocking (paper §III-C)
    let memsets = ["cudaMemset", "cudaMemset2D", "cudaMemset3D"];
    j = 0;
    while j < memsets.len() {
        push!(call(
            memsets[j],
            ApiFamily::CudaRuntime,
            BlockingClass::NonBlocking,
            true
        ));
        j += 1;
    }
    // info + symbols + device management + execution control
    let more_locals = rt_local![
        "cudaMemGetInfo",
        "cudaGetSymbolAddress",
        "cudaGetSymbolSize",
        "cudaGetDeviceCount",
        "cudaGetDeviceProperties",
        "cudaChooseDevice",
        "cudaSetDevice",
        "cudaGetDevice",
        "cudaSetValidDevices",
        "cudaSetDeviceFlags",
        "cudaConfigureCall",
        "cudaFuncGetAttributes",
        "cudaFuncSetCacheConfig",
        "cudaStreamCreate",
        "cudaStreamDestroy",
        "cudaStreamQuery",
        "cudaEventCreate",
        "cudaEventCreateWithFlags",
        "cudaEventRecord",
        "cudaEventQuery",
        "cudaEventDestroy",
        "cudaEventElapsedTime",
        "cudaThreadExit",
        "cudaThreadSetLimit",
        "cudaThreadGetLimit",
        "cudaGetLastError",
        "cudaPeekAtLastError",
        "cudaGetErrorString",
        "cudaDriverGetVersion",
        "cudaRuntimeGetVersion",
        "cudaGetExportTable",
    ];
    j = 0;
    while j < more_locals.len() {
        push!(more_locals[j]);
        j += 1;
    }
    // argument marshalling: the staged argument's size is the bytes
    // attribute the wrapper records
    push!(call(
        "cudaSetupArgument",
        ApiFamily::CudaRuntime,
        BlockingClass::Local,
        true
    ));
    // kernel launch: asynchronous submission
    push!(call(
        "cudaLaunch",
        ApiFamily::CudaRuntime,
        BlockingClass::NonBlocking,
        false
    ));
    // explicit synchronization
    let syncs = [
        "cudaStreamSynchronize",
        "cudaEventSynchronize",
        "cudaThreadSynchronize",
    ];
    j = 0;
    while j < syncs.len() {
        push!(call(
            syncs[j],
            ApiFamily::CudaRuntime,
            BlockingClass::ExplicitSync,
            false
        ));
        j += 1;
    }
    assert!(i == 65, "runtime API spec must list exactly 65 calls");
    out
};

/// The 99 CUDA **driver API** calls (CUDA 3.1).
pub static CUDA_DRIVER_CALLS: &[CallSpec] = &{
    let mut out = [call("", ApiFamily::CudaDriver, BlockingClass::Local, false); 99];
    let mut i = 0;
    macro_rules! push {
        ($spec:expr) => {{
            out[i] = $spec;
            i += 1;
        }};
    }
    let locals = drv_local![
        "cuInit",
        "cuDriverGetVersion",
        "cuDeviceGet",
        "cuDeviceGetCount",
        "cuDeviceGetName",
        "cuDeviceComputeCapability",
        "cuDeviceTotalMem",
        "cuDeviceGetProperties",
        "cuDeviceGetAttribute",
        "cuCtxCreate",
        "cuCtxDestroy",
        "cuCtxAttach",
        "cuCtxDetach",
        "cuCtxPushCurrent",
        "cuCtxPopCurrent",
        "cuCtxGetDevice",
        "cuModuleLoad",
        "cuModuleLoadData",
        "cuModuleLoadDataEx",
        "cuModuleLoadFatBinary",
        "cuModuleUnload",
        "cuModuleGetFunction",
        "cuModuleGetGlobal",
        "cuModuleGetTexRef",
        "cuModuleGetSurfRef",
        "cuMemGetInfo",
        "cuMemAllocPitch",
        "cuMemFree",
        "cuMemGetAddressRange",
        "cuMemAllocHost",
        "cuMemFreeHost",
        "cuMemHostAlloc",
        "cuMemHostGetDevicePointer",
    ];
    let mut j = 0;
    while j < locals.len() {
        push!(locals[j]);
        j += 1;
    }
    // allocation records the requested size (mirrors cudaMalloc above)
    push!(call(
        "cuMemAlloc",
        ApiFamily::CudaDriver,
        BlockingClass::Local,
        true
    ));
    // synchronous copies: implicit-blocking set
    let sync_copies = [
        "cuMemcpyHtoD",
        "cuMemcpyDtoH",
        "cuMemcpyDtoD",
        "cuMemcpyDtoA",
        "cuMemcpyAtoD",
        "cuMemcpyHtoA",
        "cuMemcpyAtoH",
        "cuMemcpyAtoA",
        "cuMemcpy2D",
        "cuMemcpy2DUnaligned",
        "cuMemcpy3D",
    ];
    j = 0;
    while j < sync_copies.len() {
        push!(call(
            sync_copies[j],
            ApiFamily::CudaDriver,
            BlockingClass::ImplicitSync,
            true
        ));
        j += 1;
    }
    let async_copies = [
        "cuMemcpyHtoDAsync",
        "cuMemcpyDtoHAsync",
        "cuMemcpyDtoDAsync",
        "cuMemcpyHtoAAsync",
        "cuMemcpyAtoHAsync",
        "cuMemcpy2DAsync",
        "cuMemcpy3DAsync",
    ];
    j = 0;
    while j < async_copies.len() {
        push!(call(
            async_copies[j],
            ApiFamily::CudaDriver,
            BlockingClass::NonBlocking,
            true
        ));
        j += 1;
    }
    // memsets: NOT in the implicit blocking set (paper §III-C)
    let memsets = [
        "cuMemsetD8",
        "cuMemsetD16",
        "cuMemsetD32",
        "cuMemsetD2D8",
        "cuMemsetD2D16",
        "cuMemsetD2D32",
    ];
    j = 0;
    while j < memsets.len() {
        push!(call(
            memsets[j],
            ApiFamily::CudaDriver,
            BlockingClass::NonBlocking,
            true
        ));
        j += 1;
    }
    let more_locals = drv_local![
        "cuFuncSetBlockShape",
        "cuFuncSetSharedSize",
        "cuFuncGetAttribute",
        "cuFuncSetCacheConfig",
        "cuArrayCreate",
        "cuArrayGetDescriptor",
        "cuArrayDestroy",
        "cuArray3DCreate",
        "cuArray3DGetDescriptor",
        "cuTexRefSetArray",
        "cuTexRefSetAddress",
        "cuTexRefSetAddress2D",
        "cuTexRefSetFormat",
        "cuTexRefSetAddressMode",
        "cuTexRefSetFilterMode",
        "cuTexRefSetFlags",
        "cuTexRefGetAddress",
        "cuTexRefGetArray",
        "cuTexRefGetAddressMode",
        "cuTexRefGetFilterMode",
        "cuTexRefGetFormat",
        "cuTexRefGetFlags",
        "cuParamSetSize",
        "cuParamSeti",
        "cuParamSetf",
        "cuParamSetTexRef",
        "cuEventCreate",
        "cuEventRecord",
        "cuEventQuery",
        "cuEventDestroy",
        "cuEventElapsedTime",
        "cuStreamCreate",
        "cuStreamQuery",
        "cuStreamDestroy",
    ];
    j = 0;
    while j < more_locals.len() {
        push!(more_locals[j]);
        j += 1;
    }
    // argument marshalling mirrors cudaSetupArgument: the staged argument's
    // size is the bytes attribute
    push!(call(
        "cuParamSetv",
        ApiFamily::CudaDriver,
        BlockingClass::Local,
        true
    ));
    let launches = ["cuLaunch", "cuLaunchGrid", "cuLaunchGridAsync"];
    j = 0;
    while j < launches.len() {
        push!(call(
            launches[j],
            ApiFamily::CudaDriver,
            BlockingClass::NonBlocking,
            false
        ));
        j += 1;
    }
    let syncs = [
        "cuCtxSynchronize",
        "cuEventSynchronize",
        "cuStreamSynchronize",
    ];
    j = 0;
    while j < syncs.len() {
        push!(call(
            syncs[j],
            ApiFamily::CudaDriver,
            BlockingClass::ExplicitSync,
            false
        ));
        j += 1;
    }
    assert!(i == 99, "driver API spec must list exactly 99 calls");
    out
};

/// Build the 167 CUBLAS entry points (CUBLAS shipped with CUDA 3.1):
/// 17 helper routines + 54 BLAS-1 + 66 BLAS-2 + 30 BLAS-3.
pub fn cublas_calls() -> Vec<CallSpec> {
    let mut out = Vec::with_capacity(167);
    let helper = |n: &'static str, bytes: bool, blocking: BlockingClass| CallSpec {
        name: n,
        family: ApiFamily::Cublas,
        blocking,
        has_bytes: bytes,
    };
    // helpers: 17
    for spec in [
        helper("cublasInit", false, BlockingClass::Local),
        helper("cublasShutdown", false, BlockingClass::Local),
        helper("cublasGetError", false, BlockingClass::Local),
        helper("cublasGetVersion", false, BlockingClass::Local),
        helper("cublasXerbla", false, BlockingClass::Local),
        helper("cublasSetKernelStream", false, BlockingClass::Local),
        helper("cublasAlloc", true, BlockingClass::Local),
        helper("cublasFree", false, BlockingClass::Local),
        helper("cublasSetVector", true, BlockingClass::ImplicitSync),
        helper("cublasGetVector", true, BlockingClass::ImplicitSync),
        helper("cublasSetMatrix", true, BlockingClass::ImplicitSync),
        helper("cublasGetMatrix", true, BlockingClass::ImplicitSync),
        helper("cublasSetVectorAsync", true, BlockingClass::NonBlocking),
        helper("cublasGetVectorAsync", true, BlockingClass::NonBlocking),
        helper("cublasSetMatrixAsync", true, BlockingClass::NonBlocking),
        helper("cublasGetMatrixAsync", true, BlockingClass::NonBlocking),
        helper("cublasSetStream", false, BlockingClass::Local),
    ] {
        out.push(spec);
    }

    let leak = |s: String| -> &'static str { Box::leak(s.into_boxed_str()) };
    let computational = |name: String| CallSpec {
        name: leak(name),
        family: ApiFamily::Cublas,
        blocking: BlockingClass::NonBlocking, // launches, returns immediately
        has_bytes: true,
    };

    // BLAS 1 — 13 (s) + 13 (d) + 14 (c) + 14 (z) = 54
    for t in ["s", "d"] {
        for r in [
            format!("cublasI{t}amax"),
            format!("cublasI{t}amin"),
            format!("cublas{}asum", t.to_uppercase()),
        ] {
            out.push(computational(r));
        }
        for r in [
            "axpy", "copy", "dot", "nrm2", "rot", "rotg", "rotm", "rotmg", "scal", "swap",
        ] {
            out.push(computational(format!("cublas{}{}", t.to_uppercase(), r)));
        }
    }
    for (t, prefix_nrm) in [("c", "Sc"), ("z", "Dz")] {
        for r in [
            format!("cublasI{t}amax"),
            format!("cublasI{t}amin"),
            format!("cublas{prefix_nrm}asum"),
            format!("cublas{prefix_nrm}nrm2"),
        ] {
            out.push(computational(r));
        }
        let tt = t.to_uppercase();
        for r in [
            "axpy", "copy", "dotu", "dotc", "rot", "rotg", "scal", "swap",
        ] {
            out.push(computational(format!("cublas{tt}{r}")));
        }
        // mixed real-complex scal / rot (csscal, zdscal, csrot, zdrot)
        let mixed = if t == "c" {
            ["cublasCsscal", "cublasCsrot"]
        } else {
            ["cublasZdscal", "cublasZdrot"]
        };
        for r in mixed {
            out.push(computational(r.to_owned()));
        }
    }

    // BLAS 2 — 16 (s) + 16 (d) + 17 (c) + 17 (z) = 66
    for t in ["S", "D"] {
        for r in [
            "gbmv", "gemv", "ger", "sbmv", "spmv", "spr", "spr2", "symv", "syr", "syr2", "tbmv",
            "tbsv", "tpmv", "tpsv", "trmv", "trsv",
        ] {
            out.push(computational(format!("cublas{t}{r}")));
        }
    }
    for t in ["C", "Z"] {
        for r in [
            "gbmv", "gemv", "gerc", "geru", "hbmv", "hemv", "her", "her2", "hpmv", "hpr", "hpr2",
            "tbmv", "tbsv", "tpmv", "tpsv", "trmv", "trsv",
        ] {
            out.push(computational(format!("cublas{t}{r}")));
        }
    }

    // BLAS 3 — 6 (s) + 6 (d) + 9 (c) + 9 (z) = 30
    for t in ["S", "D"] {
        for r in ["gemm", "symm", "syrk", "syr2k", "trmm", "trsm"] {
            out.push(computational(format!("cublas{t}{r}")));
        }
    }
    for t in ["C", "Z"] {
        for r in [
            "gemm", "symm", "hemm", "syrk", "herk", "syr2k", "her2k", "trmm", "trsm",
        ] {
            out.push(computational(format!("cublas{t}{r}")));
        }
    }
    out
}

/// The 13 CUFFT entry points (CUFFT shipped with CUDA 3.1).
pub static CUFFT_CALLS: &[CallSpec] = &[
    call("cufftPlan1d", ApiFamily::Cufft, BlockingClass::Local, true),
    call("cufftPlan2d", ApiFamily::Cufft, BlockingClass::Local, true),
    call("cufftPlan3d", ApiFamily::Cufft, BlockingClass::Local, true),
    call(
        "cufftPlanMany",
        ApiFamily::Cufft,
        BlockingClass::Local,
        true,
    ),
    call(
        "cufftDestroy",
        ApiFamily::Cufft,
        BlockingClass::Local,
        false,
    ),
    call(
        "cufftExecC2C",
        ApiFamily::Cufft,
        BlockingClass::NonBlocking,
        true,
    ),
    call(
        "cufftExecR2C",
        ApiFamily::Cufft,
        BlockingClass::NonBlocking,
        true,
    ),
    call(
        "cufftExecC2R",
        ApiFamily::Cufft,
        BlockingClass::NonBlocking,
        true,
    ),
    call(
        "cufftExecZ2Z",
        ApiFamily::Cufft,
        BlockingClass::NonBlocking,
        true,
    ),
    call(
        "cufftExecD2Z",
        ApiFamily::Cufft,
        BlockingClass::NonBlocking,
        true,
    ),
    call(
        "cufftExecZ2D",
        ApiFamily::Cufft,
        BlockingClass::NonBlocking,
        true,
    ),
    call(
        "cufftSetStream",
        ApiFamily::Cufft,
        BlockingClass::Local,
        false,
    ),
    call(
        "cufftSetCompatibilityMode",
        ApiFamily::Cufft,
        BlockingClass::Local,
        false,
    ),
];

/// The MPI calls IPM traditionally monitors (a representative subset of the
/// PMPI surface — IPM's MPI coverage predates this paper).
pub static MPI_CALLS: &[CallSpec] = &[
    call(
        "MPI_Send",
        ApiFamily::Mpi,
        BlockingClass::ExplicitSync,
        true,
    ),
    call(
        "MPI_Recv",
        ApiFamily::Mpi,
        BlockingClass::ExplicitSync,
        true,
    ),
    call(
        "MPI_Isend",
        ApiFamily::Mpi,
        BlockingClass::NonBlocking,
        true,
    ),
    // posts a receive without a payload: the message size is only known
    // when the matching MPI_Wait completes, so the wrapper has no byte
    // count to record at call time
    call(
        "MPI_Irecv",
        ApiFamily::Mpi,
        BlockingClass::NonBlocking,
        false,
    ),
    // a wait that completes a receive delivers the payload, and the
    // wrapper records its size (0 when completing a send)
    call(
        "MPI_Wait",
        ApiFamily::Mpi,
        BlockingClass::ExplicitSync,
        true,
    ),
    call(
        "MPI_Waitall",
        ApiFamily::Mpi,
        BlockingClass::ExplicitSync,
        false,
    ),
    call(
        "MPI_Barrier",
        ApiFamily::Mpi,
        BlockingClass::ExplicitSync,
        false,
    ),
    call(
        "MPI_Bcast",
        ApiFamily::Mpi,
        BlockingClass::ExplicitSync,
        true,
    ),
    call(
        "MPI_Reduce",
        ApiFamily::Mpi,
        BlockingClass::ExplicitSync,
        true,
    ),
    call(
        "MPI_Allreduce",
        ApiFamily::Mpi,
        BlockingClass::ExplicitSync,
        true,
    ),
    call(
        "MPI_Gather",
        ApiFamily::Mpi,
        BlockingClass::ExplicitSync,
        true,
    ),
    call(
        "MPI_Allgather",
        ApiFamily::Mpi,
        BlockingClass::ExplicitSync,
        true,
    ),
    call(
        "MPI_Scatter",
        ApiFamily::Mpi,
        BlockingClass::ExplicitSync,
        true,
    ),
    call(
        "MPI_Alltoall",
        ApiFamily::Mpi,
        BlockingClass::ExplicitSync,
        true,
    ),
    call("MPI_Comm_rank", ApiFamily::Mpi, BlockingClass::Local, false),
    call("MPI_Comm_size", ApiFamily::Mpi, BlockingClass::Local, false),
    call("MPI_Wtime", ApiFamily::Mpi, BlockingClass::Local, false),
];

/// The host I/O calls the I/O facade times (repo extension; IPM proper
/// monitors POSIX I/O the same way through its `libc` wrappers). None of
/// these touch the device, so none participate in host-idle probing.
pub static IO_CALLS: &[CallSpec] = &[
    call("fopen", ApiFamily::Io, BlockingClass::Local, false),
    call("fread", ApiFamily::Io, BlockingClass::Local, true),
    call("fwrite", ApiFamily::Io, BlockingClass::Local, true),
    call("fclose", ApiFamily::Io, BlockingClass::Local, false),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn counts_match_the_paper() {
        // §III-A: "99 calls in the driver API and 65 calls in the runtime API"
        assert_eq!(CUDA_RUNTIME_CALLS.len(), 65);
        assert_eq!(CUDA_DRIVER_CALLS.len(), 99);
        // §III-D: "13 calls in CUFFT and 167 calls in CUBLAS"
        assert_eq!(CUFFT_CALLS.len(), 13);
        assert_eq!(cublas_calls().len(), 167);
    }

    #[test]
    fn names_are_unique_within_each_family() {
        for calls in [
            CUDA_RUNTIME_CALLS.to_vec(),
            CUDA_DRIVER_CALLS.to_vec(),
            CUFFT_CALLS.to_vec(),
            cublas_calls(),
            MPI_CALLS.to_vec(),
            IO_CALLS.to_vec(),
        ] {
            let set: HashSet<&str> = calls.iter().map(|c| c.name).collect();
            assert_eq!(set.len(), calls.len(), "duplicate names in a family");
        }
    }

    #[test]
    fn names_are_unique_across_all_families() {
        // the hash table keys on the bare entry-point name, so a collision
        // across families would silently merge two different calls
        let mut all: Vec<String> = Vec::new();
        for calls in [
            CUDA_RUNTIME_CALLS.to_vec(),
            CUDA_DRIVER_CALLS.to_vec(),
            CUFFT_CALLS.to_vec(),
            cublas_calls(),
            MPI_CALLS.to_vec(),
            IO_CALLS.to_vec(),
        ] {
            all.extend(calls.iter().map(|c| c.name.to_owned()));
        }
        let set: HashSet<&str> = all.iter().map(|s| s.as_str()).collect();
        assert_eq!(set.len(), all.len(), "duplicate names across families");
    }

    /// Regression pins for rows corrected by the `ipm-speccheck` audit:
    /// wrappers record real byte counts for these calls, so the spec must
    /// say so (and vice versa for MPI_Irecv, whose payload size is unknown
    /// at post time).
    #[test]
    fn audited_rows_keep_their_byte_attribution() {
        let row = |fam: &[CallSpec], name: &str| -> CallSpec {
            *fam.iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("{name} missing from spec"))
        };
        let malloc = row(CUDA_RUNTIME_CALLS, "cudaMalloc");
        assert!(
            malloc.has_bytes,
            "cudaMalloc wrapper records the alloc size"
        );
        assert_eq!(malloc.blocking, BlockingClass::Local);
        let setup = row(CUDA_RUNTIME_CALLS, "cudaSetupArgument");
        assert!(
            setup.has_bytes,
            "cudaSetupArgument wrapper records the argument size"
        );
        assert_eq!(setup.blocking, BlockingClass::Local);
        let mem_alloc = row(CUDA_DRIVER_CALLS, "cuMemAlloc");
        assert!(mem_alloc.has_bytes, "cuMemAlloc mirrors cudaMalloc");
        assert_eq!(mem_alloc.blocking, BlockingClass::Local);
        let param_set = row(CUDA_DRIVER_CALLS, "cuParamSetv");
        assert!(
            param_set.has_bytes,
            "cuParamSetv mirrors cudaSetupArgument: argument size is recorded"
        );
        assert_eq!(param_set.blocking, BlockingClass::Local);
        let irecv = row(MPI_CALLS, "MPI_Irecv");
        assert!(
            !irecv.has_bytes,
            "MPI_Irecv posts without a payload; bytes are attributed at MPI_Wait"
        );
        let recv = row(MPI_CALLS, "MPI_Recv");
        assert!(
            recv.has_bytes,
            "MPI_Recv returns the payload; the wrapper sizes it from the result"
        );
        let wait = row(MPI_CALLS, "MPI_Wait");
        assert!(
            wait.has_bytes,
            "MPI_Wait completing a receive delivers (and sizes) the payload"
        );
    }

    #[test]
    fn memsets_are_excluded_from_implicit_blocking() {
        // the paper's microbenchmark: sync memory ops block implicitly,
        // "with the notable exception of cudaMemset and cuMemset"
        for c in CUDA_RUNTIME_CALLS.iter().chain(CUDA_DRIVER_CALLS) {
            if c.name.contains("Memset") || c.name.contains("emsetD") {
                assert_ne!(
                    c.blocking,
                    BlockingClass::ImplicitSync,
                    "{} misclassified",
                    c.name
                );
            }
        }
        // while plain cudaMemcpy is in the set
        let memcpy = CUDA_RUNTIME_CALLS
            .iter()
            .find(|c| c.name == "cudaMemcpy")
            .unwrap();
        assert_eq!(memcpy.blocking, BlockingClass::ImplicitSync);
    }

    #[test]
    fn async_copies_never_block() {
        for c in CUDA_RUNTIME_CALLS.iter().chain(CUDA_DRIVER_CALLS) {
            if c.name.ends_with("Async") {
                assert_eq!(
                    c.blocking,
                    BlockingClass::NonBlocking,
                    "{} misclassified",
                    c.name
                );
            }
        }
    }

    #[test]
    fn transfers_carry_bytes() {
        for c in CUDA_RUNTIME_CALLS.iter().chain(CUDA_DRIVER_CALLS) {
            if c.name.contains("Memcpy") || c.name.contains("emcpy") {
                assert!(c.has_bytes, "{} should record bytes", c.name);
            }
        }
        let zgemm = cublas_calls()
            .into_iter()
            .find(|c| c.name == "cublasZgemm")
            .unwrap();
        assert!(zgemm.has_bytes);
    }

    #[test]
    fn families_are_tagged_consistently() {
        assert!(CUDA_RUNTIME_CALLS
            .iter()
            .all(|c| c.family == ApiFamily::CudaRuntime));
        assert!(CUDA_DRIVER_CALLS
            .iter()
            .all(|c| c.family == ApiFamily::CudaDriver));
        assert!(CUFFT_CALLS.iter().all(|c| c.family == ApiFamily::Cufft));
        assert!(cublas_calls().iter().all(|c| c.family == ApiFamily::Cublas));
        assert!(MPI_CALLS.iter().all(|c| c.family == ApiFamily::Mpi));
        assert!(IO_CALLS.iter().all(|c| c.family == ApiFamily::Io));
    }

    #[test]
    fn io_rows_never_participate_in_host_idle_probing() {
        // the I/O family is a repo extension: plain host calls, sized on
        // fread/fwrite, and never in the implicit blocking set
        assert_eq!(IO_CALLS.len(), 4);
        for c in IO_CALLS {
            assert_eq!(c.blocking, BlockingClass::Local, "{} misclassified", c.name);
        }
        let sized: Vec<&str> = IO_CALLS
            .iter()
            .filter(|c| c.has_bytes)
            .map(|c| c.name)
            .collect();
        assert_eq!(sized, vec!["fread", "fwrite"]);
    }

    #[test]
    fn key_entry_points_are_present() {
        let rt: HashSet<&str> = CUDA_RUNTIME_CALLS.iter().map(|c| c.name).collect();
        for name in [
            "cudaMalloc",
            "cudaMemcpy",
            "cudaConfigureCall",
            "cudaSetupArgument",
            "cudaLaunch",
            "cudaEventRecord",
            "cudaStreamSynchronize",
            "cudaThreadSynchronize",
            "cudaMemcpyToSymbol",
            "cudaGetDeviceCount",
        ] {
            assert!(rt.contains(name), "runtime spec missing {name}");
        }
        let drv: HashSet<&str> = CUDA_DRIVER_CALLS.iter().map(|c| c.name).collect();
        for name in [
            "cuInit",
            "cuMemAlloc",
            "cuMemcpyHtoD",
            "cuLaunchGrid",
            "cuCtxSynchronize",
        ] {
            assert!(drv.contains(name), "driver spec missing {name}");
        }
        let blas: HashSet<String> = cublas_calls().iter().map(|c| c.name.to_owned()).collect();
        for name in [
            "cublasZgemm",
            "cublasDgemm",
            "cublasSetMatrix",
            "cublasGetMatrix",
            "cublasInit",
        ] {
            assert!(blas.contains(name), "cublas spec missing {name}");
        }
    }
}
