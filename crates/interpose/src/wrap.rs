//! The wrapper anatomy (paper Fig. 2).
//!
//! Every IPM wrapper follows the same shape:
//!
//! ```c
//! cudaError_t cudaCall(arg1, ...) {
//!     begin = get_time();
//!     ret = real_cudaCall(arg1, ...);
//!     end = get_time();
//!     UPDATE_DATA(CUDA_CALL_ID, end - begin);
//!     return ret;
//! }
//! ```
//!
//! [`wrap_call`] is that anatomy as a reusable function: time the *real*
//! call on the caller's virtual clock, report `(call, bytes, duration)` to
//! a [`MonitorSink`], pass the return value through unchanged. The call is
//! identified by a [`CallHandle`] — the interned `CALL_ID` of the C
//! original, resolved once per site via the [`site!`](crate::site) macro —
//! so the steady-state record path never touches the name string.

use crate::registry::CallHandle;
use ipm_sim_core::SimClock;

/// Where wrappers deposit measurements. Implemented by `ipm-core`'s
/// performance hash table; tests use simple recording sinks.
pub trait MonitorSink: Send + Sync {
    /// Record one completed call: its interned handle, the byte count
    /// attribute (0 when the call has none), and the host-side duration.
    fn update(&self, call: CallHandle, bytes: u64, duration: f64);

    /// Record one completed call with its begin/end timestamps. Sinks that
    /// keep an event stream (the trace ring) override this to capture the
    /// interval; the default forwards the duration to [`Self::update`], so
    /// aggregate-only sinks need not care.
    fn span(&self, call: CallHandle, bytes: u64, begin: f64, end: f64) {
        self.update(call, bytes, end - begin);
    }
}

/// A sink that drops everything (monitoring disabled).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl MonitorSink for NullSink {
    fn update(&self, _call: CallHandle, _bytes: u64, _duration: f64) {}
}

/// Execute `real` bracketed by virtual-clock timestamps and report the
/// duration to `sink` — Fig. 2 as a higher-order function. A configurable
/// `overhead` is charged to the clock to model the cost of the monitoring
/// itself (what the paper's runtime-dilatation study measures).
pub fn wrap_call<R>(
    clock: &SimClock,
    sink: &dyn MonitorSink,
    call: CallHandle,
    bytes: u64,
    overhead: f64,
    real: impl FnOnce() -> R,
) -> R {
    let begin = clock.now();
    let ret = real();
    clock.advance(overhead);
    let end = clock.now();
    sink.span(call, bytes, begin, end);
    ret
}

/// [`wrap_call`] for calls whose byte count is only known once the real
/// call has returned (e.g. `MPI_Recv`, where the received payload *is* the
/// result): `bytes_of` inspects the return value, after timing but before
/// the sink sees the event, so the recorded size reflects what actually
/// moved. A failed call may legitimately report 0.
pub fn wrap_call_sized<R>(
    clock: &SimClock,
    sink: &dyn MonitorSink,
    call: CallHandle,
    overhead: f64,
    real: impl FnOnce() -> R,
    bytes_of: impl FnOnce(&R) -> u64,
) -> R {
    let begin = clock.now();
    let ret = real();
    clock.advance(overhead);
    let end = clock.now();
    sink.span(call, bytes_of(&ret), begin, end);
    ret
}

/// Generate a monitored facade method: times the inner call on `$self`'s
/// clock and reports to `$self`'s sink. The name literal resolves through
/// a per-site [`site!`](crate::site) cache.
///
/// ```ignore
/// wrap_method! { self, "cudaMalloc", bytes = size as u64,
///     self.inner.cuda_malloc(size) }
/// ```
#[macro_export]
macro_rules! wrap_method {
    ($self:ident, $name:literal, bytes = $bytes:expr, $call:expr) => {{
        $crate::wrap::wrap_call(
            $self.wrapper_clock(),
            $self.wrapper_sink(),
            $crate::site!($name),
            $bytes,
            $self.wrapper_overhead(),
            || $call,
        )
    }};
    ($self:ident, $name:literal, $call:expr) => {
        $crate::wrap_method!($self, $name, bytes = 0, $call)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site;
    use parking_lot::Mutex;

    #[derive(Default)]
    struct RecordingSink {
        events: Mutex<Vec<(CallHandle, u64, f64)>>,
    }

    impl MonitorSink for RecordingSink {
        fn update(&self, call: CallHandle, bytes: u64, duration: f64) {
            self.events.lock().push((call, bytes, duration));
        }
    }

    #[test]
    fn wrap_call_times_the_inner_call() {
        let clock = SimClock::new();
        let sink = RecordingSink::default();
        let out = wrap_call(&clock, &sink, site!("cudaMemcpy"), 4096, 0.0, || {
            clock.advance(0.25); // the "real" call takes 0.25 virtual s
            42
        });
        assert_eq!(out, 42);
        let events = sink.events.lock();
        assert_eq!(events.len(), 1);
        let (call, bytes, duration) = events[0];
        assert_eq!(&*call.name(), "cudaMemcpy");
        assert_eq!(bytes, 4096);
        assert!((duration - 0.25).abs() < 1e-12);
    }

    #[test]
    fn wrap_call_charges_monitoring_overhead() {
        let clock = SimClock::new();
        let sink = NullSink;
        wrap_call(&clock, &sink, site!("cudaLaunch"), 0, 1e-6, || {});
        assert!((clock.now() - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn return_values_and_errors_pass_through() {
        let clock = SimClock::new();
        let sink = NullSink;
        let ok: Result<i32, &str> = wrap_call(&clock, &sink, site!("x"), 0, 0.0, || Ok(7));
        let err: Result<i32, &str> = wrap_call(&clock, &sink, site!("x"), 0, 0.0, || Err("boom"));
        assert_eq!(ok, Ok(7));
        assert_eq!(err, Err("boom"));
    }

    #[derive(Default)]
    struct SpanSink {
        spans: Mutex<Vec<(CallHandle, f64, f64)>>,
    }

    impl MonitorSink for SpanSink {
        fn update(&self, _call: CallHandle, _bytes: u64, _duration: f64) {}
        fn span(&self, call: CallHandle, _bytes: u64, begin: f64, end: f64) {
            self.spans.lock().push((call, begin, end));
        }
    }

    #[test]
    fn span_override_sees_begin_and_end_timestamps() {
        let clock = SimClock::new();
        clock.advance(1.0);
        let sink = SpanSink::default();
        wrap_call(&clock, &sink, site!("cudaLaunch"), 0, 0.0, || {
            clock.advance(0.5)
        });
        let spans = sink.spans.lock();
        assert_eq!(spans.len(), 1);
        let (call, begin, end) = spans[0];
        assert_eq!(&*call.name(), "cudaLaunch");
        assert!((begin - 1.0).abs() < 1e-12);
        assert!((end - 1.5).abs() < 1e-12);
    }

    #[test]
    fn wrap_call_sized_records_result_derived_bytes() {
        let clock = SimClock::new();
        let sink = RecordingSink::default();
        let got: Result<Vec<u8>, &str> = wrap_call_sized(
            &clock,
            &sink,
            site!("MPI_Recv"),
            0.0,
            || Ok(vec![0u8; 512]),
            |r| r.as_ref().map_or(0, |d: &Vec<u8>| d.len() as u64),
        );
        assert_eq!(got.unwrap().len(), 512);
        let events = sink.events.lock();
        assert_eq!(events[0].1, 512);
        assert_eq!(&*events[0].0.name(), "MPI_Recv");
        // errors pass through and record zero bytes
        drop(events);
        let err: Result<Vec<u8>, &str> = wrap_call_sized(
            &clock,
            &sink,
            site!("MPI_Recv"),
            0.0,
            || Err("truncated"),
            |r| r.as_ref().map_or(0, |d: &Vec<u8>| d.len() as u64),
        );
        assert!(err.is_err());
        assert_eq!(sink.events.lock()[1].1, 0);
    }

    #[test]
    fn nested_wrapped_calls_nest_durations() {
        // an outer library call (cublasDgemm) that internally makes a
        // wrapped runtime call (cudaLaunch): the outer duration includes
        // the inner one, as it does for real IPM
        let clock = SimClock::new();
        let sink = RecordingSink::default();
        wrap_call(&clock, &sink, site!("cublasDgemm"), 0, 0.0, || {
            wrap_call(&clock, &sink, site!("cudaLaunch"), 0, 0.0, || {
                clock.advance(0.1)
            });
            clock.advance(0.05);
        });
        let events = sink.events.lock();
        assert_eq!(&*events[0].0.name(), "cudaLaunch");
        assert_eq!(&*events[1].0.name(), "cublasDgemm");
        assert!(events[1].2 > events[0].2);
        assert!((events[1].2 - 0.15).abs() < 1e-12);
    }
}
