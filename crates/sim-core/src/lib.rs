//! # ipm-sim-core
//!
//! The simulation substrate shared by every other crate in the `ipm-rs`
//! workspace: a monotone **virtual clock**, a deterministic **RNG**, the
//! **noise model** used to emulate run-to-run variability on a shared
//! cluster, simple **cost models** (latency/bandwidth transfers, log-tree
//! collectives), and small **statistics** helpers (running min/avg/max,
//! histograms).
//!
//! ## Why virtual time
//!
//! The paper measures applications on real hardware (NERSC Dirac). We have
//! no GPU and no interconnect, so every duration in this reproduction is
//! *virtual*: operations advance a per-rank [`clock::SimClock`] by modeled
//! amounts. Blocking semantics (a synchronous `cudaMemcpy` waiting for an
//! outstanding kernel, an `MPI_Allreduce` waiting for the slowest rank) are
//! preserved exactly, which is what the paper's monitoring methodology
//! observes. Virtual time makes every experiment deterministic and lets the
//! full evaluation run in milliseconds of wall time.

pub mod clock;
pub mod fsio;
pub mod model;
pub mod noise;
pub mod rng;
pub mod stats;
pub mod units;

pub use clock::SimClock;
pub use noise::NoiseModel;
pub use rng::SimRng;
pub use stats::{Histogram, RunningStats};
