//! Formatting helpers for the IPM banner and reports.

/// Format a duration in seconds the way IPM's banner does: two decimals for
/// the `[time]` column.
pub fn fmt_secs(t: f64) -> String {
    format!("{:.2}", t + 0.0) // +0.0 normalizes -0.0
}

/// Format seconds with microsecond resolution (used by the timeline and the
/// accuracy table, which report sub-millisecond kernels).
pub fn fmt_secs_precise(t: f64) -> String {
    format!("{t:.6}")
}

/// Format a byte count with a binary-unit suffix (`B`, `KiB`, `MiB`, `GiB`).
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

/// Format gigabytes with two decimals, as in the banner's `mem [GB]` row.
pub fn fmt_gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e9)
}

/// Percentage with two decimals, as in the banner's `<%wall>` column.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.2}", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formats() {
        assert_eq!(fmt_secs(2.433), "2.43");
        assert_eq!(fmt_secs_precise(0.0000015), "0.000002");
    }

    #[test]
    fn bytes_pick_sensible_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024), "5.00 MiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 * 1024), "3.00 GiB");
    }

    #[test]
    fn pct_and_gb() {
        assert_eq!(fmt_pct(0.6771), "67.71");
        assert_eq!(fmt_gb(4_410_000_000), "4.41");
    }
}
