//! Small statistics containers used across the workspace.
//!
//! [`RunningStats`] mirrors the per-entry record of IPM's performance data
//! hash table (count, total, min, max — Fig. 1 of the paper). [`Histogram`]
//! supports the ensemble study of Fig. 8.

/// Count / total / min / max accumulator — one hash-table entry's statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunningStats {
    pub count: u64,
    pub total: f64,
    pub min: f64,
    pub max: f64,
}

impl Default for RunningStats {
    fn default() -> Self {
        Self {
            count: 0,
            total: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl RunningStats {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.total += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Mean of the recorded observations, or 0 when empty (IPM reports
    /// zero-count entries as zeros in the banner).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Merge another accumulator into this one (cross-rank aggregation).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Fixed-bin histogram over a closed interval.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Observations falling outside `[lo, hi]`.
    pub outliers: u64,
    values: RunningStats,
}

impl Histogram {
    /// Create a histogram with `nbins` equal-width bins over `[lo, hi]`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0);
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            outliers: 0,
            values: RunningStats::new(),
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        self.values.record(v);
        if v < self.lo || v > self.hi {
            self.outliers += 1;
            return;
        }
        let frac = (v - self.lo) / (self.hi - self.lo);
        let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// The bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.bins.len() as f64
    }

    /// Width of one bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins.len() as f64
    }

    /// Summary statistics over *all* observations (including outliers).
    pub fn stats(&self) -> &RunningStats {
        &self.values
    }

    /// Total recorded observations including outliers.
    pub fn count(&self) -> u64 {
        self.values.count
    }

    /// Render as rows of `bin_lo  count` with a proportional ASCII bar —
    /// this is the textual analogue of the paper's Fig. 8 plot.
    pub fn render_ascii(&self, width: usize) -> String {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let bar = "#".repeat((c as usize * width).div_ceil(peak as usize).min(width));
            out.push_str(&format!("{:>10.3} | {:>4} | {}\n", self.bin_lo(i), c, bar));
        }
        out
    }
}

/// Sample standard deviation of a slice (n-1 denominator); 0 for n < 2.
pub fn sample_std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_tracks_extremes() {
        let mut s = RunningStats::new();
        for v in [3.0, 1.0, 2.0] {
            s.record(v);
        }
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_mean_is_zero() {
        assert_eq!(RunningStats::new().mean(), 0.0);
        assert!(RunningStats::new().is_empty());
    }

    #[test]
    fn merge_combines_disjoint_streams() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.record(1.0);
        a.record(2.0);
        b.record(10.0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.max, 10.0);
        assert_eq!(a.min, 1.0);
        assert!((a.total - 13.0).abs() < 1e-12);
        // merging an empty accumulator is a no-op
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for v in [0.5, 1.5, 1.6, 9.99, -1.0, 11.0] {
            h.record(v);
        }
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.outliers, 2);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_upper_edge_lands_in_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(1.0);
        assert_eq!(h.bins()[3], 1);
        assert_eq!(h.outliers, 0);
    }

    #[test]
    fn ascii_render_has_one_row_per_bin() {
        let mut h = Histogram::new(0.0, 1.0, 5);
        h.record(0.1);
        let text = h.render_ascii(20);
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains('#'));
    }

    #[test]
    fn std_dev_matches_hand_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // known sample sd of this classic dataset = 2.138...
        assert!((sample_std_dev(&xs) - 2.13809).abs() < 1e-4);
        assert_eq!(sample_std_dev(&[1.0]), 0.0);
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
    }
}
