//! System-noise model.
//!
//! Section IV-B of the paper performs an *ensemble study*: 120 runs of HPL
//! with IPM and 120 without, showing that IPM's runtime dilatation (~0.21%)
//! is smaller than the natural run-to-run variation caused by "system load,
//! noise and jitter" on a shared cluster. To reproduce that experiment we
//! need a controllable stand-in for the cluster's variability.
//!
//! The model is multiplicative log-normal: a run whose noise-free virtual
//! duration is `T` observes `T * exp(N(mu, sigma))`, with `mu` chosen so the
//! multiplier has unit mean (`mu = -sigma^2 / 2`). Log-normal noise is the
//! standard choice for OS-jitter-dominated run-time distributions: it is
//! positive, right-skewed, and multiplicative — long runs see proportionally
//! more interference. A per-event additive jitter term models fine-grained
//! perturbation (e.g. the µs-scale spread of CUDA event timestamps).

use crate::rng::SimRng;

/// Parameters of the cluster noise model.
#[derive(Clone, Copy, Debug)]
pub struct NoiseModel {
    /// Standard deviation of the log multiplier applied to whole-run
    /// durations. `0.0` disables run-level noise. The paper's Fig. 8
    /// histogram spans roughly ±1% around the mean, i.e. `sigma ~ 0.004`.
    pub run_sigma: f64,
    /// Half-width (seconds) of the uniform per-event jitter. Models
    /// timestamping granularity and PCIe/OS scheduling wiggle on individual
    /// operations. Typical: a few microseconds.
    pub event_jitter: f64,
}

impl NoiseModel {
    /// A noiseless model: every duration is exactly its modeled value.
    /// Used by all deterministic unit tests.
    pub const QUIET: NoiseModel = NoiseModel {
        run_sigma: 0.0,
        event_jitter: 0.0,
    };

    /// Noise calibrated to the paper's Dirac ensemble study (Fig. 8):
    /// run-to-run spread around ±0.5–1%, per-event jitter of ~2 µs.
    pub const DIRAC: NoiseModel = NoiseModel {
        run_sigma: 0.004,
        event_jitter: 2.0e-6,
    };

    /// Multiplier to apply to a whole-run duration. Unit mean.
    pub fn run_multiplier(&self, rng: &mut SimRng) -> f64 {
        if self.run_sigma == 0.0 {
            return 1.0;
        }
        let mu = -self.run_sigma * self.run_sigma / 2.0;
        rng.lognormal(mu, self.run_sigma)
    }

    /// Perturb a single operation duration `d` (seconds). The result is
    /// clamped to be non-negative; jitter is uniform in
    /// `[-event_jitter, +event_jitter]`.
    pub fn perturb_event(&self, d: f64, rng: &mut SimRng) -> f64 {
        if self.event_jitter == 0.0 {
            return d;
        }
        (d + rng.uniform_in(-self.event_jitter, self.event_jitter)).max(0.0)
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::QUIET
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_model_is_identity() {
        let mut rng = SimRng::new(1);
        assert_eq!(NoiseModel::QUIET.run_multiplier(&mut rng), 1.0);
        assert_eq!(NoiseModel::QUIET.perturb_event(0.5, &mut rng), 0.5);
    }

    #[test]
    fn run_multiplier_has_unit_mean() {
        let m = NoiseModel {
            run_sigma: 0.05,
            event_jitter: 0.0,
        };
        let mut rng = SimRng::new(2);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| m.run_multiplier(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.002, "mean = {mean}");
    }

    #[test]
    fn event_perturbation_stays_nonnegative_and_bounded() {
        let m = NoiseModel {
            run_sigma: 0.0,
            event_jitter: 1e-6,
        };
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let d = m.perturb_event(2e-6, &mut rng);
            assert!(d >= 0.0);
            assert!(d <= 3.0001e-6);
        }
        // a zero-duration event can only grow or stay zero
        for _ in 0..1000 {
            assert!(m.perturb_event(0.0, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn dirac_spread_matches_fig8_scale() {
        // the calibrated model should put the vast majority of runs within
        // +-1.5% of the mean, like the paper's histogram
        let mut rng = SimRng::new(4);
        let within = (0..10_000)
            .map(|_| NoiseModel::DIRAC.run_multiplier(&mut rng))
            .filter(|m| (m - 1.0).abs() < 0.015)
            .count();
        assert!(within > 9_900, "within = {within}");
    }
}
