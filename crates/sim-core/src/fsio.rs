//! Simulated file I/O.
//!
//! IPM's event inventory covers file I/O alongside MPI and CUDA (paper
//! §II: "recently been extended to cover a number of other domains such as
//! OpenMP and file-I/O"). This module is the substrate for that domain: an
//! in-memory shared filesystem with a simple performance model (open/close
//! latency, stream bandwidth), real byte contents, and an interposable
//! [`IoApi`] trait the monitoring layer wraps like the stdio calls
//! (`fopen`/`fread`/`fwrite`/`fclose`) the real tool intercepts.

use crate::clock::SimClock;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// File-I/O failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsError {
    /// Opening a non-existent file for reading.
    NotFound,
    /// Using a closed or unknown handle.
    BadHandle,
    /// Reading from a write-only handle or vice versa.
    WrongMode,
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FsError::NotFound => "no such file",
            FsError::BadHandle => "bad file handle",
            FsError::WrongMode => "operation not permitted by open mode",
        })
    }
}

impl std::error::Error for FsError {}

/// Result alias for file operations.
pub type FsResult<T> = Result<T, FsError>;

/// Open mode, like `fopen`'s `"r"` / `"w"` / `"a"`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpenMode {
    Read,
    Write,
    Append,
}

/// An open-file handle (the `FILE*`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FileHandle(u64);

/// Performance model of the (parallel) filesystem.
#[derive(Clone, Copy, Debug)]
pub struct FsConfig {
    /// Metadata latency per open/close (seconds). GPFS-era: ~1 ms.
    pub open_latency: f64,
    /// Streaming read bandwidth per client, bytes/s.
    pub read_bandwidth: f64,
    /// Streaming write bandwidth per client, bytes/s.
    pub write_bandwidth: f64,
}

impl Default for FsConfig {
    fn default() -> Self {
        Self {
            open_latency: 1.2e-3,
            read_bandwidth: 350e6,
            write_bandwidth: 250e6,
        }
    }
}

struct OpenFile {
    path: String,
    mode: OpenMode,
    cursor: usize,
}

struct FsInner {
    files: HashMap<String, Vec<u8>>,
    open: HashMap<FileHandle, OpenFile>,
    next: u64,
}

/// The shared simulated filesystem (one per cluster, like the scratch FS).
pub struct SimFs {
    cfg: FsConfig,
    inner: Mutex<FsInner>,
}

impl SimFs {
    /// An empty filesystem with the given performance model.
    pub fn new(cfg: FsConfig) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            inner: Mutex::new(FsInner {
                files: HashMap::new(),
                open: HashMap::new(),
                next: 1,
            }),
        })
    }

    /// `fopen`: charges metadata latency to `clock`.
    pub fn open(&self, clock: &SimClock, path: &str, mode: OpenMode) -> FsResult<FileHandle> {
        clock.advance(self.cfg.open_latency);
        let mut inner = self.inner.lock();
        let exists = inner.files.contains_key(path);
        match mode {
            OpenMode::Read if !exists => return Err(FsError::NotFound),
            OpenMode::Write => {
                inner.files.insert(path.to_owned(), Vec::new());
            }
            OpenMode::Append if !exists => {
                inner.files.insert(path.to_owned(), Vec::new());
            }
            _ => {}
        }
        let cursor = match mode {
            OpenMode::Append => inner.files.get(path).map(Vec::len).unwrap_or(0),
            _ => 0,
        };
        let h = FileHandle(inner.next);
        inner.next += 1;
        inner.open.insert(
            h,
            OpenFile {
                path: path.to_owned(),
                mode,
                cursor,
            },
        );
        Ok(h)
    }

    /// `fread`: returns the bytes read (short reads at EOF).
    pub fn read(&self, clock: &SimClock, h: FileHandle, buf: &mut [u8]) -> FsResult<usize> {
        let mut inner = self.inner.lock();
        let of = inner.open.get(&h).ok_or(FsError::BadHandle)?;
        if of.mode != OpenMode::Read {
            return Err(FsError::WrongMode);
        }
        let (path, cursor) = (of.path.clone(), of.cursor);
        let data = inner.files.get(&path).ok_or(FsError::NotFound)?;
        let n = buf.len().min(data.len().saturating_sub(cursor));
        buf[..n].copy_from_slice(&data[cursor..cursor + n]);
        inner.open.get_mut(&h).expect("checked").cursor += n;
        drop(inner);
        clock.advance(n as f64 / self.cfg.read_bandwidth);
        Ok(n)
    }

    /// `fwrite`.
    pub fn write(&self, clock: &SimClock, h: FileHandle, data: &[u8]) -> FsResult<usize> {
        let mut inner = self.inner.lock();
        let of = inner.open.get(&h).ok_or(FsError::BadHandle)?;
        if of.mode == OpenMode::Read {
            return Err(FsError::WrongMode);
        }
        let (path, cursor) = (of.path.clone(), of.cursor);
        let file = inner.files.get_mut(&path).ok_or(FsError::NotFound)?;
        if file.len() < cursor + data.len() {
            file.resize(cursor + data.len(), 0);
        }
        file[cursor..cursor + data.len()].copy_from_slice(data);
        inner.open.get_mut(&h).expect("checked").cursor += data.len();
        drop(inner);
        clock.advance(data.len() as f64 / self.cfg.write_bandwidth);
        Ok(data.len())
    }

    /// `fclose`.
    pub fn close(&self, clock: &SimClock, h: FileHandle) -> FsResult<()> {
        clock.advance(self.cfg.open_latency * 0.5);
        match self.inner.lock().open.remove(&h) {
            Some(_) => Ok(()),
            None => Err(FsError::BadHandle),
        }
    }

    /// Size of a file, if it exists (no timing: test/inspection helper).
    pub fn size_of(&self, path: &str) -> Option<usize> {
        self.inner.lock().files.get(path).map(Vec::len)
    }
}

/// The interposable stdio-like surface (what IPM's I/O wrappers cover).
pub trait IoApi: Send + Sync {
    /// `fopen`.
    fn fopen(&self, path: &str, mode: OpenMode) -> FsResult<FileHandle>;
    /// `fread`.
    fn fread(&self, h: FileHandle, buf: &mut [u8]) -> FsResult<usize>;
    /// `fwrite`.
    fn fwrite(&self, h: FileHandle, data: &[u8]) -> FsResult<usize>;
    /// `fclose`.
    fn fclose(&self, h: FileHandle) -> FsResult<()>;
}

/// The bare (unmonitored) binding of a filesystem to one rank's clock.
pub struct RankFs {
    pub fs: Arc<SimFs>,
    pub clock: SimClock,
}

impl IoApi for RankFs {
    fn fopen(&self, path: &str, mode: OpenMode) -> FsResult<FileHandle> {
        self.fs.open(&self.clock, path, mode)
    }
    fn fread(&self, h: FileHandle, buf: &mut [u8]) -> FsResult<usize> {
        self.fs.read(&self.clock, h, buf)
    }
    fn fwrite(&self, h: FileHandle, data: &[u8]) -> FsResult<usize> {
        self.fs.write(&self.clock, h, data)
    }
    fn fclose(&self, h: FileHandle) -> FsResult<()> {
        self.fs.close(&self.clock, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<SimFs>, SimClock) {
        (SimFs::new(FsConfig::default()), SimClock::new())
    }

    #[test]
    fn write_then_read_roundtrips() {
        let (fs, clock) = setup();
        let h = fs
            .open(&clock, "/scratch/traj.crd", OpenMode::Write)
            .unwrap();
        fs.write(&clock, h, b"frame-one").unwrap();
        fs.close(&clock, h).unwrap();
        let h = fs
            .open(&clock, "/scratch/traj.crd", OpenMode::Read)
            .unwrap();
        let mut buf = [0u8; 16];
        let n = fs.read(&clock, h, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"frame-one");
        // short read at EOF
        assert_eq!(fs.read(&clock, h, &mut buf).unwrap(), 0);
        fs.close(&clock, h).unwrap();
    }

    #[test]
    fn append_extends_the_file() {
        let (fs, clock) = setup();
        let h = fs.open(&clock, "f", OpenMode::Write).unwrap();
        fs.write(&clock, h, b"aaa").unwrap();
        fs.close(&clock, h).unwrap();
        let h = fs.open(&clock, "f", OpenMode::Append).unwrap();
        fs.write(&clock, h, b"bbb").unwrap();
        fs.close(&clock, h).unwrap();
        assert_eq!(fs.size_of("f"), Some(6));
        // write mode truncates
        let h = fs.open(&clock, "f", OpenMode::Write).unwrap();
        fs.close(&clock, h).unwrap();
        assert_eq!(fs.size_of("f"), Some(0));
    }

    #[test]
    fn io_charges_virtual_time() {
        let (fs, clock) = setup();
        let before = clock.now();
        let h = fs.open(&clock, "big", OpenMode::Write).unwrap();
        let open_cost = clock.now() - before;
        assert!(open_cost >= 1e-3);
        let before = clock.now();
        fs.write(&clock, h, &vec![0u8; 250_000_000]).unwrap();
        let write_cost = clock.now() - before;
        assert!(
            (write_cost - 1.0).abs() < 0.05,
            "250 MB at 250 MB/s: {write_cost}"
        );
    }

    #[test]
    fn errors_are_reported() {
        let (fs, clock) = setup();
        assert_eq!(
            fs.open(&clock, "nope", OpenMode::Read).unwrap_err(),
            FsError::NotFound
        );
        let h = fs.open(&clock, "f", OpenMode::Write).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(
            fs.read(&clock, h, &mut buf).unwrap_err(),
            FsError::WrongMode
        );
        fs.close(&clock, h).unwrap();
        assert_eq!(fs.close(&clock, h).unwrap_err(), FsError::BadHandle);
        assert_eq!(fs.write(&clock, h, b"x").unwrap_err(), FsError::BadHandle);
    }

    #[test]
    fn filesystem_is_shared_between_clocks() {
        let (fs, clock_a) = setup();
        let clock_b = SimClock::new();
        let h = fs.open(&clock_a, "shared", OpenMode::Write).unwrap();
        fs.write(&clock_a, h, b"from-a").unwrap();
        fs.close(&clock_a, h).unwrap();
        let rank_b = RankFs {
            fs: fs.clone(),
            clock: clock_b.clone(),
        };
        let h = rank_b.fopen("shared", OpenMode::Read).unwrap();
        let mut buf = [0u8; 6];
        rank_b.fread(h, &mut buf).unwrap();
        assert_eq!(&buf, b"from-a");
        // only B's clock advanced for B's reads
        assert!(clock_b.now() > 0.0);
    }
}
