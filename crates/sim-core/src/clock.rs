//! Monotone virtual clocks.
//!
//! A [`SimClock`] tracks virtual seconds as an `f64` stored in an
//! `AtomicU64`. For non-negative IEEE-754 doubles the raw bit pattern is
//! monotone in the numeric value, so `fetch_max` on the bits implements
//! "advance the clock to at least `t`" without a lock. This matters because
//! device timelines are shared between MPI rank threads when several ranks
//! share one GPU (Section IV-D of the paper runs up to 8 ranks per device).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shareable, monotone virtual clock measured in seconds.
///
/// Cloning a `SimClock` yields a handle to the *same* clock (it is an `Arc`
/// internally); use [`SimClock::new`] for an independent clock.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    bits: Arc<AtomicU64>,
}

impl SimClock {
    /// Create a new clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a new clock starting at `t0` seconds.
    pub fn starting_at(t0: f64) -> Self {
        assert!(
            t0 >= 0.0 && t0.is_finite(),
            "clock origin must be finite and >= 0"
        );
        Self {
            bits: Arc::new(AtomicU64::new(t0.to_bits())),
        }
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Advance the clock by `dt` seconds (must be non-negative) and return
    /// the new time.
    ///
    /// This is the common case on a rank-private clock. It is implemented
    /// with a CAS loop so it stays correct even if the clock is shared.
    #[inline]
    pub fn advance(&self, dt: f64) -> f64 {
        debug_assert!(dt >= 0.0, "cannot advance a clock backwards (dt = {dt})");
        let mut cur = self.bits.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(cur) + dt).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return f64::from_bits(next),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Advance the clock to at least `t` seconds; later times win. Returns
    /// the resulting time (which may exceed `t` if another thread advanced
    /// the clock further).
    ///
    /// Non-negative doubles compare the same as their bit patterns, so this
    /// is a plain atomic `fetch_max`.
    #[inline]
    pub fn advance_to(&self, t: f64) -> f64 {
        debug_assert!(t >= 0.0 && t.is_finite());
        let prev = self.bits.fetch_max(t.to_bits(), Ordering::AcqRel);
        f64::from_bits(prev.max(t.to_bits()))
    }

    /// Convenience: wait (in virtual time) until `t`, i.e. `advance_to` but
    /// returning how long the caller blocked.
    #[inline]
    pub fn block_until(&self, t: f64) -> f64 {
        let before = self.now();
        self.advance_to(t);
        (t - before).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn starts_at_zero() {
        let c = SimClock::new();
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(1.5);
        c.advance(0.25);
        assert!((c.now() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = SimClock::starting_at(10.0);
        c.advance_to(5.0); // earlier time must not rewind
        assert_eq!(c.now(), 10.0);
        c.advance_to(12.0);
        assert_eq!(c.now(), 12.0);
    }

    #[test]
    fn clone_shares_state() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(3.0);
        assert_eq!(b.now(), 3.0);
    }

    #[test]
    fn block_until_reports_wait() {
        let c = SimClock::starting_at(1.0);
        let waited = c.block_until(4.0);
        assert!((waited - 3.0).abs() < 1e-12);
        assert_eq!(c.now(), 4.0);
        // blocking until a past time is free
        assert_eq!(c.block_until(2.0), 0.0);
        assert_eq!(c.now(), 4.0);
    }

    #[test]
    fn concurrent_advance_never_loses_updates() {
        let c = SimClock::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(0.001);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!((c.now() - 8.0).abs() < 1e-6, "got {}", c.now());
    }

    #[test]
    fn concurrent_advance_to_takes_max() {
        let c = SimClock::new();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let c = c.clone();
                thread::spawn(move || c.advance_to(i as f64))
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.now(), 7.0);
    }
}
