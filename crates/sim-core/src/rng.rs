//! Deterministic random numbers for the simulation.
//!
//! Every stochastic element of the reproduction (event-bracketing jitter,
//! system noise, workload imbalance) is drawn from a [`SimRng`] seeded from
//! the experiment configuration, so that every table and figure regenerates
//! bit-identically. The generator is SplitMix64 — tiny, fast, and with
//! well-understood statistical quality for simulation purposes (it is the
//! recommended seeder for the xoshiro family).

/// A 64-bit SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create a generator from a seed. Two generators with the same seed
    /// produce identical streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive an independent child stream, e.g. one per MPI rank. Children
    /// with distinct `salt` values are decorrelated.
    pub fn fork(&self, salt: u64) -> Self {
        // Mix the salt through one SplitMix64 step of a copied state so the
        // parent stream is not consumed.
        let mut child = Self {
            state: self.state ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        child.next_u64();
        child
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Uses rejection to avoid modulo bias.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Standard normal via Box–Muller (one value per call; the twin is
    /// discarded for simplicity — throughput is irrelevant here).
    pub fn normal(&mut self) -> f64 {
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE); // (0, 1]
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with explicit mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Log-normal: `exp(N(mu, sigma))`. Used by the system-noise model —
    /// noise on shared clusters is multiplicative and right-skewed.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Exponential with the given rate.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        -(1.0 - self.uniform()).ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ() {
        let root = SimRng::new(7);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::new(1);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = SimRng::new(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.below(5) as usize] += 1;
        }
        for &c in &counts {
            // each bucket expects 10_000; allow 5% deviation
            assert!((c as i64 - 10_000).abs() < 500, "counts = {counts:?}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(9);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = SimRng::new(11);
        for _ in 0..1000 {
            assert!(r.lognormal(0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
