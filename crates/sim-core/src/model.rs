//! Reusable analytic cost models.
//!
//! Both substrate simulators (GPU and MPI) price their operations with the
//! same two primitives:
//!
//! * [`TransferModel`] — the classic α+β model: a fixed latency plus a
//!   size-proportional term. Used for PCIe transfers and network messages.
//! * [`collective_cost`] — log-tree / linear cost formulas for the MPI
//!   collectives the paper's applications exercise.
//!
//! The default constants are calibrated to the paper's testbed (NERSC Dirac:
//! PCIe gen2 x16 to a Tesla C2050, QDR InfiniBand between nodes) — close
//! enough that the *shapes* of the evaluation figures come out right; see
//! `EXPERIMENTS.md` for the calibration notes.

/// Latency/bandwidth (α + n·β) transfer cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferModel {
    /// Fixed per-operation latency in seconds.
    pub latency: f64,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl TransferModel {
    /// Construct a model; bandwidth must be positive.
    pub fn new(latency: f64, bandwidth: f64) -> Self {
        assert!(latency >= 0.0 && bandwidth > 0.0);
        Self { latency, bandwidth }
    }

    /// Time in seconds to move `bytes` bytes.
    #[inline]
    pub fn time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// PCIe gen2 x16 host→device with pageable host memory (Dirac-era):
    /// ~10 µs launch latency, ~3.3 GB/s effective.
    pub fn pcie_h2d_pageable() -> Self {
        Self::new(10e-6, 3.3e9)
    }

    /// PCIe gen2 x16 device→host with pageable host memory: slightly slower
    /// than H2D on Fermi-era systems.
    pub fn pcie_d2h_pageable() -> Self {
        Self::new(10e-6, 3.0e9)
    }

    /// PCIe with pinned (page-locked) host memory: ~5.8 GB/s both ways.
    pub fn pcie_pinned() -> Self {
        Self::new(8e-6, 5.8e9)
    }

    /// On-device (GDDR5) copy bandwidth for device→device transfers.
    pub fn device_local() -> Self {
        Self::new(3e-6, 90e9)
    }

    /// QDR InfiniBand point-to-point: ~1.7 µs latency, ~3.2 GB/s.
    pub fn qdr_infiniband() -> Self {
        Self::new(1.7e-6, 3.2e9)
    }

    /// Intra-node shared-memory MPI transport.
    pub fn shared_memory() -> Self {
        Self::new(0.4e-6, 6.0e9)
    }
}

/// The collective operations priced by [`collective_cost`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    Barrier,
    Bcast,
    Reduce,
    Allreduce,
    Gather,
    Allgather,
    Scatter,
    Alltoall,
}

/// Cost (seconds beyond the synchronization point) of a collective over
/// `nranks` ranks moving `bytes` per rank, on a network described by `net`.
///
/// Formulas are the standard ones from the MPI performance literature
/// (binomial trees for broadcast/reduction, linear root-bound gathers,
/// pairwise exchange for all-to-all). The important qualitative property for
/// the paper's Fig. 10 is that **Gather is linear in `nranks` at the root**,
/// which is why `MPI_Gather` blows up for PARATEC at 256 processes.
pub fn collective_cost(
    kind: CollectiveKind,
    nranks: usize,
    bytes: u64,
    net: &TransferModel,
) -> f64 {
    assert!(nranks > 0);
    if nranks == 1 {
        // self-collectives degenerate to a local copy
        return match kind {
            CollectiveKind::Barrier => 0.0,
            _ => net.latency,
        };
    }
    let p = nranks as f64;
    let log_p = p.log2().ceil();
    let n = bytes as f64;
    let beta = 1.0 / net.bandwidth;
    match kind {
        CollectiveKind::Barrier => log_p * net.latency,
        CollectiveKind::Bcast => log_p * (net.latency + n * beta),
        // reduction: tree latency + per-hop transfer + a small compute term
        CollectiveKind::Reduce | CollectiveKind::Allreduce => {
            let gamma = 0.4e-9; // seconds per reduced byte (SIMD add)
            let allreduce_extra = if kind == CollectiveKind::Allreduce {
                1.0
            } else {
                0.0
            };
            (log_p + allreduce_extra) * net.latency + log_p * n * (beta + gamma)
        }
        // root receives (p-1) contributions serially: the linear-in-p term
        CollectiveKind::Gather | CollectiveKind::Scatter => (p - 1.0) * (net.latency + n * beta),
        CollectiveKind::Allgather => log_p * net.latency + (p - 1.0) * n * beta,
        CollectiveKind::Alltoall => (p - 1.0) * (net.latency + n * beta),
    }
}

/// Fermi-era GPU compute model used by the kernel cost helpers.
///
/// A Tesla C2050 peaks at ~515 GFlop/s double precision and ~144 GB/s
/// device-memory bandwidth; a kernel is priced by the roofline maximum of
/// its flop time and its memory time plus a fixed launch/drain overhead.
#[derive(Clone, Copy, Debug)]
pub struct GpuComputeModel {
    /// Peak double-precision flops per second.
    pub flops: f64,
    /// Device memory bandwidth in bytes per second.
    pub mem_bandwidth: f64,
    /// Fixed per-kernel overhead (scheduling, drain) in seconds.
    pub kernel_overhead: f64,
}

impl GpuComputeModel {
    /// NVIDIA Tesla C2050 ("Fermi"), the Dirac GPU.
    pub fn tesla_c2050() -> Self {
        Self {
            flops: 515e9,
            mem_bandwidth: 144e9,
            kernel_overhead: 4e-6,
        }
    }

    /// Roofline duration of a kernel doing `flops` floating-point operations
    /// over `bytes` of device traffic at the given `efficiency` (0..=1] of
    /// peak.
    pub fn kernel_time(&self, flops: f64, bytes: f64, efficiency: f64) -> f64 {
        assert!(efficiency > 0.0 && efficiency <= 1.0);
        let compute = flops / (self.flops * efficiency);
        let memory = bytes / (self.mem_bandwidth * efficiency);
        self.kernel_overhead + compute.max(memory)
    }
}

/// Host (Nehalem-era Xeon) compute model for CPU-side numerical work,
/// used to price the MKL-style host BLAS baseline in the PARATEC study.
#[derive(Clone, Copy, Debug)]
pub struct CpuComputeModel {
    /// Sustained flops per second for a single MPI rank (one core running
    /// threaded-but-shared MKL gets roughly one core's worth in the paper's
    /// one-rank-per-core configuration).
    pub flops: f64,
}

impl CpuComputeModel {
    /// One core of an Intel Xeon 5530 (2.4 GHz Nehalem, 4 DP flops/cycle).
    pub fn xeon_5530_core() -> Self {
        Self { flops: 9.6e9 }
    }

    /// Duration of `flops` floating-point operations at `efficiency` of peak.
    pub fn compute_time(&self, flops: f64, efficiency: f64) -> f64 {
        assert!(efficiency > 0.0 && efficiency <= 1.0);
        flops / (self.flops * efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_affine() {
        let m = TransferModel::new(1e-5, 1e9);
        assert!((m.time(0) - 1e-5).abs() < 1e-15);
        let t1 = m.time(1_000_000);
        assert!((t1 - (1e-5 + 1e-3)).abs() < 1e-12);
        // doubling bytes more than doubles nothing, strictly increases
        assert!(m.time(2_000_000) > t1);
    }

    #[test]
    fn pinned_beats_pageable() {
        let n = 64 << 20;
        assert!(TransferModel::pcie_pinned().time(n) < TransferModel::pcie_h2d_pageable().time(n));
    }

    #[test]
    fn gather_is_linear_bcast_is_logarithmic() {
        let net = TransferModel::qdr_infiniband();
        let g64 = collective_cost(CollectiveKind::Gather, 64, 8192, &net);
        let g256 = collective_cost(CollectiveKind::Gather, 256, 8192, &net);
        let b64 = collective_cost(CollectiveKind::Bcast, 64, 8192, &net);
        let b256 = collective_cost(CollectiveKind::Bcast, 256, 8192, &net);
        // gather scales ~4x for 4x ranks; bcast only by log ratio (8/6)
        assert!(g256 / g64 > 3.5, "gather ratio {}", g256 / g64);
        assert!(b256 / b64 < 1.5, "bcast ratio {}", b256 / b64);
    }

    #[test]
    fn allreduce_costs_more_than_reduce() {
        let net = TransferModel::qdr_infiniband();
        let r = collective_cost(CollectiveKind::Reduce, 128, 4096, &net);
        let ar = collective_cost(CollectiveKind::Allreduce, 128, 4096, &net);
        assert!(ar > r);
    }

    #[test]
    fn single_rank_collectives_are_cheap() {
        let net = TransferModel::qdr_infiniband();
        for kind in [
            CollectiveKind::Barrier,
            CollectiveKind::Bcast,
            CollectiveKind::Allreduce,
            CollectiveKind::Gather,
            CollectiveKind::Alltoall,
        ] {
            assert!(collective_cost(kind, 1, 1 << 20, &net) <= net.latency);
        }
    }

    #[test]
    fn roofline_picks_binding_resource() {
        let gpu = GpuComputeModel::tesla_c2050();
        // compute bound: many flops, no memory
        let t_c = gpu.kernel_time(515e9, 0.0, 1.0);
        assert!((t_c - (1.0 + 4e-6)).abs() < 1e-5);
        // memory bound: no flops, lots of bytes
        let t_m = gpu.kernel_time(0.0, 144e9, 1.0);
        assert!((t_m - (1.0 + 4e-6)).abs() < 1e-5);
        // overhead floors tiny kernels
        assert!(gpu.kernel_time(1.0, 1.0, 1.0) >= gpu.kernel_overhead);
    }

    #[test]
    fn gpu_beats_cpu_on_big_gemm() {
        // sanity for the PARATEC experiment: a large zgemm is much faster on
        // the device model than on one Nehalem core
        let n = 2048f64;
        let flops = 8.0 * n * n * n; // complex gemm
        let gpu = GpuComputeModel::tesla_c2050().kernel_time(flops, 3.0 * 16.0 * n * n, 0.6);
        let cpu = CpuComputeModel::xeon_5530_core().compute_time(flops, 0.85);
        assert!(cpu / gpu > 5.0, "cpu {cpu} gpu {gpu}");
    }
}
