//! Fig. 11 — the Amber (PMEMD) profile.
//!
//! 16 nodes of Dirac, JAC/DHFR (23,558 atoms), 10,000 steps. The paper's
//! banner shows: GPU utilization 35.96% of wallclock, host-side
//! `cudaThreadSynchronize` 22.50%, `@CUDA_HOST_IDLE` only 0.08%,
//! `cudaMemcpyToSymbol` 2.35%, %comm 0.60, 39 GPU kernels with
//! `CalculatePMEOrthogonalNonbondForces` at ~37% of GPU time, and
//! `ReduceForces`/`ClearForces` imbalanced by up to 55%.

use ipm_apps::{run_amber, run_cluster, AmberConfig, ClusterConfig};
use ipm_core::{Banner, ClusterReport, Export};

/// Outcome of the Fig. 11 experiment.
pub struct Fig11Result {
    pub report: ClusterReport,
}

/// Run the Amber-like workload monitored on `nranks` ranks.
pub fn run_fig11(nranks: usize, cfg: AmberConfig) -> Fig11Result {
    run_fig11_inner(nranks, cfg, false)
}

/// Like [`run_fig11`] but with zero context-initialization cost — for
/// short runs where the 1.29 s startup would skew the steady-state
/// fractions that the full 10,000-step configuration amortizes away.
pub fn run_fig11_steady(nranks: usize, cfg: AmberConfig) -> Fig11Result {
    run_fig11_inner(nranks, cfg, true)
}

fn run_fig11_inner(nranks: usize, cfg: AmberConfig, steady: bool) -> Fig11Result {
    let mut cluster = ClusterConfig::dirac(nranks, nranks)
        .with_command("pmemd.cuda.MPI -O -i mdin -c inpcrd.equil");
    if steady {
        cluster.gpu = cluster.gpu.with_context_init(0.0);
    }
    let run = run_cluster(&cluster, |ctx| run_amber(ctx, cfg).expect("md"));
    Fig11Result {
        report: ClusterReport::from_profiles(run.profiles, nranks),
    }
}

impl Fig11Result {
    /// The cluster banner (the Fig. 11 format).
    pub fn banner(&self) -> String {
        Export::from_profiles(self.report.profiles().to_vec())
            .nodes(self.report.nodes)
            .max_rows(20)
            .to(Banner)
            .expect("profiles present")
    }

    /// Key derived metrics, as `(label, paper value, measured value)`.
    pub fn headline_metrics(&self) -> Vec<(&'static str, f64, f64)> {
        let r = &self.report;
        let shares = r.kernel_shares();
        let share = |k: &str| {
            shares
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, s)| *s)
                .unwrap_or(0.0)
        };
        let imb = r.kernel_imbalance();
        let imbalance = |k: &str| {
            imb.iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        vec![
            (
                "GPU utilization (%wall)",
                35.96,
                r.gpu_utilization() * 100.0,
            ),
            (
                "cudaThreadSynchronize (%wall)",
                22.50,
                100.0 * r.time_of("cudaThreadSynchronize") / r.wallclock_total,
            ),
            (
                "@CUDA_HOST_IDLE (%wall)",
                0.08,
                r.host_idle_fraction() * 100.0,
            ),
            ("%comm", 0.60, r.comm_fraction() * 100.0),
            (
                "Nonbond kernel share (%GPU)",
                37.0,
                share("CalculatePMEOrthogonalNonbondForces") * 100.0,
            ),
            (
                "ReduceForces share (%GPU)",
                18.0,
                share("ReduceForces") * 100.0,
            ),
            ("PMEShake share (%GPU)", 10.0, share("PMEShake") * 100.0),
            (
                "ClearForces share (%GPU)",
                8.0,
                share("ClearForces") * 100.0,
            ),
            ("PMEUpdate share (%GPU)", 7.0, share("PMEUpdate") * 100.0),
            (
                "ReduceForces imbalance (%)",
                55.0,
                imbalance("ReduceForces") * 100.0,
            ),
        ]
    }
}

/// Render the paper-vs-measured comparison.
pub fn render_comparison(result: &Fig11Result) -> String {
    let mut out = String::from("metric                              paper     measured\n");
    for (label, paper, measured) in result.headline_metrics() {
        out.push_str(&format!("{label:<34} {paper:>7.2} {measured:>11.2}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig11Result {
        let mut cfg = AmberConfig::jac_dhfr();
        cfg.steps = 600;
        // steady-state: the full 10k-step run amortizes startup; a 600-step
        // test must drop it to see the same fractions
        run_fig11_steady(4, cfg)
    }

    #[test]
    fn headline_metrics_are_near_the_paper() {
        let r = quick();
        for (label, paper, measured) in r.headline_metrics() {
            let tolerance = match label {
                // percent-of-wall metrics: within a few points
                l if l.contains("%wall") || l == "%comm" => 6.0,
                // kernel shares and imbalance: within a few points
                _ => 6.0,
            };
            assert!(
                (measured - paper).abs() < tolerance,
                "{label}: paper {paper} vs measured {measured}"
            );
        }
    }

    #[test]
    fn banner_has_the_fig11_structure() {
        let r = quick();
        let banner = r.banner();
        assert!(banner.contains("pmemd.cuda.MPI"));
        assert!(banner.contains("mpi_tasks : 4 on 4 nodes"));
        assert!(banner.contains("CUDA"));
        assert!(banner.contains("cudaThreadSynchronize"));
        assert!(banner.contains("@CUDA_EXEC_STRM00"));
    }

    #[test]
    fn cufft_appears_in_subsystem_rows() {
        let r = quick();
        let rows = r.report.subsystem_rows();
        assert!(rows.iter().any(|(l, _)| *l == "CUFFT"));
        // min over ranks is 0 (only rank 0 runs FFTs), max positive
        let cufft = r.report.family_spread(ipm_core::EventFamily::Cufft);
        assert_eq!(cufft.min, 0.0);
        assert!(cufft.max > 0.0);
    }
}
