//! # ipm-bench
//!
//! The benchmark harness of the reproduction: one module per table/figure
//! of the paper's evaluation, each exposing the experiment as a library
//! function (so it is unit-tested) plus a `repro-*` binary that prints the
//! regenerated table or figure. Criterion microbenches of IPM internals
//! (hash table, wrapper overhead, KTT policies, XML) live under
//! `benches/`.
//!
//! | Paper | Module | Binary |
//! |---|---|---|
//! | Figs. 4–7 | [`square_fig`] | `repro-square`, `repro-timeline` |
//! | Table I | [`table1`] | `repro-table1` |
//! | Fig. 8 | [`fig8`] | `repro-fig8` |
//! | Fig. 9 | [`fig9`] | `repro-fig9` |
//! | Fig. 10 | [`fig10`] | `repro-fig10` |
//! | Fig. 11 | [`fig11`] | `repro-fig11` |
//! | §III-C microbenchmark | re-exported from `ipm-core` | `repro-blocking` |
//! | streaming trace (Perfetto export) | [`trace_fig`] | `repro-trace` |

pub mod fig10;
pub mod fig11;
pub mod fig8;
pub mod fig9;
pub mod square_fig;
pub mod table1;
pub mod trace_fig;
