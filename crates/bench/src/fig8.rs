//! Fig. 8 — application-level runtime dilatation (ensemble study).
//!
//! "To account for variations in runtime caused by varying system load,
//! noise and jitter, we performed an ensemble study, repeatedly running
//! the same application with the same inputs, both with and without IPM
//! monitoring enabled." The paper runs HPL 120+120 times on 16 nodes: the
//! mean grows from 126.40 s to 126.67 s (+0.21%), well below the natural
//! run-to-run variation.

use ipm_apps::{run_cluster, run_hpl, ClusterConfig, HplConfig};
use ipm_sim_core::stats::{mean, sample_std_dev};
use ipm_sim_core::{Histogram, NoiseModel};

/// Parameters of the ensemble study.
#[derive(Clone, Copy, Debug)]
pub struct Fig8Config {
    /// Runs per arm (paper: 120 + 120).
    pub runs: usize,
    /// Ranks / nodes (paper: 16 / 16).
    pub nranks: usize,
    /// HPL problem.
    pub hpl: HplConfig,
    /// Noise model (log-normal run-level jitter).
    pub noise: NoiseModel,
    /// Base RNG seed; each run derives its own.
    pub seed: u64,
}

impl Fig8Config {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self {
            runs: 120,
            nranks: 16,
            hpl: HplConfig::dirac16(),
            noise: NoiseModel::DIRAC,
            seed: 0xF188,
        }
    }

    /// A reduced configuration for tests (same structure, fewer/smaller
    /// runs).
    pub fn quick() -> Self {
        Self {
            runs: 12,
            nranks: 4,
            hpl: HplConfig::tiny(),
            ..Self::paper()
        }
    }
}

/// The study's outcome.
#[derive(Clone, Debug)]
pub struct Fig8Result {
    pub with_ipm: Vec<f64>,
    pub without_ipm: Vec<f64>,
}

impl Fig8Result {
    /// Mean runtime with monitoring.
    pub fn mean_with(&self) -> f64 {
        mean(&self.with_ipm)
    }

    /// Mean runtime without monitoring.
    pub fn mean_without(&self) -> f64 {
        mean(&self.without_ipm)
    }

    /// Relative dilatation (the paper's 0.21%).
    pub fn dilatation(&self) -> f64 {
        (self.mean_with() - self.mean_without()) / self.mean_without()
    }

    /// Pooled run-to-run standard deviation (the "natural variability").
    pub fn noise_sigma(&self) -> f64 {
        0.5 * (sample_std_dev(&self.with_ipm) + sample_std_dev(&self.without_ipm))
    }

    /// Render the two histograms side by side (the Fig. 8 plot, in text).
    pub fn render_histograms(&self, bins: usize) -> String {
        let all: Vec<f64> = self
            .with_ipm
            .iter()
            .chain(&self.without_ipm)
            .copied()
            .collect();
        let lo = all.iter().copied().fold(f64::INFINITY, f64::min) * 0.999;
        let hi = all.iter().copied().fold(0.0f64, f64::max) * 1.001;
        let mut h_with = Histogram::new(lo, hi, bins);
        let mut h_without = Histogram::new(lo, hi, bins);
        for &v in &self.with_ipm {
            h_with.record(v);
        }
        for &v in &self.without_ipm {
            h_without.record(v);
        }
        format!(
            "without IPM (mean {:.2} s):\n{}\nwith IPM (mean {:.2} s):\n{}\n\
             dilatation: {:+.3}%   run-to-run sigma: {:.3} s\n",
            self.mean_without(),
            h_without.render_ascii(40),
            self.mean_with(),
            h_with.render_ascii(40),
            self.dilatation() * 100.0,
            self.noise_sigma(),
        )
    }
}

/// Run the ensemble.
pub fn run_fig8(cfg: &Fig8Config) -> Fig8Result {
    let one = |monitored: bool, run_idx: usize| -> f64 {
        let mut cluster = ClusterConfig::dirac(cfg.nranks, cfg.nranks)
            .with_command("xhpl.cuda")
            .with_noise(
                cfg.noise,
                cfg.seed ^ (run_idx as u64 * 2 + monitored as u64),
            );
        if !monitored {
            cluster = cluster.unmonitored();
        }
        let run = run_cluster(&cluster, |ctx| run_hpl(ctx, cfg.hpl).expect("hpl"));
        run.runtime()
    };
    Fig8Result {
        with_ipm: (0..cfg.runs).map(|i| one(true, i)).collect(),
        without_ipm: (0..cfg.runs).map(|i| one(false, i)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dilatation_is_small_and_below_noise() {
        let result = run_fig8(&Fig8Config::quick());
        let d = result.dilatation();
        // monitoring costs something but well under 1%
        assert!(d > -0.005, "negative dilatation {d}");
        assert!(d < 0.01, "dilatation {d} too large");
        // and it is smaller than the run-to-run spread (the paper's point)
        let sigma_rel = result.noise_sigma() / result.mean_without();
        assert!(
            d.abs() < sigma_rel * 3.0,
            "dilatation {d} vs rel sigma {sigma_rel}"
        );
    }

    #[test]
    fn histograms_render_both_arms() {
        let result = run_fig8(&Fig8Config::quick());
        let text = result.render_histograms(10);
        assert!(text.contains("without IPM"));
        assert!(text.contains("with IPM"));
        assert!(text.contains("dilatation"));
    }

    #[test]
    fn ensemble_runs_differ_due_to_noise() {
        let result = run_fig8(&Fig8Config::quick());
        let min = result
            .without_ipm
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = result.without_ipm.iter().copied().fold(0.0f64, f64::max);
        assert!(max > min, "noise produced identical runtimes");
    }
}
