//! Fig. 9 — the CUBE view of the CUDA-accelerated HPL run.
//!
//! The paper shows a CUBE screenshot of HPL on 16 Dirac nodes: four GPU
//! kernels (`dgemm_nn_e_kernel`, `dgemm_nt_tex_kernel`, `dtrsm_gpu_64_mm`,
//! `transpose`) with per-stream, per-node time distributions; computation
//! well balanced; `@CUDA_HOST_IDLE` almost zero (asynchronous transfers);
//! 2–5 s per task of manual `cudaEventSynchronize`.

use ipm_apps::{run_cluster, run_hpl, ClusterConfig, HplConfig};
use ipm_core::{build_cube, cube_to_xml, render_cube_text, ClusterReport, CubeMetric};

/// Outcome of the Fig. 9 experiment.
pub struct Fig9Result {
    pub report: ClusterReport,
    pub cube: CubeMetric,
}

/// Run HPL monitored on `nranks` ranks (paper: 16) and build the CUBE.
pub fn run_fig9(nranks: usize, hpl: HplConfig) -> Fig9Result {
    let cfg = ClusterConfig::dirac(nranks, nranks).with_command("xhpl.cuda");
    let run = run_cluster(&cfg, |ctx| run_hpl(ctx, hpl).expect("hpl"));
    let report = ClusterReport::from_profiles(run.profiles, nranks);
    let cube = build_cube(&report);
    Fig9Result { report, cube }
}

impl Fig9Result {
    /// The textual CUBE rendering (the Fig. 9 stand-in).
    pub fn render(&self) -> String {
        render_cube_text(&self.cube)
    }

    /// The CUBE XML document.
    pub fn cube_xml(&self) -> String {
        cube_to_xml(&self.cube, &self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig9Result {
        run_fig9(4, HplConfig::tiny())
    }

    #[test]
    fn cube_shows_the_four_kernels_per_stream() {
        let r = result();
        let text = r.render();
        for k in [
            "dgemm_nn_e_kernel",
            "dgemm_nt_tex_kernel",
            "dtrsm_gpu_64_mm",
            "transpose",
        ] {
            assert!(text.contains(k), "cube missing {k}");
        }
        assert!(text.contains("@CUDA_EXEC_STRM"), "no per-stream nodes");
        assert!(text.contains("MPI"), "MPI hierarchy missing");
    }

    #[test]
    fn host_idle_is_negligible_in_the_cube() {
        let r = result();
        let cuda = &r.cube.children[0];
        let idle = cuda
            .children
            .iter()
            .find(|c| c.name == "@CUDA_HOST_IDLE")
            .expect("idle node");
        assert!(
            idle.total() < 0.01 * r.report.wallclock_total,
            "host idle {} vs wallclock {}",
            idle.total(),
            r.report.wallclock_total
        );
    }

    #[test]
    fn xml_document_carries_per_rank_severities() {
        let r = result();
        let xml = r.cube_xml();
        assert!(xml.contains("<cube version=\"4.0\">"));
        assert!(xml.contains("dgemm_nn_e_kernel"));
        // 4 ranks → severity lists have 4 comma-separated values
        let line = xml
            .lines()
            .find(|l| l.contains("dgemm_nn_e_kernel"))
            .unwrap();
        let severity = line.split("severity=\"").nth(1).unwrap();
        assert_eq!(severity.split(',').count(), 4, "line: {line}");
    }

    #[test]
    fn event_sync_present_but_bounded() {
        let r = result();
        let per_rank = r.report.time_of("cudaEventSynchronize") / 4.0;
        let wall = r.report.wallclock_max;
        assert!(per_rank > 0.0);
        assert!(
            per_rank < 0.2 * wall,
            "event sync {per_rank} vs wall {wall}"
        );
    }
}
