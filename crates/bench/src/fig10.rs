//! Fig. 10 — the scaling of PARATEC.
//!
//! 32 Dirac nodes, 32/64/128/256 MPI processes, host MKL BLAS vs thunking
//! CUBLAS. The paper's findings, asserted by the tests:
//!
//! * CUBLAS accelerates the application by ~35% (1976 s → 1285 s at 32
//!   procs);
//! * within CUBLAS time, the blocking `cublasSetMatrix`/`GetMatrix`
//!   transfers dwarf the actual `zgemm` kernel time;
//! * scaling is good up to 128 processes, then MPI starts to dominate,
//!   with `MPI_Gather` growing sharply;
//! * CUBLAS time stays roughly constant with rank count (shared GPUs vs
//!   shrinking per-rank data).

use ipm_apps::{run_cluster, run_paratec, BlasBackend, ClusterConfig, ParatecConfig};
use ipm_core::{ClusterReport, EventFamily};

/// One bar of the Fig. 10 chart.
#[derive(Clone, Debug)]
pub struct Fig10Row {
    pub procs: usize,
    pub backend: BlasBackend,
    /// Job runtime (max wallclock over ranks).
    pub wallclock: f64,
    /// Per-rank averages of the breakdown components (seconds).
    pub mpi: f64,
    pub mpi_allreduce: f64,
    pub mpi_wait: f64,
    pub mpi_gather: f64,
    pub cublas: f64,
    pub cublas_set_matrix: f64,
    pub cublas_get_matrix: f64,
    pub zgemm_kernel: f64,
}

/// Run one configuration.
pub fn measure(procs: usize, nodes: usize, backend: BlasBackend, cfg: ParatecConfig) -> Fig10Row {
    let cluster = ClusterConfig::dirac(procs, nodes).with_command("paratec");
    let run = run_cluster(&cluster, |ctx| run_paratec(ctx, cfg).expect("scf"));
    let report = ClusterReport::from_profiles(run.profiles, nodes);
    let per_rank = |t: f64| t / procs as f64;
    Fig10Row {
        procs,
        backend,
        wallclock: report.wallclock_max,
        mpi: per_rank(report.family_spread(EventFamily::Mpi).total),
        mpi_allreduce: per_rank(report.time_of("MPI_Allreduce")),
        mpi_wait: per_rank(report.time_of("MPI_Wait")),
        mpi_gather: per_rank(report.time_of("MPI_Gather")),
        cublas: per_rank(report.family_spread(EventFamily::Cublas).total),
        cublas_set_matrix: per_rank(report.time_of("cublasSetMatrix")),
        cublas_get_matrix: per_rank(report.time_of("cublasGetMatrix")),
        zgemm_kernel: per_rank(
            report
                .kernel_rank_matrix()
                .into_iter()
                .filter(|(k, _)| k.starts_with("zgemm"))
                .map(|(_, t)| t.iter().sum::<f64>())
                .sum::<f64>()
                + 0.0, // normalize the empty-sum identity (-0.0)
        ),
    }
}

/// The full sweep: both backends at each scale, on 32 nodes.
pub fn run_fig10(scales: &[usize], cfg_of: impl Fn(BlasBackend) -> ParatecConfig) -> Vec<Fig10Row> {
    let mut rows = Vec::new();
    for &procs in scales {
        let nodes = procs.min(32);
        for backend in [BlasBackend::HostMkl, BlasBackend::CublasThunking] {
            rows.push(measure(procs, nodes, backend, cfg_of(backend)));
        }
    }
    rows
}

/// Render the chart data as a table.
pub fn render(rows: &[Fig10Row]) -> String {
    let mut out = String::from(
        "procs backend   wallclock     MPI  Allreduce   Wait  Gather  CUBLAS  SetMat  GetMat  zgemm\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5} {:<9} {:>9.1} {:>7.1} {:>10.2} {:>6.2} {:>7.2} {:>7.1} {:>7.1} {:>7.1} {:>6.2}\n",
            r.procs,
            match r.backend {
                BlasBackend::HostMkl => "MKL",
                BlasBackend::CublasThunking => "CUBLAS",
            },
            r.wallclock,
            r.mpi,
            r.mpi_allreduce,
            r.mpi_wait,
            r.mpi_gather,
            r.cublas,
            r.cublas_set_matrix,
            r.cublas_get_matrix,
            r.zgemm_kernel,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced sweep: the paper's shape at test-friendly sizes.
    fn quick_sweep() -> Vec<Fig10Row> {
        let cfg = |backend| ParatecConfig {
            nbands: 64,
            npw: 1 << 17,
            iterations: 4,
            gemms_per_iter: 6,
            ffts_per_iter: 2,
            gather_bytes: 64 * 1024,
            gathers_per_iter: 8,
            other_work_per_iter: 16.0,
            backend,
        };
        run_fig10(&[4, 8, 16], cfg)
    }

    #[test]
    fn cublas_beats_mkl_at_small_scale() {
        let rows = quick_sweep();
        let mkl = rows
            .iter()
            .find(|r| r.procs == 4 && r.backend == BlasBackend::HostMkl)
            .unwrap();
        let dev = rows
            .iter()
            .find(|r| r.procs == 4 && r.backend == BlasBackend::CublasThunking)
            .unwrap();
        assert!(
            dev.wallclock < mkl.wallclock,
            "CUBLAS {} not faster than MKL {}",
            dev.wallclock,
            mkl.wallclock
        );
    }

    #[test]
    fn transfers_dwarf_zgemm_compute() {
        let rows = quick_sweep();
        for r in rows
            .iter()
            .filter(|r| r.backend == BlasBackend::CublasThunking)
        {
            let transfers = r.cublas_set_matrix + r.cublas_get_matrix;
            assert!(
                transfers > r.zgemm_kernel,
                "procs {}: transfers {} vs zgemm {}",
                r.procs,
                transfers,
                r.zgemm_kernel
            );
        }
    }

    #[test]
    fn gather_per_rank_grows_with_scale() {
        let rows = quick_sweep();
        let gather = |procs: usize| {
            rows.iter()
                .find(|r| r.procs == procs && r.backend == BlasBackend::HostMkl)
                .unwrap()
                .mpi_gather
        };
        assert!(
            gather(16) > 2.0 * gather(4),
            "gather {} -> {}",
            gather(4),
            gather(16)
        );
    }

    #[test]
    fn application_scales_then_mpi_fraction_rises() {
        let rows = quick_sweep();
        let wall = |procs: usize| {
            rows.iter()
                .find(|r| r.procs == procs && r.backend == BlasBackend::HostMkl)
                .unwrap()
        };
        // runtime drops from 4 to 8 procs (strong scaling works)
        assert!(wall(8).wallclock < wall(4).wallclock);
        // but the MPI fraction grows monotonically with scale
        let frac = |r: &Fig10Row| r.mpi / r.wallclock;
        assert!(frac(wall(8)) > frac(wall(4)));
        assert!(frac(wall(16)) > frac(wall(8)));
    }

    #[test]
    fn rendered_table_has_all_rows() {
        let rows = quick_sweep();
        let text = render(&rows);
        assert_eq!(text.lines().count(), 1 + rows.len());
        assert!(text.contains("CUBLAS"));
        assert!(text.contains("MKL"));
    }
}
