//! The paper's §VI future work, demonstrated: GPU hardware counters as an
//! IPM component. Runs a mixed compute-/memory-bound kernel workload with
//! counters enabled and prints the roofline-style component report.

use ipm_core::GpuCounterReport;
use ipm_gpu_sim::{launch_kernel, GpuConfig, GpuRuntime, Kernel, KernelCost, LaunchConfig};

fn main() {
    let rt = GpuRuntime::single(
        GpuConfig::dirac_node()
            .with_context_init(0.0)
            .with_counters(),
    );
    let workloads = [
        ("dgemm_like", 50_000.0, 16.0, 0.6, 200u32),
        ("stencil_like", 60.0, 48.0, 0.55, 400u32),
        ("stream_triad", 2.0, 24.0, 0.75, 800u32),
        ("reduction", 8.0, 8.0, 0.4, 100u32),
    ];
    for (name, flops, bytes, eff, blocks) in workloads {
        let k = Kernel::timed(
            name,
            KernelCost::Roofline {
                flops_per_thread: flops,
                bytes_per_thread: bytes,
                efficiency: eff,
            },
        );
        for _ in 0..8 {
            launch_kernel(&rt, &k, LaunchConfig::simple(blocks, 256u32), &[]).unwrap();
        }
    }
    // a timing-only kernel, like one profiled without an arithmetic model
    let opaque = Kernel::timed("opaque_kernel", KernelCost::Fixed(1e-3));
    launch_kernel(&rt, &opaque, LaunchConfig::simple(64u32, 128u32), &[]).unwrap();
    rt.thread_synchronize().unwrap();

    println!("§VI future work — the GPU counter component (CUPTI/PAPI-CUDA analogue)\n");
    println!("{}", GpuCounterReport::collect(&rt).render());
    println!(
        "the paper could only wish for this interface in 2011 (\"no documented\n\
         interface to access the counters\"); the simulated device exposes it,\n\
         so IPM's component model extends to roofline attribution per kernel."
    );
}
