//! Regenerate the §III-C discovery microbenchmark: which CUDA operations
//! block implicitly on outstanding kernels? (All synchronous memory
//! operations — with the notable exception of `cudaMemset`.)

use ipm_core::{discover_blocking_set, render_probe_table};

fn main() {
    println!("§III-C — implicit-blocking discovery microbenchmark\n");
    println!("{}", render_probe_table(&discover_blocking_set()));
    println!(
        "each candidate runs after a 50 ms asynchronous kernel, once\n\
         directly and once after cudaStreamSynchronize; a call is classified\n\
         as implicitly blocking when the unsynced variant is >5x slower."
    );
}
