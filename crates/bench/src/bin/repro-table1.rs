//! Regenerate Table I: IPM vs CUDA-profiler kernel timing accuracy over
//! the eight SDK-style benchmarks. Pass `--corrected` to also apply the
//! paper's proposed event-overhead correction (their "future work",
//! implemented here as an ablation).

use ipm_bench::table1::{render, run_table1};

fn main() {
    let corrected = std::env::args().any(|a| a == "--corrected");
    println!("Table I — GPU kernel timing accuracy (IPM vs CUDA profiler)\n");
    println!("{}", render(&run_table1(None)));
    if corrected {
        println!("\nWith per-invocation event-overhead correction (8.5 µs):\n");
        println!("{}", render(&run_table1(Some(8.5e-6))));
    }
}
