//! Regenerate Fig. 8: the runtime-dilatation ensemble study — HPL on 16
//! nodes, 120 runs with and 120 without IPM, under cluster noise.
//!
//! `--quick` runs a reduced ensemble (12+12 runs of a small HPL).

use ipm_bench::fig8::{run_fig8, Fig8Config};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        Fig8Config::quick()
    } else {
        Fig8Config::paper()
    };
    println!(
        "Fig. 8 — HPL runtime histograms, {} ranks, {}+{} runs\n",
        cfg.nranks, cfg.runs, cfg.runs
    );
    let result = run_fig8(&cfg);
    println!("{}", result.render_histograms(16));
    println!(
        "paper: mean 126.40 s -> 126.67 s, dilatation +0.21%\n\
         here : mean {:.2} s -> {:.2} s, dilatation {:+.2}%",
        result.mean_without(),
        result.mean_with(),
        result.dilatation() * 100.0,
    );
}
