//! Regenerate Fig. 7: the monitoring timeline of the `square` run —
//! H2D transfer, asynchronous kernel, implicitly blocking D2H.

use ipm_apps::SquareConfig;
use ipm_bench::square_fig::{run_square_fig, SquareMode};

fn main() {
    let result = run_square_fig(SquareMode::HostIdle, SquareConfig::default());
    println!("Fig. 7 — the square run as a device timeline\n");
    println!("{}", result.timeline(100));
    println!(
        "host view: the blocking cudaMemcpy(D2H) posted right after the\n\
         asynchronous launch waits for the kernel; IPM books that wait as\n\
         @CUDA_HOST_IDLE = {:.3} s (kernel itself: {:.3} s).",
        result.profile.host_idle_time(),
        result.profile.time_of("@CUDA_EXEC_STRM00"),
    );
}
