//! Regenerate Figs. 4, 5, and 6: the IPM banner for the `square`
//! microbenchmark under the three monitoring configurations.

use ipm_apps::SquareConfig;
use ipm_bench::square_fig::{run_square_fig, SquareMode};

fn main() {
    let cfg = SquareConfig::default();
    for (fig, mode) in [
        ("Fig. 4 — host-side timing only", SquareMode::HostOnly),
        ("Fig. 5 — + GPU kernel timing", SquareMode::GpuTiming),
        ("Fig. 6 — + host idle identification", SquareMode::HostIdle),
    ] {
        println!("================ {fig} ================");
        let result = run_square_fig(mode, cfg);
        println!("{}", result.banner());
    }
}
