//! Regenerate Fig. 9: the CUBE view of the CUDA-accelerated HPL run on 16
//! nodes — per-stream, per-node kernel time distributions.
//!
//! `--quick` uses a smaller matrix and 4 ranks; `--xml` also dumps the
//! CUBE XML document.

use ipm_apps::HplConfig;
use ipm_bench::fig9::run_fig9;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let xml = std::env::args().any(|a| a == "--xml");
    let (nranks, cfg) = if quick {
        (4, HplConfig::tiny())
    } else {
        (16, HplConfig::dirac16())
    };
    println!("Fig. 9 — CUDA + MPI profile of HPL on {nranks} ranks (CUBE view)\n");
    let result = run_fig9(nranks, cfg);
    println!("{}", result.render());
    println!(
        "host idle: {:.3} s total ({:.2}% of wallclock) — asynchronous\n\
         transfers leave almost no implicit blocking, as the paper observes;\n\
         cudaEventSynchronize: {:.2} s per task (paper: 2-5 s).",
        result
            .report
            .family_spread(ipm_core::EventFamily::HostIdle)
            .total,
        result.report.host_idle_fraction() * 100.0,
        result.report.time_of("cudaEventSynchronize") / nranks as f64,
    );
    if xml {
        println!("\n{}", result.cube_xml());
    }
}
