//! Regenerate Fig. 10: the scaling of PARATEC — 32/64/128/256 MPI
//! processes on 32 nodes, host MKL BLAS vs thunking CUBLAS, with the
//! time breakdown into MPI (Allreduce/Wait/Gather) and CUBLAS
//! (SetMatrix/GetMatrix/zgemm).
//!
//! `--quick` runs a reduced sweep (4/8/16 ranks, small problem).

use ipm_apps::{BlasBackend, ParatecConfig};
use ipm_bench::fig10::{render, run_fig10};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let only32 = std::env::args().any(|a| a == "--only32");
    let rows = if only32 {
        // the paper's headline 32-process comparison at full medium scale
        run_fig10(&[32], ParatecConfig::nersc6_medium)
    } else if quick {
        let cfg = |backend| ParatecConfig {
            nbands: 64,
            npw: 1 << 17,
            iterations: 4,
            gemms_per_iter: 6,
            ffts_per_iter: 2,
            gather_bytes: 64 * 1024,
            gathers_per_iter: 8,
            other_work_per_iter: 16.0,
            backend,
        };
        run_fig10(&[4, 8, 16], cfg)
    } else {
        run_fig10(&[32, 64, 128, 256], ParatecConfig::nersc6_medium)
    };
    println!("Fig. 10 — the scaling of PARATEC (per-rank seconds; wallclock is job max)\n");
    println!("{}", render(&rows));
    if !quick {
        let mkl32 = rows
            .iter()
            .find(|r| r.procs == 32 && r.backend == BlasBackend::HostMkl);
        let dev32 = rows
            .iter()
            .find(|r| r.procs == 32 && r.backend == BlasBackend::CublasThunking);
        if let (Some(m), Some(d)) = (mkl32, dev32) {
            println!(
                "paper @32 procs: 1976 s (MKL) -> 1285 s (CUBLAS), ~35% faster\n\
                 here  @32 procs: {:.0} s (MKL) -> {:.0} s (CUBLAS), {:.0}% faster",
                m.wallclock,
                d.wallclock,
                100.0 * (m.wallclock - d.wallclock) / m.wallclock,
            );
        }
    }
}
