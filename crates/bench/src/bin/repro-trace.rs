//! Emit a trace of a monitored two-rank run.
//!
//! Runs the demo workload of [`ipm_bench::trace_fig`] and prints the
//! Chrome trace-event JSON to stdout (or writes it to the file given as
//! the first argument). Load the output in `chrome://tracing` or
//! <https://ui.perfetto.dev>. With `--otlp` the same run is exported as
//! OTLP-shaped `resourceSpans` JSON instead — the document any
//! OTLP-ingesting backend accepts on `/v1/traces`.
//!
//! ```text
//! cargo run --release -p ipm-bench --bin repro-trace -- trace.json
//! cargo run --release -p ipm-bench --bin repro-trace -- --otlp spans.json
//! ```

use ipm_bench::trace_fig::build_demo_trace;

fn write_or_print(json: &str, out: Option<String>, hint: &str) -> std::process::ExitCode {
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("repro-trace: cannot write {path}: {e}");
                return std::process::ExitCode::FAILURE;
            }
            eprintln!("repro-trace: wrote {path} — {hint}");
        }
        None => print!("{json}"),
    }
    std::process::ExitCode::SUCCESS
}

#[cfg(feature = "otlp")]
fn run_otlp(out: Option<String>) -> std::process::ExitCode {
    use ipm_core::{validate_otlp, Otlp};
    let (export, captured, dropped) = ipm_bench::trace_fig::demo_export(2);
    let json = export.to(Otlp).expect("demo has ranks");
    let stats = validate_otlp(&json).expect("exporter produced invalid OTLP");
    eprintln!(
        "repro-trace: {} spans over {} ranks, {} links, {} summary spans; \
         ring captured {captured} / dropped {dropped}",
        stats.spans, stats.resources, stats.links, stats.summary_spans,
    );
    write_or_print(&json, out, "POST it to an OTLP/HTTP collector's /v1/traces")
}

#[cfg(not(feature = "otlp"))]
fn run_otlp(_out: Option<String>) -> std::process::ExitCode {
    eprintln!("repro-trace: built without the `otlp` feature");
    std::process::ExitCode::FAILURE
}

fn main() -> std::process::ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let otlp = args.iter().any(|a| a == "--otlp");
    args.retain(|a| a != "--otlp");
    let out = args.into_iter().next();

    if otlp {
        return run_otlp(out);
    }

    let demo = build_demo_trace(2);
    eprintln!(
        "repro-trace: {} slices over {} lanes ({} ranks), {} flow arrows; \
         ring captured {} / dropped {}",
        demo.stats.slices,
        demo.stats.lanes,
        demo.stats.processes,
        demo.stats.flow_pairs,
        demo.captured,
        demo.dropped,
    );
    write_or_print(
        &demo.json,
        out,
        "open it in chrome://tracing or ui.perfetto.dev",
    )
}
