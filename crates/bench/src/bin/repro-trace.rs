//! Emit a Chrome/Perfetto trace of a monitored two-rank run.
//!
//! Runs the demo workload of [`ipm_bench::trace_fig`] and prints the
//! Chrome trace-event JSON to stdout (or writes it to the file given as
//! the first argument). Load the output in `chrome://tracing` or
//! <https://ui.perfetto.dev>.
//!
//! ```text
//! cargo run --release -p ipm-bench --bin repro-trace -- trace.json
//! ```

use ipm_bench::trace_fig::build_demo_trace;

fn main() -> std::process::ExitCode {
    let out = std::env::args().nth(1);
    let demo = build_demo_trace(2);
    eprintln!(
        "repro-trace: {} slices over {} lanes ({} ranks), {} flow arrows; \
         ring captured {} / dropped {}",
        demo.stats.slices,
        demo.stats.lanes,
        demo.stats.processes,
        demo.stats.flow_pairs,
        demo.captured,
        demo.dropped,
    );
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &demo.json) {
                eprintln!("repro-trace: cannot write {path}: {e}");
                return std::process::ExitCode::FAILURE;
            }
            eprintln!("repro-trace: wrote {path} — open it in chrome://tracing or ui.perfetto.dev");
        }
        None => print!("{}", demo.json),
    }
    std::process::ExitCode::SUCCESS
}
