//! Regenerate Fig. 11: the Amber/PMEMD profile — 16 ranks, JAC/DHFR,
//! 10,000 timesteps — as the IPM cluster banner plus a paper-vs-measured
//! comparison of the headline metrics.
//!
//! `--quick` runs 600 steps on 4 ranks.

use ipm_apps::AmberConfig;
use ipm_bench::fig11::{render_comparison, run_fig11};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (nranks, cfg) = if quick {
        let mut c = AmberConfig::jac_dhfr();
        c.steps = 600;
        (4, c)
    } else {
        (16, AmberConfig::jac_dhfr())
    };
    println!(
        "Fig. 11 — profile of Amber (PMEMD) on {nranks} ranks, {} steps\n",
        cfg.steps
    );
    let result = run_fig11(nranks, cfg);
    println!("{}", result.banner());
    println!("{}", render_comparison(&result));
    let shares = result.report.kernel_shares();
    println!("GPU kernel inventory: {} kernels; top 5:", shares.len());
    for (k, s) in shares.iter().take(5) {
        println!("  {:<42} {:>5.1}% of GPU time", k, s * 100.0);
    }
}
