//! The streaming-trace demo behind `repro-trace`: run the Fig. 3 `square`
//! program (plus a two-stream kernel burst) under full monitoring on a
//! profiler-enabled GPU, then merge the host-side IPM trace ring with the
//! runtime's ground-truth [`ProfRecord`]s into Chrome trace-event JSON.
//! The output loads in `chrome://tracing` or <https://ui.perfetto.dev>:
//! one process per rank, a host lane plus one lane per CUDA stream, and
//! flow arrows linking each `cudaLaunch` to the kernel execution it
//! enqueued.
//!
//! [`ProfRecord`]: ipm_gpu_sim::ProfRecord

use ipm_apps::{run_square, SquareConfig};
use ipm_core::{
    validate_chrome_trace, ChromeTrace, Export, Ipm, IpmConfig, IpmCuda, TraceRank, TraceStats,
};
use ipm_gpu_sim::{
    launch_kernel, CudaApi, GpuConfig, GpuRuntime, Kernel, KernelArg, KernelCost, LaunchConfig,
};
use std::sync::Arc;

/// Everything the demo produced: the JSON document plus the numbers the
/// binary reports (structural stats and ring accounting).
pub struct TraceDemo {
    /// Chrome trace-event JSON, already validated.
    pub json: String,
    /// Structural stats from [`validate_chrome_trace`].
    pub stats: TraceStats,
    /// Trace-ring records captured, summed over ranks.
    pub captured: u64,
    /// Trace-ring records dropped, summed over ranks.
    pub dropped: u64,
}

/// Run the monitored demo workload on `nranks` simulated ranks and return
/// the ready-to-render [`Export`] plus the ring accounting (records
/// captured / dropped, summed over ranks). The caller picks the backend —
/// [`ChromeTrace`] for `repro-trace`, `Otlp` for `repro-trace --otlp`.
pub fn demo_export(nranks: usize) -> (Export, u64, u64) {
    let mut export = Export::new();
    let (mut captured, mut dropped) = (0u64, 0u64);
    for r in 0..nranks {
        let rt = Arc::new(GpuRuntime::single(GpuConfig::dirac_node().with_profiler()));
        let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
        let host = format!("dirac{r:02}");
        ipm.set_metadata(r, nranks, &host, "./square.ipm");
        let cuda = IpmCuda::new(ipm.clone(), rt.clone());

        run_square(&cuda, SquareConfig::tiny()).expect("square failed");

        // a two-stream burst so the trace shows concurrent device lanes
        let d = cuda.cuda_malloc(4096).expect("malloc");
        let streams = [
            cuda.cuda_stream_create().expect("stream"),
            cuda.cuda_stream_create().expect("stream"),
        ];
        let k = Kernel::timed("saxpy_burst", KernelCost::Fixed(0.002));
        for i in 0..3 {
            for &s in &streams {
                let mut lc = LaunchConfig::simple(8u32, 32u32);
                lc.stream = s;
                launch_kernel(&cuda, &k, lc, &[KernelArg::Ptr(d), KernelArg::U64(i)])
                    .expect("launch");
            }
        }
        cuda.cuda_thread_synchronize().expect("sync");
        cuda.finalize();

        let m = ipm.monitor_info();
        captured += m.trace_captured;
        dropped += m.trace_dropped;
        export = export.with_trace_rank(TraceRank {
            rank: r,
            host,
            epoch: ipm.epoch(),
            records: ipm.drain_trace(),
            prof: rt.profiler_records(),
        });
    }
    (export, captured, dropped)
}

/// Run the monitored demo workload on `nranks` simulated ranks and export
/// the merged trace. Panics if the exporter ever produces structurally
/// invalid JSON — that is a bug, not an input condition.
pub fn build_demo_trace(nranks: usize) -> TraceDemo {
    let (export, captured, dropped) = demo_export(nranks);
    let json = export.to(ChromeTrace).expect("demo has ranks");
    let stats = validate_chrome_trace(&json).expect("exporter produced invalid chrome trace");
    TraceDemo {
        json,
        stats,
        captured,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_trace_is_structurally_valid_chrome_json() {
        let demo = build_demo_trace(2);
        assert_eq!(demo.stats.processes, 2, "one process per rank");
        // per rank: host lane + default stream + two burst streams
        assert!(demo.stats.lanes >= 6, "lanes {}", demo.stats.lanes);
        assert!(demo.stats.slices > 20, "slices {}", demo.stats.slices);
        // every burst/square launch links host → device
        assert!(
            demo.stats.flow_pairs >= 7 * 2,
            "flows {}",
            demo.stats.flow_pairs
        );
        assert_eq!(demo.dropped, 0, "demo workload must not overflow the ring");
        assert!(demo.captured > 0);
    }
}
