//! Table I — GPU kernel timing accuracy.
//!
//! "We selected a number of small benchmarks from the CUDA SDK and
//! compared the timing results obtained from IPM with the data delivered
//! by the CUDA profiler." Both measurements come from **one run**: the
//! simulated device logs ground truth (`CUDA_PROFILE`) while IPM times the
//! same kernels through event bracketing. The paper's headline findings,
//! which the tests at the bottom assert:
//!
//! * IPM ≥ profiler, always (events bracket the kernel, they don't measure
//!   it);
//! * the relative difference is larger for shorter kernels (a small
//!   constant per-invocation overhead);
//! * everything agrees to within ~2%.

use ipm_apps::sdk::{table1_suite, SdkBenchmark};
use ipm_core::{EventFamily, Ipm, IpmConfig, IpmCuda};
use ipm_gpu_sim::{GpuConfig, GpuRuntime};
use std::sync::Arc;

/// One row of the accuracy table.
#[derive(Clone, Debug)]
pub struct Table1Row {
    pub benchmark: &'static str,
    pub invocations: usize,
    /// CUDA-profiler total (ground truth).
    pub profiler_s: f64,
    /// IPM's event-bracketed total.
    pub ipm_s: f64,
}

impl Table1Row {
    /// Relative difference in percent, as the paper reports it.
    pub fn difference_pct(&self) -> f64 {
        100.0 * (self.ipm_s - self.profiler_s) / self.profiler_s
    }
}

/// Run one benchmark under simultaneous profiler + IPM observation.
pub fn measure(bench: &SdkBenchmark, correction: Option<f64>) -> Table1Row {
    let rt = Arc::new(GpuRuntime::single(
        GpuConfig::dirac_node()
            .with_context_init(0.0)
            .with_profiler(),
    ));
    let ipm = Ipm::new(
        rt.clock().clone(),
        IpmConfig {
            exec_time_correction: correction,
            ..IpmConfig::default()
        },
    );
    let cuda = IpmCuda::new(ipm.clone(), rt.clone());
    bench.run(&cuda).expect("benchmark run");
    cuda.finalize();
    let profile = ipm.profile();
    Table1Row {
        benchmark: bench.name,
        invocations: bench.invocations,
        profiler_s: rt.with_profiler(|p| p.kernel_time_total(bench.kernel)),
        ipm_s: profile.family_time(EventFamily::GpuExec),
    }
}

/// Regenerate the full Table I.
pub fn run_table1(correction: Option<f64>) -> Vec<Table1Row> {
    table1_suite()
        .iter()
        .map(|b| measure(b, correction))
        .collect()
}

/// Render the table in the paper's layout.
pub fn render(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "                        Kernel        GPU Kernel Execution Time (sec)\n\
         Benchmark               Invocations   CUDA Profiler      IPM   Difference (%)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<24}{:>11} {:>15.6} {:>8.6} {:>10.2}\n",
            r.benchmark,
            r.invocations,
            r.profiler_s,
            r.ipm_s,
            r.difference_pct(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipm_always_over_reports() {
        for row in run_table1(None) {
            assert!(
                row.ipm_s >= row.profiler_s,
                "{}: IPM {} < profiler {}",
                row.benchmark,
                row.ipm_s,
                row.profiler_s
            );
        }
    }

    #[test]
    fn differences_are_small() {
        for row in run_table1(None) {
            let d = row.difference_pct();
            assert!(d < 2.5, "{}: difference {d}%", row.benchmark);
        }
    }

    #[test]
    fn shorter_kernels_have_larger_relative_error() {
        let rows = run_table1(None);
        // compare the shortest-kernel benchmark (MonteCarlo, ~1 ms per
        // invocation) with the longest (concurrentKernels, ~68 ms)
        let mc = rows.iter().find(|r| r.benchmark == "MonteCarlo").unwrap();
        let ck = rows
            .iter()
            .find(|r| r.benchmark == "concurrentKernels")
            .unwrap();
        assert!(
            mc.difference_pct() > ck.difference_pct(),
            "short-kernel error {} <= long-kernel error {}",
            mc.difference_pct(),
            ck.difference_pct()
        );
    }

    #[test]
    fn profiler_totals_match_the_paper() {
        // ground truth is calibrated directly from Table I
        for row in run_table1(None) {
            let paper = table1_suite()
                .into_iter()
                .find(|b| b.name == row.benchmark)
                .unwrap()
                .paper_total();
            let rel = (row.profiler_s - paper).abs() / paper;
            assert!(
                rel < 1e-9,
                "{}: {} vs paper {}",
                row.benchmark,
                row.profiler_s,
                paper
            );
        }
    }

    #[test]
    fn correction_reduces_the_bias() {
        // the paper's "future work": correcting for the event overhead
        let raw = run_table1(None);
        let corrected = run_table1(Some(8.5e-6));
        let mean_err = |rows: &[Table1Row]| {
            rows.iter().map(|r| r.difference_pct().abs()).sum::<f64>() / rows.len() as f64
        };
        assert!(
            mean_err(&corrected) < mean_err(&raw),
            "correction did not help: {} vs {}",
            mean_err(&corrected),
            mean_err(&raw)
        );
    }

    #[test]
    fn rendered_table_lists_all_benchmarks() {
        let rows = run_table1(None);
        let text = render(&rows);
        for b in table1_suite() {
            assert!(text.contains(b.name));
        }
        assert!(text.contains("Difference"));
    }
}
