//! Figs. 4–7 — the `square` microbenchmark under the three monitoring
//! configurations, plus the monitoring timeline.
//!
//! Fig. 4: host-side timing only (the big `cudaMalloc` is context init,
//! the D2H transfer absorbs the kernel wait). Fig. 5: + GPU kernel timing
//! (`@CUDA_EXEC_STRM00 ≈ 1.15 s`). Fig. 6: + host-idle identification
//! (the wait moves from `cudaMemcpy(D2H)` into `@CUDA_HOST_IDLE`).
//! Fig. 7: the run rendered as a timeline.

use ipm_apps::{run_square, SquareConfig};
use ipm_core::{render_timeline, Banner, Export, Ipm, IpmConfig, IpmCuda, RankProfile};
use ipm_gpu_sim::{GpuConfig, GpuRuntime};
use std::sync::Arc;

/// Which figure's monitoring configuration to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SquareMode {
    /// Fig. 4: host timing only.
    HostOnly,
    /// Fig. 5: + GPU kernel timing.
    GpuTiming,
    /// Fig. 6: + host idle identification.
    HostIdle,
}

impl SquareMode {
    fn ipm_config(self) -> IpmConfig {
        match self {
            SquareMode::HostOnly => IpmConfig::host_timing_only(),
            SquareMode::GpuTiming => IpmConfig::with_gpu_timing_only(),
            SquareMode::HostIdle => IpmConfig::default(),
        }
    }
}

/// Result: the profile plus the device trace (for the timeline).
pub struct SquareResult {
    pub profile: RankProfile,
    pub trace: Vec<ipm_gpu_sim::ProfRecord>,
}

/// Run Fig. 3's program under the given monitoring mode.
pub fn run_square_fig(mode: SquareMode, cfg: SquareConfig) -> SquareResult {
    let rt = Arc::new(GpuRuntime::single(GpuConfig::dirac_node().with_profiler()));
    let ipm = Ipm::new(rt.clock().clone(), mode.ipm_config());
    ipm.set_metadata(0, 1, "dirac15", "./cuda.ipm");
    let cuda = IpmCuda::new(ipm.clone(), rt.clone());
    run_square(&cuda, cfg).expect("square");
    cuda.finalize();
    SquareResult {
        profile: ipm.profile(),
        trace: rt.profiler_records(),
    }
}

impl SquareResult {
    /// The banner (Figs. 4/5/6 depending on the mode used).
    pub fn banner(&self) -> String {
        Export::from_profile(self.profile.clone())
            .max_rows(10)
            .to(Banner)
            .expect("profile present")
    }

    /// The timeline rendering (Fig. 7).
    pub fn timeline(&self, width: usize) -> String {
        render_timeline(&self.trace, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_to_fig6_progression() {
        let cfg = SquareConfig::default();
        let fig4 = run_square_fig(SquareMode::HostOnly, cfg);
        let fig5 = run_square_fig(SquareMode::GpuTiming, cfg);
        let fig6 = run_square_fig(SquareMode::HostIdle, cfg);

        // Fig. 4: no pseudo entries; D2H carries the wait
        assert_eq!(fig4.profile.time_of("@CUDA_EXEC_STRM00"), 0.0);
        assert!(fig4.profile.time_of("cudaMemcpy(D2H)") > 1.0);

        // Fig. 5: exec entry appears, D2H unchanged
        let exec5 = fig5.profile.time_of("@CUDA_EXEC_STRM00");
        assert!(exec5 > 1.0, "exec {exec5}");
        assert!(fig5.profile.time_of("cudaMemcpy(D2H)") > 1.0);

        // Fig. 6: wait moves into @CUDA_HOST_IDLE, and the two GPU-side
        // numbers agree (the paper shows 1.15 vs 1.15)
        let idle = fig6.profile.host_idle_time();
        let exec6 = fig6.profile.time_of("@CUDA_EXEC_STRM00");
        assert!(idle > 1.0, "idle {idle}");
        assert!(fig6.profile.time_of("cudaMemcpy(D2H)") < 0.05);
        assert!(
            (exec6 - idle).abs() / exec6 < 0.02,
            "exec {exec6} vs idle {idle}"
        );
    }

    #[test]
    fn banners_have_the_expected_leading_rows() {
        let fig6 = run_square_fig(SquareMode::HostIdle, SquareConfig::default());
        let banner = fig6.banner();
        let lines: Vec<&str> = banner.lines().collect();
        // find the first table row (right after the [time] column header):
        // cudaMalloc leads, as in the paper's Figs. 4-6
        let header_idx = lines
            .iter()
            .position(|l| l.contains("[time]"))
            .expect("column header");
        let first_row = lines[header_idx + 1];
        assert!(first_row.contains("cudaMalloc"), "first row: {first_row}");
        assert!(banner.contains("@CUDA_EXEC_STRM00"));
        assert!(banner.contains("@CUDA_HOST_IDLE"));
    }

    #[test]
    fn timeline_shows_kernel_between_transfers() {
        let r = run_square_fig(SquareMode::HostIdle, SquareConfig::default());
        let text = r.timeline(72);
        assert!(text.contains("STRM00"));
        assert!(text.contains("square"));
        let pos = |s: &str| text.find(s).unwrap();
        assert!(pos("memcpyHtoD") < pos("square"));
        assert!(pos("square") < pos("memcpyDtoH"));
    }
}
