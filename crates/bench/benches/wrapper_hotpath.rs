//! The record-path hotpath benchmark behind the interning refactor's
//! acceptance bar: recorded calls per second, multi-threaded, interned
//! `CallId` path vs. the legacy string-keyed path, plus the steady-state
//! heap-allocation count per recorded call.
//!
//! Both paths run the *identical* `wrap_call` anatomy and differ only in
//! the sink behind it:
//!
//! * **interned** — [`Ipm`] as [`MonitorSink`]: `SigKey` built from the
//!   interned [`CallHandle`], deposited into the calling thread's delta
//!   cell (no shared lock, no allocation in steady state);
//! * **legacy** — [`LegacyMirror`] behind the same self-overhead
//!   accounting the old monitor did: name resolved *per call*, a fresh
//!   `Arc<str>` allocated for the signature, one string-hashed map behind
//!   one global mutex.
//!
//! The report is written to `BENCH_wrapper.json` at the workspace root.
//! With `IPM_BENCH_SMOKE=1` the run additionally gates against the
//! *committed* report: if interned throughput regresses by more than
//! `IPM_BENCH_TOLERANCE` (default 0.2, i.e. 20%) the process exits
//! non-zero — the CI bench-smoke step. Smoke runs never rewrite the
//! committed baseline.

use ipm_core::{Ipm, IpmConfig, LegacyMirror};
use ipm_interpose::{wrap_call, CallHandle, MonitorSink};
use ipm_sim_core::SimClock;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Counting allocator: every heap allocation in the process bumps a counter,
// so "0 allocations per steady-state recorded call" is measured, not argued.
// ---------------------------------------------------------------------------

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------------
// The legacy sink: the pre-interning monitor's record path, including its
// self-overhead accounting, so the measured difference is purely the
// representation (per-call string/Arc + global mutex vs. SigKey + TLS cell).
// ---------------------------------------------------------------------------

struct LegacySink {
    mirror: Arc<LegacyMirror>,
    self_ns: AtomicU64,
}

impl LegacySink {
    fn new() -> Self {
        Self {
            mirror: LegacyMirror::new(),
            self_ns: AtomicU64::new(0),
        }
    }
}

impl MonitorSink for LegacySink {
    fn update(&self, call: CallHandle, bytes: u64, duration: f64) {
        let t = Instant::now();
        self.mirror.update(call, bytes, 0, duration);
        self.self_ns
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Workload: a rotating mix of monitored calls, some byte-attributed, the
// shape a facade feeds the sink during a solver loop.
// ---------------------------------------------------------------------------

fn call_mix() -> [CallHandle; 4] {
    [
        CallHandle::of("cudaLaunch"),
        CallHandle::of("cudaMemcpy(H2D)"),
        CallHandle::of("MPI_Send"),
        CallHandle::of("cudaStreamQuery"),
    ]
}

/// Hammer `sink` from `threads` threads, `per_thread` recorded calls each;
/// returns recorded calls per second.
fn throughput(threads: usize, per_thread: u64, clock: &SimClock, sink: &dyn MonitorSink) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mix = call_mix();
                for i in 0..per_thread {
                    let call = mix[(i & 3) as usize];
                    let bytes = if i & 1 == 0 { 0 } else { 4096 };
                    wrap_call(clock, sink, call, bytes, 0.0, || black_box(i));
                }
            });
        }
    });
    (threads as u64 * per_thread) as f64 / t0.elapsed().as_secs_f64()
}

/// Heap allocations per steady-state recorded call: warm the path (cell
/// registration, map growth, signature insertion), then count allocations
/// over a long single-threaded run of already-seen signatures.
fn steady_state_allocs_per_call(clock: &SimClock, sink: &dyn MonitorSink) -> f64 {
    const CALLS: u64 = 100_000;
    let mix = call_mix();
    for i in 0..256u64 {
        let call = mix[(i & 3) as usize];
        let bytes = if i & 1 == 0 { 0 } else { 4096 };
        wrap_call(clock, sink, call, bytes, 0.0, || black_box(i));
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    for i in 0..CALLS {
        let call = mix[(i & 3) as usize];
        let bytes = if i & 1 == 0 { 0 } else { 4096 };
        wrap_call(clock, sink, call, bytes, 0.0, || black_box(i));
    }
    (ALLOCS.load(Ordering::SeqCst) - before) as f64 / CALLS as f64
}

fn read_committed_throughput(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"interned_calls_per_sec\":";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start();
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn main() {
    const PER_THREAD: u64 = 500_000;
    const ROUNDS: usize = 3;
    // recorder threads model concurrent monitored streams (ranks/threads
    // on a node); contention on the legacy global mutex is part of what
    // the refactor removes, so the count is fixed, not core-derived
    let threads: usize = std::env::var("IPM_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    // fresh sinks per path; tracing off (the paper's aggregate-only mode —
    // the record path under test, not the event ring)
    let clock = SimClock::new();
    let ipm = Ipm::new(clock.clone(), IpmConfig::default().without_tracing());
    let legacy = LegacySink::new();

    let mut interned = 0.0f64;
    let mut string_keyed = 0.0f64;
    for _ in 0..ROUNDS {
        string_keyed = string_keyed.max(throughput(threads, PER_THREAD, &clock, &legacy));
        interned = interned.max(throughput(threads, PER_THREAD, &clock, &*ipm));
    }
    let speedup = interned / string_keyed;

    let allocs_interned = steady_state_allocs_per_call(&clock, &*ipm);
    let allocs_legacy = steady_state_allocs_per_call(&clock, &legacy);

    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"calls_per_thread\": {PER_THREAD},\n  \"legacy_calls_per_sec\": {string_keyed:.0},\n  \"interned_calls_per_sec\": {interned:.0},\n  \"speedup\": {speedup:.2},\n  \"steady_state_allocs_per_call\": {{\"legacy\": {allocs_legacy:.2}, \"interned\": {allocs_interned:.2}}}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wrapper.json");
    let smoke = std::env::var("IPM_BENCH_SMOKE").is_ok_and(|v| v == "1");
    println!(
        "wrapper hotpath (best of {ROUNDS} rounds, {threads} threads){}\n{json}",
        if smoke {
            " [smoke]"
        } else {
            " -> BENCH_wrapper.json"
        }
    );

    if smoke {
        // gate against the committed report instead of rewriting it
        let tolerance: f64 = std::env::var("IPM_BENCH_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.2);
        if let Some(committed) = read_committed_throughput(path) {
            let floor = committed * (1.0 - tolerance);
            assert!(
                interned >= floor,
                "interned record path regressed: {interned:.0} calls/s vs committed \
                 {committed:.0} (floor {floor:.0} at tolerance {tolerance})"
            );
        } else {
            eprintln!("no committed BENCH_wrapper.json to gate against; skipping");
        }
    } else {
        std::fs::write(path, &json).expect("write BENCH_wrapper.json");
    }

    // the refactor's acceptance bar
    assert!(
        speedup >= 2.0,
        "interned path must be >=2x the string-keyed path multi-threaded: \
         {interned:.0} vs {string_keyed:.0} calls/s ({speedup:.2}x)"
    );
    assert!(
        allocs_interned == 0.0,
        "steady-state recorded call must not allocate: {allocs_interned} allocs/call"
    );
}
