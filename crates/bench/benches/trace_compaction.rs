//! Microbenchmark: what does the compaction/retention engine cost, and
//! what does it buy?
//!
//! Two criterion series time the push hot path with the compactor off and
//! on (a bursty same-signature stream, the shape the merge pass targets).
//! The custom report then runs a 200k-event synthetic workload through
//! both configurations and measures the numbers the ISSUE's acceptance
//! bar names:
//!
//! * peak resident records, compacted vs. not (retention under a
//!   4k-per-stripe high-water mark);
//! * drain latency, compacted vs. not;
//! * the k-way merged drain against the old sort-everything drain on the
//!   same runs — the merge must not be slower than the global sort it
//!   replaced.
//!
//! The report is also written to `BENCH_trace.json` at the workspace root
//! so CI and later sessions can diff it.

use criterion::{criterion_group, Criterion};
use ipm_core::{merge_runs, CompactPolicy, TraceKind, TraceRecord, TraceRing};
use std::hint::black_box;

/// Quantum keeping all virtual timestamps dyadic (exact sums).
const Q: f64 = 1.0 / (1 << 20) as f64;

fn rec(name: &'static str, begin: f64, end: f64) -> TraceRecord {
    TraceRecord {
        kind: TraceKind::Call,
        name: name.into(),
        detail: None,
        begin,
        end,
        bytes: 0,
        region: 0,
        stream: None,
        corr: 0,
        agg: None,
    }
}

/// The synthetic workload: bursts of identical short calls (64 per burst,
/// three rotating signatures) — compressible, like a polling loop or a
/// solver's per-step call pattern.
fn feed(ring: &TraceRing, events: u64) {
    let names = ["cudaLaunch", "cudaMemcpy(D2H)", "MPI_Send"];
    let mut t = 0.0f64;
    for i in 0..events {
        let name = names[((i / 64) % 3) as usize];
        let dur = ((i % 13) + 1) as f64 * Q;
        ring.push(rec(name, t, t + dur));
        t += dur + Q;
    }
}

fn bench_push_paths(c: &mut Criterion) {
    let plain = TraceRing::new(1 << 20, 8);
    let mut t = 0.0f64;
    c.bench_function("trace_push_uncompacted", |b| {
        b.iter(|| {
            t += 2.0 * Q;
            black_box(plain.push(rec("cudaLaunch", t, t + Q)))
        })
    });

    let compacting = TraceRing::with_policy(1 << 20, 8, CompactPolicy::with_high_water(4096));
    let mut t = 0.0f64;
    c.bench_function("trace_push_compacting", |b| {
        b.iter(|| {
            t += 2.0 * Q;
            black_box(compacting.push(rec("cudaLaunch", t, t + Q)))
        })
    });
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn compaction_report() {
    const EVENTS: u64 = 200_000;
    const ROUNDS: usize = 10;

    // retention + drain latency, compacted vs. not (fresh ring per round:
    // drain empties it)
    let fill_and_drain = |policy: Option<CompactPolicy>| {
        let ring = match policy {
            Some(p) => TraceRing::with_policy(1 << 20, 8, p),
            None => TraceRing::new(1 << 20, 8),
        };
        feed(&ring, EVENTS);
        let peak = ring.high_water_mark();
        let resident = ring.len();
        let t = std::time::Instant::now();
        let drained = ring.drain();
        let drain_ms = ms(t.elapsed());
        let effective: u64 = drained.iter().map(|r| r.event_count()).sum();
        assert_eq!(effective, EVENTS - ring.dropped(), "conservation");
        (peak, resident, drain_ms, ring.compacted_away())
    };
    let mut plain = (0, 0, f64::INFINITY, 0);
    let mut compacted = (0, 0, f64::INFINITY, 0);
    for _ in 0..ROUNDS {
        let p = fill_and_drain(None);
        plain = (p.0, p.1, plain.2.min(p.2), p.3);
        let c = fill_and_drain(Some(CompactPolicy::with_high_water(4096)));
        compacted = (c.0, c.1, compacted.2.min(c.2), c.3);
    }

    // merged drain vs. the old global sort, on identical uncompacted runs
    // (the per-round clone happens outside the timed region for both)
    let ring = TraceRing::new(1 << 20, 8);
    feed(&ring, EVENTS);
    let runs = ring.snapshot_runs();
    let (mut merge_ms, mut sort_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        let rs = runs.clone();
        let t = std::time::Instant::now();
        black_box(merge_runs(rs));
        merge_ms = merge_ms.min(ms(t.elapsed()));

        let rs = runs.clone();
        let t = std::time::Instant::now();
        // the pre-merge drain: concatenate the stripes, sort the lot
        let mut all: Vec<TraceRecord> = rs.into_iter().flatten().collect();
        all.sort_by(|a, b| {
            a.begin
                .partial_cmp(&b.begin)
                .unwrap()
                .then(a.end.partial_cmp(&b.end).unwrap())
        });
        black_box(all);
        sort_ms = sort_ms.min(ms(t.elapsed()));
    }

    let json = format!(
        "{{\n  \"events\": {EVENTS},\n  \"uncompacted\": {{\"resident_peak\": {}, \"resident_final\": {}, \"drain_ms\": {:.3}}},\n  \"compacted\": {{\"resident_peak\": {}, \"resident_final\": {}, \"drain_ms\": {:.3}, \"compacted_away\": {}}},\n  \"merged_drain_ms\": {:.3},\n  \"global_sort_ms\": {:.3}\n}}\n",
        plain.0, plain.1, plain.2, compacted.0, compacted.1, compacted.2, compacted.3, merge_ms, sort_ms,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(path, &json).expect("write BENCH_trace.json");
    println!("trace compaction report (fastest of {ROUNDS} rounds) -> BENCH_trace.json\n{json}");
    assert!(
        compacted.0 < plain.0,
        "compaction must lower peak residency: {} vs {}",
        compacted.0,
        plain.0
    );
    assert!(
        merge_ms <= sort_ms * 1.10,
        "merged drain slower than the global sort it replaced: {merge_ms:.3} ms vs {sort_ms:.3} ms"
    );
}

criterion_group!(benches, bench_push_paths);

fn main() {
    benches();
    compaction_report();
}
