//! Microbenchmark: the performance data hash table.
//!
//! IPM's design premise is that `UPDATE_DATA` must be cheap enough to run
//! on every intercepted call. This bench measures the *real* (wall-clock)
//! cost of table updates — hot-entry updates, distinct-signature inserts —
//! and the ablation the DESIGN calls out: update throughput under thread
//! contention as a function of the lock-striping degree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipm_core::{EventSignature, PerfTable};
use std::hint::black_box;
use std::sync::Arc;
use std::thread;

fn bench_single_thread(c: &mut Criterion) {
    let table = PerfTable::new();
    let sig = EventSignature::call("cudaLaunch", 0);
    c.bench_function("table_update_hot_entry", |b| {
        b.iter(|| table.update(black_box(&sig), black_box(1.5e-6)))
    });

    let sigs: Vec<EventSignature> = (0..256)
        .map(|i| EventSignature::call("cudaMemcpy(D2H)", i * 64))
        .collect();
    let mut idx = 0usize;
    c.bench_function("table_update_rotating_256_sigs", |b| {
        b.iter(|| {
            table.update(black_box(&sigs[idx & 255]), 1.0e-6);
            idx += 1;
        })
    });
}

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_contended_8_threads");
    group.sample_size(20);
    for shards in [1usize, 4, 16, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let table = Arc::new(PerfTable::with_shape(32 * 1024, shards));
                    thread::scope(|s| {
                        for t in 0..8 {
                            let table = table.clone();
                            s.spawn(move || {
                                let sig = EventSignature::call("MPI_Send", t);
                                for _ in 0..5_000 {
                                    table.update(&sig, 1e-6);
                                }
                            });
                        }
                    });
                    black_box(table.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_single_thread, bench_contended);
criterion_main!(benches);
