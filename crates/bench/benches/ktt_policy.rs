//! Ablation: lazy vs eager kernel-completion checking.
//!
//! The paper chooses to sweep the kernel timing table only in D2H transfer
//! wrappers, noting that checking "on each subsequent CUDA runtime call
//! ... could cause high overheads". This bench quantifies that choice: a
//! launch-heavy workload (many kernels, sporadic transfers) monitored
//! under `KttCheckPolicy::D2hOnly` vs `KttCheckPolicy::EveryCall`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipm_core::{Ipm, IpmConfig, IpmCuda, KttCheckPolicy};
use ipm_gpu_sim::{
    launch_kernel, CudaApi, GpuConfig, GpuRuntime, Kernel, KernelCost, LaunchConfig,
};
use std::hint::black_box;
use std::sync::Arc;

fn workload(cuda: &IpmCuda) {
    let kernel = Kernel::timed("k", KernelCost::Fixed(5e-6));
    let dev = cuda.cuda_malloc(4096).unwrap();
    let mut out = vec![0u8; 4096];
    for burst in 0..20 {
        for _ in 0..16 {
            launch_kernel(cuda, &kernel, LaunchConfig::simple(32u32, 128u32), &[]).unwrap();
        }
        // interleave cheap calls — under EveryCall each one sweeps the KTT
        for _ in 0..16 {
            cuda.cuda_stream_query(ipm_gpu_sim::StreamId::DEFAULT).ok();
        }
        if burst % 4 == 3 {
            cuda.cuda_memcpy_d2h(&mut out, dev).unwrap();
        }
    }
    cuda.cuda_thread_synchronize().unwrap();
    cuda.cuda_free(dev).unwrap();
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ktt_policy");
    for (label, policy) in [
        ("d2h_only", KttCheckPolicy::D2hOnly),
        ("every_call", KttCheckPolicy::EveryCall),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &policy| {
            b.iter(|| {
                let rt = Arc::new(GpuRuntime::single(
                    GpuConfig::dirac_node().with_context_init(0.0),
                ));
                let ipm = Ipm::new(
                    rt.clock().clone(),
                    IpmConfig {
                        ktt_policy: policy,
                        ..IpmConfig::default()
                    },
                );
                let cuda = IpmCuda::new(ipm.clone(), rt);
                workload(&cuda);
                cuda.finalize();
                black_box(ipm.profile().entries.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
