//! Microbenchmark: what does streaming trace capture add per wrapped call?
//!
//! The acceptance bar for the trace subsystem is < 10% wall-clock overhead
//! on the wrapper path versus the same monitored facade with tracing
//! disabled. Four series over the same cheap call (`cudaStreamQuery`):
//!
//! * `untraced_stream_query` — `IpmConfig::default().without_tracing()`:
//!   perf-table update only, the baseline.
//! * `traced_with_inline_drain` — capture plus the consumer's
//!   `drain_trace` (take + sort) amortized on the application thread every
//!   8192 calls: the worst-case deployment, where the exporter has no core
//!   of its own.
//! * `traced_ring_full` — capture with no consumer at all: after the ring
//!   fills every push takes the drop path (the overload behavior).
//!
//! The single-window means above are noisy on a shared machine, so the
//! bench ends with a paired measurement — interleaved 20k-call batches,
//! minimum batch time per configuration — and prints the relative capture
//! overhead, which is the number the < 10% acceptance bar refers to.

use criterion::{criterion_group, Criterion};
use ipm_core::{Ipm, IpmConfig, IpmCuda};
use ipm_gpu_sim::{CudaApi, GpuConfig, GpuRuntime, StreamId};
use std::hint::black_box;
use std::sync::Arc;

fn monitored(cfg: IpmConfig) -> (Arc<Ipm>, IpmCuda) {
    let rt = Arc::new(GpuRuntime::single(
        GpuConfig::dirac_node().with_context_init(0.0),
    ));
    let ipm = Ipm::new(rt.clock().clone(), cfg);
    let cuda = IpmCuda::new(ipm.clone(), rt);
    cuda.cuda_get_device_count().unwrap(); // init outside the timing loop
    (ipm, cuda)
}

fn bench_trace_overhead(c: &mut Criterion) {
    let (_ipm, cuda) = monitored(IpmConfig::default().without_tracing());
    c.bench_function("untraced_stream_query", |b| {
        b.iter(|| black_box(cuda.cuda_stream_query(StreamId::DEFAULT)))
    });

    let (ipm, cuda) = monitored(IpmConfig::default());
    let mut calls = 0u32;
    c.bench_function("traced_with_inline_drain", |b| {
        b.iter(|| {
            calls += 1;
            if calls == 8192 {
                calls = 0;
                black_box(ipm.drain_trace());
            }
            black_box(cuda.cuda_stream_query(StreamId::DEFAULT))
        })
    });

    let (_ipm, cuda) = monitored(IpmConfig::default());
    c.bench_function("traced_ring_full", |b| {
        b.iter(|| black_box(cuda.cuda_stream_query(StreamId::DEFAULT)))
    });
}

/// Minimum time for one batch of wrapped calls.
fn batch(cuda: &IpmCuda, n: u32) -> f64 {
    let t = std::time::Instant::now();
    for _ in 0..n {
        black_box(cuda.cuda_stream_query(StreamId::DEFAULT)).unwrap();
    }
    t.elapsed().as_secs_f64() / n as f64
}

/// Noise-robust paired comparison: alternate traced / untraced batches and
/// keep each configuration's fastest batch, cancelling machine-wide drift.
fn paired_overhead_report() {
    const N: u32 = 20_000;
    const ROUNDS: usize = 60;
    let (ipm_t, cuda_t) = monitored(IpmConfig::default());
    let (_ipm_u, cuda_u) = monitored(IpmConfig::default().without_tracing());
    let (mut min_t, mut min_u) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        min_u = min_u.min(batch(&cuda_u, N));
        min_t = min_t.min(batch(&cuda_t, N));
        ipm_t.drain_trace(); // keep the ring in capture mode
    }
    println!(
        "trace capture overhead (paired, min of {ROUNDS}x{N}-call batches): \
         untraced {:.1} ns/call, traced {:.1} ns/call => {:+.1}% (bar: < 10%)",
        min_u * 1e9,
        min_t * 1e9,
        (min_t - min_u) / min_u * 100.0,
    );
}

criterion_group!(benches, bench_trace_overhead);

fn main() {
    benches();
    paired_overhead_report();
}
