//! Microbenchmark: the MPI substrate's collective rendezvous.
//!
//! Every simulated collective is a real cross-thread rendezvous; its
//! wall-clock cost bounds how fast large-rank experiments (Fig. 10's
//! 256-process sweep) can run. Measures barrier and allreduce rounds at
//! several world sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipm_mpi_sim::{ReduceOp, World};
use std::hint::black_box;

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collective_rounds");
    group.sample_size(10);
    for ranks in [2usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::new("barrier_x100", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    World::run(ranks, |rank| {
                        for _ in 0..100 {
                            rank.barrier().unwrap();
                        }
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("allreduce_x100", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    let outs = World::run(ranks, |rank| {
                        let mut acc = 0.0;
                        for _ in 0..100 {
                            acc = rank.allreduce_f64(&[1.0], ReduceOp::Sum).unwrap()[0];
                        }
                        acc
                    });
                    black_box(outs)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
