//! Microbenchmark: per-call monitoring overhead.
//!
//! The paper reports application perturbation of ~0.2% for fully monitored
//! HPL; that hinges on each wrapper costing well under a microsecond on
//! top of the wrapped call. This bench measures the real wall-clock cost
//! of the monitored vs bare CUDA facade on a cheap call
//! (`cudaStreamQuery`), and the raw `wrap_call` plumbing.

use criterion::{criterion_group, criterion_main, Criterion};
use ipm_core::{Ipm, IpmConfig, IpmCuda};
use ipm_gpu_sim::{CudaApi, GpuConfig, GpuRuntime, StreamId};
use ipm_interpose::{site, wrap_call, NullSink};
use ipm_sim_core::SimClock;
use std::hint::black_box;
use std::sync::Arc;

fn bench_facades(c: &mut Criterion) {
    let bare = GpuRuntime::single(GpuConfig::dirac_node().with_context_init(0.0));
    bare.get_device_count().unwrap(); // init outside the timing loop
    c.bench_function("bare_stream_query", |b| {
        b.iter(|| black_box(bare.cuda_stream_query(StreamId::DEFAULT)))
    });

    let rt = Arc::new(GpuRuntime::single(
        GpuConfig::dirac_node().with_context_init(0.0),
    ));
    let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
    let monitored = IpmCuda::new(ipm, rt);
    monitored.cuda_get_device_count().unwrap();
    c.bench_function("monitored_stream_query", |b| {
        b.iter(|| black_box(monitored.cuda_stream_query(StreamId::DEFAULT)))
    });
}

fn bench_wrap_call(c: &mut Criterion) {
    let clock = SimClock::new();
    let sink = NullSink;
    c.bench_function("wrap_call_null_sink", |b| {
        b.iter(|| wrap_call(&clock, &sink, site!("cudaLaunch"), 0, 0.0, || black_box(42)))
    });
}

criterion_group!(benches, bench_facades, bench_wrap_call);
criterion_main!(benches);
