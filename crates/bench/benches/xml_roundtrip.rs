//! Microbenchmark: XML profile log writer and parser.
//!
//! IPM writes one XML log per rank at job exit and `ipm_parse` reads them
//! all back; at tens of thousands of ranks the serialization cost matters.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ipm_core::{from_xml, to_xml, ProfileEntry, RankProfile};
use ipm_sim_core::RunningStats;
use std::hint::black_box;

fn big_profile(entries: usize) -> RankProfile {
    let mut stats = RunningStats::new();
    stats.record(1.25e-3);
    stats.record(3.75e-3);
    RankProfile {
        rank: 11,
        nranks: 4096,
        host: "dirac11".to_owned(),
        command: "pmemd.cuda.MPI -O -i mdin".to_owned(),
        wallclock: 45.78,
        regions: vec!["<program>".to_owned(), "pme".to_owned()],
        entries: (0..entries)
            .map(|i| ProfileEntry {
                name: format!("cudaMemcpy(D2H)#{}", i % 40),
                detail: if i % 5 == 0 {
                    Some(format!("kernel_{i}"))
                } else {
                    None
                },
                bytes: (i as u64) * 640,
                region: (i % 2) as u16,
                stats,
            })
            .collect(),
        dropped_events: 0,
        monitor: Default::default(),
    }
}

fn bench_xml(c: &mut Criterion) {
    let profile = big_profile(2_000);
    let xml = to_xml(&profile);
    let mut group = c.benchmark_group("xml");
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("write_2k_entries", |b| {
        b.iter(|| black_box(to_xml(&profile)))
    });
    group.bench_function("parse_2k_entries", |b| {
        b.iter(|| black_box(from_xml(&xml).expect("roundtrip")))
    });
    group.finish();
}

criterion_group!(benches, bench_xml);
criterion_main!(benches);
