//! `ipm-speccheck` — CLI for the spec-conformance checker.
//!
//! ```text
//! cargo run -p ipm-speccheck -- --workspace [--format json] [--update-baseline]
//! ```
//!
//! Exit codes: 0 clean (modulo baseline), 1 new findings, 2 usage error.

use ipm_speccheck::{baseline, load_sources, render_json, render_text, run, spec_from_registry};
use std::process::ExitCode;

struct Args {
    workspace: bool,
    json: bool,
    update_baseline: bool,
    root: Option<std::path::PathBuf>,
    baseline_path: Option<std::path::PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ipm-speccheck --workspace [--format text|json] [--update-baseline]\n\
         \x20                    [--root <dir>] [--baseline <file>]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        workspace: false,
        json: false,
        update_baseline: false,
        root: None,
        baseline_path: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--update-baseline" => args.update_baseline = true,
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                _ => return Err(usage()),
            },
            "--root" => match it.next() {
                Some(p) => args.root = Some(p.into()),
                None => return Err(usage()),
            },
            "--baseline" => match it.next() {
                Some(p) => args.baseline_path = Some(p.into()),
                None => return Err(usage()),
            },
            _ => return Err(usage()),
        }
    }
    if !args.workspace {
        return Err(usage());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let root = args
        .root
        .clone()
        .unwrap_or_else(ipm_speccheck::workspace_root);
    let files = match load_sources(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "ipm-speccheck: cannot read scan set under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let diags = run(&spec_from_registry(), &files);

    let baseline_path = args
        .baseline_path
        .clone()
        .unwrap_or_else(|| root.join(baseline::BASELINE_FILE));
    let old_text = std::fs::read_to_string(&baseline_path).unwrap_or_default();

    if args.update_baseline {
        let text = baseline::regenerate(&diags, &old_text);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!(
                "ipm-speccheck: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "ipm-speccheck: wrote {} entries to {}",
            diags.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let p = baseline::partition(diags, &baseline::parse(&old_text));
    if args.json {
        println!("{}", render_json(&p.new));
    } else {
        print!("{}", render_text(&p.new));
        if !p.suppressed.is_empty() {
            eprintln!(
                "ipm-speccheck: {} baselined finding(s) suppressed (see {})",
                p.suppressed.len(),
                baseline_path.display()
            );
        }
        for stale in &p.stale {
            eprintln!("ipm-speccheck: stale baseline entry `{stale}` no longer matches anything");
        }
    }
    if p.new.is_empty() {
        if !args.json {
            eprintln!(
                "ipm-speccheck: workspace conforms to the call specification ({} files scanned)",
                ipm_speccheck::SCANNED_FILES.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        if !args.json {
            eprintln!("ipm-speccheck: {} new finding(s)", p.new.len());
        }
        ExitCode::FAILURE
    }
}
