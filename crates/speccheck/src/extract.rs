//! Source-surface extraction — a deliberately small, hand-rolled scanner.
//!
//! The workspace has no `syn` available, and none is needed: everything the
//! checker reconciles is expressed in two rigid idioms that are themselves
//! part of the repo's conventions (and are checked *because* they are
//! conventions):
//!
//! - **Facade surface**: a method models a real entry point iff the *first*
//!   line of its doc comment leads with the backticked name, e.g.
//!   ``/// `cudaMalloc` — ...``. Continuation lines mentioning other names
//!   in prose do not count.
//! - **Wrapper sites**: monitors report through the `wrapped*` helpers with
//!   an interned call-site literal: `self.wrapped(site!("cudaMalloc"), size,
//!   ...)`. The pre-interning idiom (`self.wrapped("cudaMalloc", size, ...)`)
//!   is still recognized so doctored-source tests keep working.
//!
//! Everything after the first `#[cfg(test)]` in a file is ignored.

/// One scanned file: repo-relative path + contents.
#[derive(Clone, Debug)]
pub struct SourceFile {
    pub rel: String,
    pub text: String,
}

impl SourceFile {
    pub fn new(rel: impl Into<String>, text: impl Into<String>) -> Self {
        Self {
            rel: rel.into(),
            text: text.into(),
        }
    }

    /// Lines up to (not including) the test module.
    fn scanned_lines(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for line in self.text.lines() {
            if line.trim_start().starts_with("#[cfg(test)]") {
                break;
            }
            out.push(line);
        }
        out
    }
}

/// True for names the spec families could own (`cuda*`, `cu*`, `cublas*`,
/// `cufft*`, `MPI_*`, and the stdio quartet of the I/O family). Anything
/// else in a doc position is prose.
pub fn is_entry_point_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && (name.starts_with("cuda")
            || name.starts_with("cublas")
            || name.starts_with("cufft")
            || name.starts_with("MPI_")
            || matches!(name, "fopen" | "fread" | "fwrite" | "fclose")
            || (name.starts_with("cu") && name.chars().nth(2).is_some_and(|c| c.is_uppercase())))
}

/// An entry point a facade claims to model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FacadeName {
    pub name: String,
    pub file: String,
    pub line: usize,
}

/// Extract doc-modeled entry points: first line of a `///` block starting
/// with a backticked entry-point name.
pub fn facade_names(file: &SourceFile) -> Vec<FacadeName> {
    let lines = file.scanned_lines();
    let mut out = Vec::new();
    let mut prev_was_doc = false;
    for (i, line) in lines.iter().enumerate() {
        let t = line.trim_start();
        let is_doc = t.starts_with("///");
        if is_doc && !prev_was_doc {
            if let Some(rest) = t.strip_prefix("/// `") {
                if let Some(end) = rest.find('`') {
                    let name = &rest[..end];
                    if is_entry_point_name(name) {
                        out.push(FacadeName {
                            name: name.to_owned(),
                            file: file.rel.clone(),
                            line: i + 1,
                        });
                    }
                }
            }
        }
        prev_was_doc = is_doc;
    }
    out
}

/// The bytes argument a wrapper passes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BytesArg {
    /// A literal `0`.
    Zero,
    /// Any other expression (assumed to carry a real size).
    Expr(String),
    /// A `wrapped_sized` site: bytes derived from the call's result.
    ResultSized,
}

/// One wrapper call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WrapSite {
    /// Normalized entry-point name (`cudaMemcpy(H2D)` → `cudaMemcpy`).
    pub name: String,
    /// The literal as written.
    pub raw_name: String,
    pub file: String,
    pub line: usize,
    pub fn_name: String,
    pub bytes: BytesArg,
}

/// The helpers whose first string-literal argument is a registry name.
const WRAP_HELPERS: &[(&str, bool)] = &[
    ("wrapped_no_sweep(", false),
    ("wrapped_sized(", true),
    ("wrap_call_sized(", true),
    ("wrapped(", false),
];

fn current_fn(line: &str) -> Option<String> {
    let t = line.trim_start();
    let rest = t
        .strip_prefix("pub fn ")
        .or_else(|| t.strip_prefix("pub(crate) fn "))
        .or_else(|| t.strip_prefix("fn "))?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Parse the bytes expression following the name literal: everything up to
/// the next top-level comma.
fn parse_bytes_expr(after_name: &str) -> Option<BytesArg> {
    let rest = after_name.trim_start().strip_prefix(',')?;
    let mut depth = 0i32;
    let mut expr = String::new();
    for c in rest.chars() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => {
                if depth == 0 {
                    break; // closing the helper call: malformed site
                }
                depth -= 1;
            }
            ',' if depth == 0 => {
                let e = expr.trim();
                return Some(if e == "0" {
                    BytesArg::Zero
                } else {
                    BytesArg::Expr(e.to_owned())
                });
            }
            _ => {}
        }
        expr.push(c);
    }
    None
}

/// Extract all wrapper call sites in a monitor file.
pub fn wrap_sites(file: &SourceFile) -> Vec<WrapSite> {
    let lines = file.scanned_lines();
    let mut out = Vec::new();
    let mut fn_name = String::new();
    for (i, line) in lines.iter().enumerate() {
        if let Some(f) = current_fn(line) {
            fn_name = f;
        }
        for &(helper, sized) in WRAP_HELPERS {
            let Some(pos) = line.find(helper) else {
                continue;
            };
            // skip helper *definitions* (`fn wrapped<R>(` never matches the
            // plain pattern, but guard against `fn wrapped(` anyway)
            if line.trim_start().starts_with("fn ") || line.trim_start().starts_with("pub fn ") {
                continue;
            }
            // a longer helper name contains no shorter one, but the same
            // line never hosts two sites; take the first match only
            let joined: String = std::iter::once(line[pos + helper.len()..].to_owned())
                .chain(lines[i + 1..].iter().take(8).map(|l| (*l).to_owned()))
                .collect::<Vec<_>>()
                .join(" ");
            let Some(q0) = joined.find('"') else { continue };
            // the literal is either the bare first argument or wrapped in
            // the `site!(...)` interning macro; anything else preceding it
            // means the first argument is not a name literal (not a site)
            let prefix = joined[..q0].trim();
            let interned = prefix == "site!(";
            if !prefix.is_empty() && !interned {
                continue;
            }
            let Some(q1) = joined[q0 + 1..].find('"') else {
                continue;
            };
            let raw_name = joined[q0 + 1..q0 + 1 + q1].to_owned();
            let name = raw_name
                .split('(')
                .next()
                .unwrap_or(&raw_name)
                .trim()
                .to_owned();
            if !is_entry_point_name(&name) {
                // io_mon-style wrappers (posix names) and test scaffolding
                // are outside the spec's families
                continue;
            }
            let bytes = if sized {
                BytesArg::ResultSized
            } else {
                let mut after = &joined[q0 + 2 + q1..];
                if interned {
                    // consume the `site!(...)` closing paren before the comma
                    after = after.trim_start().strip_prefix(')').unwrap_or(after);
                }
                match parse_bytes_expr(after) {
                    Some(b) => b,
                    None => BytesArg::Expr("<unparsed>".to_owned()),
                }
            };
            out.push(WrapSite {
                name,
                raw_name,
                file: file.rel.clone(),
                line: i + 1,
                fn_name: fn_name.clone(),
                bytes,
            });
            break;
        }
    }
    out
}

/// A `// speccheck: allow(<code>)` waiver, scoped to the enclosing `fn`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Waiver {
    pub code: String,
    pub fn_name: String,
    pub file: String,
    pub line: usize,
}

/// Extract waiver comments.
pub fn waivers(file: &SourceFile) -> Vec<Waiver> {
    let lines = file.scanned_lines();
    let mut out = Vec::new();
    let mut fn_name = String::new();
    for (i, line) in lines.iter().enumerate() {
        if let Some(f) = current_fn(line) {
            fn_name = f;
        }
        let Some(pos) = line.find("speccheck: allow(") else {
            continue;
        };
        let rest = &line[pos + "speccheck: allow(".len()..];
        if let Some(end) = rest.find(')') {
            out.push(Waiver {
                code: rest[..end].to_owned(),
                fn_name: fn_name.clone(),
                file: file.rel.clone(),
                line: i + 1,
            });
        }
    }
    out
}

fn indent_of(line: &str) -> usize {
    line.len() - line.trim_start().len()
}

/// A `let`-bound lock guard and the line range it is (heuristically) live
/// for. Chained temporaries (`x.lock().do_thing()`) drop at the statement
/// end and are deliberately not tracked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockHold {
    pub file: String,
    /// Line of the `let ... = ....lock();` binding.
    pub line: usize,
    /// First line past the binding's scope.
    pub scope_end: usize,
    pub fn_name: String,
}

/// Extract `let`-bound guard scopes.
pub fn lock_holds(file: &SourceFile) -> Vec<LockHold> {
    let lines = file.scanned_lines();
    let mut out = Vec::new();
    let mut fn_name = String::new();
    for (i, line) in lines.iter().enumerate() {
        if let Some(f) = current_fn(line) {
            fn_name = f;
        }
        let t = line.trim();
        if !(t.starts_with("let ") && t.ends_with(".lock();")) {
            continue;
        }
        let indent = indent_of(line);
        let mut scope_end = lines.len() + 1;
        for (j, later) in lines.iter().enumerate().skip(i + 1) {
            if !later.trim().is_empty() && indent_of(later) < indent {
                scope_end = j + 1;
                break;
            }
        }
        out.push(LockHold {
            file: file.rel.clone(),
            line: i + 1,
            scope_end,
            fn_name: fn_name.clone(),
        });
    }
    out
}

/// Lines calling `.lock()` (any form), for the lock-order check.
pub fn lock_call_lines(file: &SourceFile) -> Vec<usize> {
    file.scanned_lines()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains(".lock()"))
        .map(|(i, _)| i + 1)
        .collect()
}

/// Does this monitor implement the host-idle probe?
pub fn defines_absorb(file: &SourceFile) -> bool {
    file.scanned_lines()
        .iter()
        .any(|l| l.contains("fn absorb_host_idle"))
}

/// A wrapper-anatomy primitive used outside the shared core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnatomyUse {
    /// The primitive spotted (e.g. `wrap_call(`).
    pub what: &'static str,
    pub fn_name: String,
    pub file: String,
    pub line: usize,
}

/// The anatomy primitives only `FacadeCore` may touch. A monitor facade
/// using any of these has re-grown its own copy of the Fig. 2 plumbing.
const ANATOMY_PRIMITIVES: &[&str] = &[
    "wrap_call(",
    "wrap_call_sized(",
    "fn absorb_host_idle",
    "update_pseudo(",
    "Instant::now",
    "clock().now",
];

/// Spot anatomy primitives in a monitor file (the unified-anatomy lint).
pub fn anatomy_uses(file: &SourceFile) -> Vec<AnatomyUse> {
    let lines = file.scanned_lines();
    let mut out = Vec::new();
    let mut fn_name = String::new();
    for (i, line) in lines.iter().enumerate() {
        if let Some(f) = current_fn(line) {
            fn_name = f;
        }
        for &what in ANATOMY_PRIMITIVES {
            if line.contains(what) {
                out.push(AnatomyUse {
                    what,
                    fn_name: fn_name.clone(),
                    file: file.rel.clone(),
                    line: i + 1,
                });
            }
        }
    }
    out
}

/// `(fn_name, line)` of every `absorb_host_idle()` *call* site.
pub fn absorb_calls(file: &SourceFile) -> Vec<(String, usize)> {
    let lines = file.scanned_lines();
    let mut out = Vec::new();
    let mut fn_name = String::new();
    for (i, line) in lines.iter().enumerate() {
        if let Some(f) = current_fn(line) {
            fn_name = f;
        }
        if line.contains("absorb_host_idle()") && !line.contains("fn ") {
            out.push((fn_name.clone(), i + 1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> SourceFile {
        SourceFile::new("crates/x/src/mon.rs", text)
    }

    #[test]
    fn facade_names_take_only_leading_backticked_first_lines() {
        let f = file(
            "/// `cudaMalloc` — allocate.\n\
             fn a() {}\n\
             /// `cuMemsetD8` — like `cudaMemset`, not blocking\n\
             /// (both `cudaMemset` and\n\
             /// `cuMemset` are exceptions).\n\
             fn b() {}\n\
             /// Scale adapter, not an entry point.\n\
             fn c() {}\n\
             /// `rows * cols` is prose, not a name.\n\
             fn d() {}\n",
        );
        let found = facade_names(&f);
        let names: Vec<&str> = found.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, ["cudaMalloc", "cuMemsetD8"]);
    }

    #[test]
    fn wrap_sites_parse_name_bytes_and_fn() {
        let f = file(
            "    pub fn cuda_malloc(&self, size: usize) -> R {\n\
             \x20       self.wrapped(\"cudaMalloc\", size as u64, || self.inner.m(size))\n\
             \x20   }\n\
             \x20   fn cuda_free(&self) -> R {\n\
             \x20       self.wrapped(\"cudaFree\", 0, || self.inner.f())\n\
             \x20   }\n\
             \x20   fn mpi_recv(&self) -> R {\n\
             \x20       self.wrapped_sized(\n\
             \x20           \"MPI_Recv\",\n\
             \x20           || self.inner.r(),\n\
             \x20           |r| 0,\n\
             \x20       )\n\
             \x20   }\n",
        );
        let sites = wrap_sites(&f);
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].name, "cudaMalloc");
        assert_eq!(sites[0].bytes, BytesArg::Expr("size as u64".to_owned()));
        assert_eq!(sites[0].fn_name, "cuda_malloc");
        assert_eq!(sites[1].bytes, BytesArg::Zero);
        assert_eq!(sites[2].name, "MPI_Recv");
        assert_eq!(sites[2].bytes, BytesArg::ResultSized);
    }

    #[test]
    fn suffixed_names_normalize_and_tests_are_skipped() {
        let f = file(
            "    fn m(&self) {\n\
             \x20       self.wrapped(\"cudaMemcpy(H2D)\", src.len() as u64, || x())\n\
             \x20   }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t(&self) { self.wrapped(\"cudaBogus\", 0, || x()) }\n\
             }\n",
        );
        let sites = wrap_sites(&f);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].name, "cudaMemcpy");
        assert_eq!(sites[0].raw_name, "cudaMemcpy(H2D)");
    }

    #[test]
    fn non_spec_names_are_not_sites() {
        let f = file("    fn m(&self) { self.wrapped(\"snprintf\", 0, || x()) }\n");
        assert!(wrap_sites(&f).is_empty());
    }

    #[test]
    fn io_names_are_spec_sites() {
        let f = file(
            "    fn m(&self) {\n\
             \x20       self.wrapped(site!(\"fread\"), cap, || x())\n\
             \x20   }\n",
        );
        let sites = wrap_sites(&f);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].name, "fread");
        assert_eq!(sites[0].bytes, BytesArg::Expr("cap".to_owned()));
    }

    #[test]
    fn interned_sites_parse_like_bare_literals() {
        let f = file(
            "    pub fn cuda_malloc(&self, size: usize) -> R {\n\
             \x20       self.wrapped(site!(\"cudaMalloc\"), size as u64, || self.inner.m(size))\n\
             \x20   }\n\
             \x20   fn cuda_free(&self) -> R {\n\
             \x20       self.wrapped(site!(\"cudaFree\"), 0, || self.inner.f())\n\
             \x20   }\n\
             \x20   fn mpi_recv(&self) -> R {\n\
             \x20       self.wrapped_sized(\n\
             \x20           site!(\"MPI_Recv\"),\n\
             \x20           || self.inner.r(),\n\
             \x20           |r| 0,\n\
             \x20       )\n\
             \x20   }\n",
        );
        let sites = wrap_sites(&f);
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].name, "cudaMalloc");
        assert_eq!(sites[0].bytes, BytesArg::Expr("size as u64".to_owned()));
        assert_eq!(sites[1].bytes, BytesArg::Zero);
        assert_eq!(sites[2].bytes, BytesArg::ResultSized);
    }

    #[test]
    fn anatomy_primitives_are_spotted_per_fn() {
        let f = file(
            "    fn wrapped<R>(&self) -> R {\n\
             \x20       wrap_call(self.clock(), self.sink(), call, bytes, ov, real)\n\
             \x20   }\n\
             \x20   fn absorb_host_idle(&self) {\n\
             \x20       let before = self.ipm.clock().now();\n\
             \x20   }\n",
        );
        let uses = anatomy_uses(&f);
        let whats: Vec<&str> = uses.iter().map(|u| u.what).collect();
        assert!(whats.contains(&"wrap_call("), "{whats:?}");
        assert!(whats.contains(&"fn absorb_host_idle"), "{whats:?}");
        assert!(whats.contains(&"clock().now"), "{whats:?}");
        assert!(anatomy_uses(&file(
            "    fn w(&self) { self.core.wrapped(call, 0, || x()) }\n"
        ))
        .is_empty());
    }

    #[test]
    fn lock_holds_track_let_guards_not_temporaries() {
        let f = file(
            "    fn launch(&self) {\n\
             \x20       let ret = {\n\
             \x20           let mut ktt = self.ipm.ktt().lock();\n\
             \x20           ktt.go(|| self.wrapped_no_sweep(\"cudaLaunch\", 0, || x()))\n\
             \x20       };\n\
             \x20       let done = self.ipm.ktt().lock().collect();\n\
             \x20   }\n",
        );
        let holds = lock_holds(&f);
        assert_eq!(holds.len(), 1, "chained temporary must not count");
        assert_eq!(holds[0].line, 3);
        assert_eq!(holds[0].scope_end, 5);
        assert_eq!(holds[0].fn_name, "launch");
    }

    #[test]
    fn waivers_are_fn_scoped() {
        let f = file(
            "    fn a(&self) {\n\
             \x20       // speccheck: allow(wrap-once) — branches\n\
             \x20   }\n\
             \x20   fn b(&self) {}\n",
        );
        let w = waivers(&f);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].code, "wrap-once");
        assert_eq!(w[0].fn_name, "a");
    }

    #[test]
    fn absorb_detection() {
        let f = file(
            "    fn absorb_host_idle(&self) {}\n\
             \x20   fn copy(&self) {\n\
             \x20       self.absorb_host_idle();\n\
             \x20   }\n",
        );
        assert!(defines_absorb(&f));
        let calls = absorb_calls(&f);
        assert_eq!(calls, vec![("copy".to_owned(), 3)]);
    }
}
