//! Diagnostics: rustc-style text rendering and a line-oriented JSON form.

/// One finding. `code` is the lint family, `target` the offending entry
/// point (or file-scoped item); together they form the stable baseline key,
/// so a diagnostic moving to a different line does not churn the baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: &'static str,
    pub target: String,
    /// Repo-relative path.
    pub file: String,
    /// 1-indexed; 0 when the finding has no anchor line (count mismatches).
    pub line: usize,
    pub message: String,
}

impl Diagnostic {
    /// The baseline key: `code:target`.
    pub fn key(&self) -> String {
        format!("{}:{}", self.code, self.target)
    }
}

/// Render rustc-style:
///
/// ```text
/// error[missing-wrapper]: `MPI_Wtime` is in the spec and modeled by the facade but never wrapped
///   --> crates/mpi-sim/src/api.rs:51
/// ```
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!("error[{}]: {}\n", d.code, d.message));
        if d.line > 0 {
            out.push_str(&format!("  --> {}:{}\n", d.file, d.line));
        } else {
            out.push_str(&format!("  --> {}\n", d.file));
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render as a JSON array of objects (machine-readable CI output).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"code\":\"{}\",\"target\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}{}\n",
            json_escape(d.code),
            json_escape(&d.target),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message),
            if i + 1 < diags.len() { "," } else { "" },
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            code: "missing-wrapper",
            target: "MPI_Wtime".to_owned(),
            file: "crates/mpi-sim/src/api.rs".to_owned(),
            line: 51,
            message: "`MPI_Wtime` is never wrapped".to_owned(),
        }
    }

    #[test]
    fn text_is_rustc_style() {
        let text = render_text(&[sample()]);
        assert!(text.contains("error[missing-wrapper]:"));
        assert!(text.contains("--> crates/mpi-sim/src/api.rs:51"));
    }

    #[test]
    fn json_has_all_fields_and_escapes() {
        let mut d = sample();
        d.message = "a \"quoted\"\nthing".to_owned();
        let json = render_json(&[d.clone(), sample()]);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"code\":\"missing-wrapper\""));
        assert!(json.contains("\"line\":51"));
        assert!(json.contains("a \\\"quoted\\\"\\nthing"));
        // two objects, one separating comma
        assert_eq!(json.matches("{\"code\"").count(), 2);
    }

    #[test]
    fn baseline_key_is_code_and_target() {
        assert_eq!(sample().key(), "missing-wrapper:MPI_Wtime");
    }
}
