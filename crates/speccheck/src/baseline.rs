//! The committed allowlist: known, justified findings.
//!
//! Format: one `code:target` key per line, `#` comments and blank lines
//! ignored. A trailing `# reason` on a key line documents the waiver. CI
//! fails only on findings *not* in the baseline, so new violations surface
//! immediately while the justified set stays visible in review.

use crate::diag::Diagnostic;
use std::collections::BTreeSet;

/// Default baseline location, relative to the workspace root.
pub const BASELINE_FILE: &str = "speccheck-baseline.txt";

/// Parse baseline text into its key set.
pub fn parse(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| l.to_owned())
        .collect()
}

/// Split findings into `(new, suppressed)` against a baseline, and report
/// baseline keys that no longer match anything (stale entries).
pub struct Partition {
    pub new: Vec<Diagnostic>,
    pub suppressed: Vec<Diagnostic>,
    pub stale: Vec<String>,
}

pub fn partition(diags: Vec<Diagnostic>, baseline: &BTreeSet<String>) -> Partition {
    let mut new = Vec::new();
    let mut suppressed = Vec::new();
    let mut used: BTreeSet<String> = BTreeSet::new();
    for d in diags {
        let key = d.key();
        if baseline.contains(&key) {
            used.insert(key);
            suppressed.push(d);
        } else {
            new.push(d);
        }
    }
    let stale = baseline.difference(&used).cloned().collect();
    Partition {
        new,
        suppressed,
        stale,
    }
}

/// Regenerate baseline text from the current findings, carrying over the
/// comment of any key that already had one.
pub fn regenerate(diags: &[Diagnostic], old_text: &str) -> String {
    let mut comments: std::collections::BTreeMap<String, String> = Default::default();
    for line in old_text.lines() {
        if let Some((key, comment)) = line.split_once('#') {
            let key = key.trim();
            if !key.is_empty() {
                comments.insert(key.to_owned(), comment.trim().to_owned());
            }
        }
    }
    let mut out = String::from(
        "# ipm-speccheck baseline: known, justified findings (one `code:target` per line).\n\
         # Regenerate with `cargo run -p ipm-speccheck -- --workspace --update-baseline`;\n\
         # every entry should carry a `# reason`.\n",
    );
    let keys: BTreeSet<String> = diags.iter().map(|d| d.key()).collect();
    for key in keys {
        match comments.get(&key) {
            Some(c) => out.push_str(&format!("{key} # {c}\n")),
            None => out.push_str(&format!("{key} # TODO: justify or fix\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(code: &'static str, target: &str) -> Diagnostic {
        Diagnostic {
            code,
            target: target.to_owned(),
            file: "f.rs".to_owned(),
            line: 1,
            message: "m".to_owned(),
        }
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let b = parse(
            "# header\n\nmissing-wrapper:MPI_Wtime # deliberate\n  orphan-facade:cuLaunchKernel\n",
        );
        assert_eq!(b.len(), 2);
        assert!(b.contains("missing-wrapper:MPI_Wtime"));
        assert!(b.contains("orphan-facade:cuLaunchKernel"));
    }

    #[test]
    fn partition_separates_new_suppressed_and_stale() {
        let b = parse("missing-wrapper:MPI_Wtime\nbytes-attr:gone");
        let p = partition(
            vec![
                d("missing-wrapper", "MPI_Wtime"),
                d("wrap-once", "cudaLaunch"),
            ],
            &b,
        );
        assert_eq!(p.suppressed.len(), 1);
        assert_eq!(p.new.len(), 1);
        assert_eq!(p.new[0].code, "wrap-once");
        assert_eq!(p.stale, vec!["bytes-attr:gone".to_owned()]);
    }

    #[test]
    fn regenerate_keeps_existing_reasons() {
        let old = "missing-wrapper:MPI_Wtime # no useful signal\n";
        let text = regenerate(
            &[d("missing-wrapper", "MPI_Wtime"), d("wrap-once", "x")],
            old,
        );
        assert!(text.contains("missing-wrapper:MPI_Wtime # no useful signal"));
        assert!(text.contains("wrap-once:x # TODO: justify or fix"));
        // regenerated text round-trips through the parser
        assert_eq!(parse(&text).len(), 2);
    }
}
