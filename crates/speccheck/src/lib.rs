//! # ipm-speccheck
//!
//! Workspace-aware spec-conformance checker for the IPM reproduction.
//!
//! The paper's monitoring layer derives its wrappers from a formal
//! interface inventory (65 CUDA runtime, 99 driver, 167 CUBLAS, 13 CUFFT
//! calls). This crate closes the loop statically: it reconciles every
//! [`CallSpec`](ipm_interpose::CallSpec) row against the monitored facades
//! and lints the wrapper anatomy itself:
//!
//! - **Spec coverage** — missing wrappers, orphan wrappers, orphan facade
//!   entry points, per-family counts, cross-family name injectivity.
//! - **Wrapper anatomy** — one sink report per call, the §III-C memset
//!   exclusion held at the spec level (the blocking class drives the probe
//!   now), byte attribution matching the spec, no guard held across the
//!   real call, no nested stripe locks in the hash table / trace ring, and
//!   *one* anatomy: monitor facades must delegate timing/probing/booking
//!   to `FacadeCore` rather than re-grow their own copies of the plumbing.
//!
//! Findings render rustc-style (`error[code]: ... --> file:line`) or as
//! JSON; a committed baseline allowlists the justified set so CI fails
//! only on *new* violations. See `DESIGN.md` §"Static analysis".

pub mod baseline;
pub mod checks;
pub mod diag;
pub mod extract;

pub use checks::{run, spec_from_registry, Role, SpecRow, EXPECTED_COUNTS, SCANNED_FILES};
pub use diag::{render_json, render_text, Diagnostic};
pub use extract::SourceFile;

use std::path::{Path, PathBuf};

/// The workspace root (this crate lives at `<root>/crates/speccheck`).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/speccheck has a workspace root two levels up")
        .to_path_buf()
}

/// Load the default scan set from disk.
pub fn load_sources(root: &Path) -> std::io::Result<Vec<(Role, SourceFile)>> {
    SCANNED_FILES
        .iter()
        .map(|&(rel, role)| {
            let text = std::fs::read_to_string(root.join(rel))?;
            Ok((role, SourceFile::new(rel, text)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real_run() -> Vec<Diagnostic> {
        let files = load_sources(&workspace_root()).expect("scan set readable");
        run(&spec_from_registry(), &files)
    }

    /// The justified findings the committed baseline carries — everything
    /// else in the workspace must be clean.
    const EXPECTED_KEYS: &[&str] = &[
        "missing-wrapper:MPI_Comm_rank",
        "missing-wrapper:MPI_Comm_size",
        "missing-wrapper:MPI_Wtime",
        "missing-wrapper:cublasInit",
        "missing-wrapper:cublasSetKernelStream",
        "missing-wrapper:cublasShutdown",
        "orphan-facade:cuLaunchKernel",
        "orphan-wrapper:cuLaunchKernel",
    ];

    #[test]
    fn workspace_findings_match_the_committed_baseline_exactly() {
        let mut keys: Vec<String> = real_run().iter().map(|d| d.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys, EXPECTED_KEYS, "workspace drifted from the baseline");

        let text = std::fs::read_to_string(workspace_root().join(baseline::BASELINE_FILE))
            .expect("committed baseline present");
        let committed = baseline::parse(&text);
        let p = baseline::partition(real_run(), &committed);
        assert!(
            p.new.is_empty(),
            "unbaselined findings:\n{}",
            render_text(&p.new)
        );
        assert!(p.stale.is_empty(), "stale baseline entries: {:?}", p.stale);
    }

    #[test]
    fn deliberately_unwrapping_a_call_is_detected() {
        let mut files = load_sources(&workspace_root()).unwrap();
        for (_, f) in &mut files {
            if f.rel.ends_with("driver_mon.rs") {
                // sabotage: the cuMemAlloc wrapper no longer reports
                f.text = f.text.replace("\"cuMemAlloc\"", "\"cuMemAllocRenamed\"");
            }
        }
        let diags = run(&spec_from_registry(), &files);
        let keys: Vec<String> = diags.iter().map(|d| d.key()).collect();
        assert!(
            keys.contains(&"missing-wrapper:cuMemAlloc".to_owned()),
            "{keys:?}"
        );
        assert!(keys.contains(&"orphan-wrapper:cuMemAllocRenamed".to_owned()));
        // and the finding renders rustc-style with a real location
        let text = render_text(&diags);
        assert!(text.contains("error[missing-wrapper]:"));
        assert!(text.contains("--> crates/gpu-sim/src/driver.rs:"));
    }

    #[test]
    fn deliberately_removing_a_spec_row_is_detected() {
        let files = load_sources(&workspace_root()).unwrap();
        let spec: Vec<SpecRow> = spec_from_registry()
            .into_iter()
            .filter(|r| r.name != "cudaMemcpy")
            .collect();
        let diags = run(&spec, &files);
        let keys: Vec<String> = diags.iter().map(|d| d.key()).collect();
        assert!(keys.contains(&"family-count:cuda-runtime".to_owned()));
        assert!(keys.contains(&"orphan-facade:cudaMemcpy".to_owned()));
        assert!(keys.contains(&"orphan-wrapper:cudaMemcpy".to_owned()));
        assert!(render_json(&diags).contains("\"code\":\"family-count\""));
    }

    #[test]
    fn wrap_once_lint_fires_without_waiver_and_respects_it() {
        let spec = spec_from_registry();
        let body = |waiver: &str| {
            format!(
                "    fn cuda_launch(&self) {{\n\
                 {waiver}\
                 \x20       self.wrapped(\"cudaLaunch\", 0, || a())\n\
                 \x20       self.wrapped(\"cudaLaunch\", 0, || b())\n\
                 \x20   }}\n"
            )
        };
        let mon = |text: String| {
            vec![(
                Role::Monitor,
                SourceFile::new("crates/ipm-core/src/cuda_mon.rs", text),
            )]
        };
        let fired = run(&spec, &mon(body("")));
        assert_eq!(
            fired.iter().filter(|d| d.code == "wrap-once").count(),
            1,
            "{fired:?}"
        );
        let waived = run(
            &spec,
            &mon(body("        // speccheck: allow(wrap-once)\n")),
        );
        assert!(waived.iter().all(|d| d.code != "wrap-once"), "{waived:?}");
    }

    #[test]
    fn anatomy_lint_catches_regrown_plumbing() {
        let spec = spec_from_registry();
        let text = "    fn wrapped<R>(&self, call: CallHandle, bytes: u64) -> R {\n\
                    \x20       wrap_call(self.ipm.clock(), self.ipm.as_ref(), call, bytes, ov, real)\n\
                    \x20   }\n\
                    \x20   fn probe(&self) {\n\
                    \x20       let before = self.ipm.clock().now();\n\
                    \x20   }\n";
        let files = vec![(
            Role::Monitor,
            SourceFile::new("crates/ipm-core/src/cuda_mon.rs", text),
        )];
        let diags = run(&spec, &files);
        let targets: Vec<&str> = diags
            .iter()
            .filter(|d| d.code == "anatomy")
            .map(|d| d.target.as_str())
            .collect();
        assert!(targets.contains(&"wrap_call"), "{targets:?}");
        assert!(targets.contains(&"clock().now"), "{targets:?}");

        // the real workspace carries no anatomy findings at all: every
        // facade delegates to the shared core
        let real = real_run();
        assert!(
            real.iter().all(|d| d.code != "anatomy"),
            "{:?}",
            real.iter()
                .filter(|d| d.code == "anatomy")
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn misclassifying_a_memset_as_blocking_is_detected() {
        let mut spec = spec_from_registry();
        for r in &mut spec {
            if r.name == "cudaMemset" {
                r.blocking = ipm_interpose::BlockingClass::ImplicitSync;
            }
        }
        let files = load_sources(&workspace_root()).unwrap();
        let diags = run(&spec, &files);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "host-idle" && d.target == "cudaMemset"),
            "{diags:?}"
        );
    }

    #[test]
    fn io_family_is_reconciled_like_the_paper_families() {
        // dropping the fread wrapper must be caught, proving the I/O
        // facade participates in the same coverage checks
        let mut files = load_sources(&workspace_root()).unwrap();
        for (_, f) in &mut files {
            if f.rel.ends_with("io_mon.rs") {
                f.text = f
                    .text
                    .replace("site!(\"fread\")", "site!(\"freadSkipped\")");
            }
        }
        let diags = run(&spec_from_registry(), &files);
        let keys: Vec<String> = diags.iter().map(|d| d.key()).collect();
        assert!(
            keys.contains(&"missing-wrapper:fread".to_owned()),
            "{keys:?}"
        );
    }

    #[test]
    fn host_idle_lint_enforces_routing_and_memset_exclusion() {
        let spec = spec_from_registry();
        let text = "    fn absorb_host_idle(&self) {}\n\
                    \x20   fn memcpy(&self) {\n\
                    \x20       self.wrapped(\"cudaMemcpy\", n, || x())\n\
                    \x20   }\n\
                    \x20   fn memset(&self) {\n\
                    \x20       self.absorb_host_idle();\n\
                    \x20       self.wrapped(\"cudaMemset\", n, || x())\n\
                    \x20   }\n";
        let files = vec![(
            Role::Monitor,
            SourceFile::new("crates/ipm-core/src/cuda_mon.rs", text),
        )];
        let diags = run(&spec, &files);
        let codes: Vec<(&str, &str)> = diags
            .iter()
            .filter(|d| d.code == "host-idle")
            .map(|d| (d.code, d.target.as_str()))
            .collect();
        assert!(codes.contains(&("host-idle", "cudaMemcpy")), "{codes:?}");
        assert!(codes.contains(&("host-idle", "cudaMemset")), "{codes:?}");
    }

    #[test]
    fn bytes_lint_matches_spec_attribution() {
        let spec = spec_from_registry();
        let text = "    fn a(&self) {\n\
                    \x20       self.wrapped(\"cudaMemcpy\", 0, || x())\n\
                    \x20   }\n\
                    \x20   fn b(&self) {\n\
                    \x20       self.wrapped(\"cudaFree\", n as u64, || x())\n\
                    \x20   }\n";
        let files = vec![(
            Role::Monitor,
            SourceFile::new("crates/ipm-core/src/cuda_mon.rs", text),
        )];
        let diags = run(&spec, &files);
        let bytes: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "bytes-attr").collect();
        assert_eq!(bytes.len(), 2, "{diags:?}");
    }

    #[test]
    fn lock_across_call_lint_fires_and_respects_waiver() {
        let spec = spec_from_registry();
        let body = |waiver: &str| {
            format!(
                "    fn cuda_launch(&self) {{\n\
                 {waiver}\
                 \x20       let mut ktt = self.ipm.ktt().lock();\n\
                 \x20       ktt.go(|| self.wrapped(\"cudaLaunch\", 0, || x()));\n\
                 \x20   }}\n"
            )
        };
        let mon = |text: String| {
            vec![(
                Role::Monitor,
                SourceFile::new("crates/ipm-core/src/cuda_mon.rs", text),
            )]
        };
        let fired = run(&spec, &mon(body("")));
        assert_eq!(
            fired
                .iter()
                .filter(|d| d.code == "lock-across-call")
                .count(),
            1,
            "{fired:?}"
        );
        let waived = run(
            &spec,
            &mon(body("        // speccheck: allow(lock-across-call)\n")),
        );
        assert!(
            waived.iter().all(|d| d.code != "lock-across-call"),
            "{waived:?}"
        );
    }

    #[test]
    fn lock_order_lint_catches_nested_stripes() {
        let text = "    fn update(&self) {\n\
                    \x20       let mut shard = self.shards[0].lock();\n\
                    \x20       let other = self.shards[1].lock();\n\
                    \x20   }\n";
        let files = vec![(
            Role::LockDiscipline,
            SourceFile::new("crates/ipm-core/src/table.rs", text),
        )];
        let diags = run(&[], &files);
        assert_eq!(diags.iter().filter(|d| d.code == "lock-order").count(), 1);
    }
}
