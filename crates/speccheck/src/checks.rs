//! The conformance checks: spec coverage + wrapper-anatomy lints.

use crate::diag::Diagnostic;
use crate::extract::{
    absorb_calls, anatomy_uses, defines_absorb, facade_names, lock_call_lines, lock_holds, waivers,
    wrap_sites, BytesArg, SourceFile, WrapSite,
};
use ipm_interpose::{ApiFamily, BlockingClass};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One specification row (decoupled from `ipm_interpose::CallSpec` so tests
/// can inject doctored specs).
#[derive(Clone, Debug)]
pub struct SpecRow {
    pub name: String,
    pub family: ApiFamily,
    pub blocking: BlockingClass,
    pub has_bytes: bool,
}

/// The live specification, straight from the interposition registry.
pub fn spec_from_registry() -> Vec<SpecRow> {
    let reg = ipm_interpose::Registry::global();
    (0..reg.len())
        .map(|i| {
            let c = reg.spec(ipm_interpose::CallId(i as u32));
            SpecRow {
                name: c.name.to_owned(),
                family: c.family,
                blocking: c.blocking,
                has_bytes: c.has_bytes,
            }
        })
        .collect()
}

/// What role a scanned file plays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Defines the simulated API surface (doc-named entry points).
    Facade,
    /// Wraps a facade and reports into the monitor (wrapper sites).
    Monitor,
    /// Monitor-internal locking whose discipline is checked.
    LockDiscipline,
}

/// The workspace scan set, repo-relative.
pub const SCANNED_FILES: &[(&str, Role)] = &[
    ("crates/gpu-sim/src/api.rs", Role::Facade),
    ("crates/gpu-sim/src/runtime.rs", Role::Facade),
    ("crates/gpu-sim/src/driver.rs", Role::Facade),
    ("crates/mpi-sim/src/api.rs", Role::Facade),
    ("crates/numlib/src/cublas.rs", Role::Facade),
    ("crates/numlib/src/cufft.rs", Role::Facade),
    ("crates/sim-core/src/fsio.rs", Role::Facade),
    ("crates/ipm-core/src/cuda_mon.rs", Role::Monitor),
    ("crates/ipm-core/src/driver_mon.rs", Role::Monitor),
    ("crates/ipm-core/src/mpi_mon.rs", Role::Monitor),
    ("crates/ipm-core/src/numlib_mon.rs", Role::Monitor),
    ("crates/ipm-core/src/io_mon.rs", Role::Monitor),
    ("crates/ipm-core/src/table.rs", Role::LockDiscipline),
    ("crates/ipm-core/src/facade.rs", Role::LockDiscipline),
    ("crates/ipm-core/src/trace.rs", Role::LockDiscipline),
    // The export pipeline: lock-free rendering code, scanned so the
    // lock-order discipline keeps holding as backends grow.
    ("crates/ipm-core/src/jsonw.rs", Role::LockDiscipline),
    ("crates/ipm-core/src/export/mod.rs", Role::LockDiscipline),
    ("crates/ipm-core/src/export/chrome.rs", Role::LockDiscipline),
    ("crates/ipm-core/src/export/otlp.rs", Role::LockDiscipline),
];

/// Paper Table: per-family call counts the spec must reproduce.
pub const EXPECTED_COUNTS: &[(ApiFamily, usize)] = &[
    (ApiFamily::CudaRuntime, 65),
    (ApiFamily::CudaDriver, 99),
    (ApiFamily::Cublas, 167),
    (ApiFamily::Cufft, 13),
    (ApiFamily::Mpi, 17),
    (ApiFamily::Io, 4),
];

fn family_name(f: ApiFamily) -> &'static str {
    match f {
        ApiFamily::CudaRuntime => "cuda-runtime",
        ApiFamily::CudaDriver => "cuda-driver",
        ApiFamily::Cublas => "cublas",
        ApiFamily::Cufft => "cufft",
        ApiFamily::Mpi => "mpi",
        ApiFamily::Io => "io",
    }
}

/// Run every check over a spec + source set and return all findings
/// (un-baselined; the caller applies the allowlist).
pub fn run(spec: &[SpecRow], files: &[(Role, SourceFile)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let by_name: HashMap<&str, &SpecRow> = spec.iter().map(|r| (r.name.as_str(), r)).collect();

    // -------- spec self-consistency --------
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for r in spec {
        *counts.entry(family_name(r.family)).or_default() += 1;
    }
    for &(fam, want) in EXPECTED_COUNTS {
        let got = counts.get(family_name(fam)).copied().unwrap_or(0);
        if got != want {
            diags.push(Diagnostic {
                code: "family-count",
                target: family_name(fam).to_owned(),
                file: "crates/interpose/src/spec.rs".to_owned(),
                line: 0,
                message: format!(
                    "{} family has {got} spec rows, the paper's interface inventory requires {want}",
                    family_name(fam)
                ),
            });
        }
    }
    // the probe is driven by the spec's blocking class now (the facades
    // carry no routing of their own), so §III-C's memset exception must
    // hold at the spec level: a misclassified row would probe everywhere
    for r in spec {
        if r.name.contains("emset") && r.blocking == BlockingClass::ImplicitSync {
            diags.push(Diagnostic {
                code: "host-idle",
                target: r.name.clone(),
                file: "crates/interpose/src/spec.rs".to_owned(),
                line: 0,
                message: format!(
                    "`{}` is a memset — excluded from the implicit-blocking set (paper §III-C) — yet its spec row is ImplicitSync, which would probe it on every call",
                    r.name
                ),
            });
        }
    }
    let mut seen: HashSet<&str> = HashSet::new();
    for r in spec {
        if !seen.insert(r.name.as_str()) {
            diags.push(Diagnostic {
                code: "duplicate-name",
                target: r.name.clone(),
                file: "crates/interpose/src/spec.rs".to_owned(),
                line: 0,
                message: format!(
                    "`{}` appears in more than one spec row; signatures key on the bare name and would merge",
                    r.name
                ),
            });
        }
    }

    // -------- facade surface --------
    let mut facades: Vec<crate::extract::FacadeName> = Vec::new();
    let mut facade_seen: HashSet<String> = HashSet::new();
    for (role, f) in files {
        if *role != Role::Facade {
            continue;
        }
        for fname in facade_names(f) {
            if facade_seen.insert(fname.name.clone()) {
                facades.push(fname);
            }
        }
    }

    // -------- wrapper sites --------
    let mut sites: Vec<WrapSite> = Vec::new();
    let mut all_waivers = Vec::new();
    for (role, f) in files {
        if *role != Role::Monitor {
            continue;
        }
        sites.extend(wrap_sites(f));
        all_waivers.extend(waivers(f));
    }
    let waived = |code: &str, file: &str, fn_name: &str| {
        all_waivers
            .iter()
            .any(|w| w.code == code && w.file == file && w.fn_name == fn_name)
    };
    let wrapped_names: HashSet<&str> = sites.iter().map(|s| s.name.as_str()).collect();

    // orphan-facade: doc-modeled but not a spec row
    for f in &facades {
        if !by_name.contains_key(f.name.as_str()) {
            diags.push(Diagnostic {
                code: "orphan-facade",
                target: f.name.clone(),
                file: f.file.clone(),
                line: f.line,
                message: format!(
                    "facade models `{}`, which is not a row of the call specification",
                    f.name
                ),
            });
        }
    }

    // missing-wrapper: modeled + specified but never monitored
    for f in &facades {
        if by_name.contains_key(f.name.as_str()) && !wrapped_names.contains(f.name.as_str()) {
            diags.push(Diagnostic {
                code: "missing-wrapper",
                target: f.name.clone(),
                file: f.file.clone(),
                line: f.line,
                message: format!(
                    "`{}` is in the spec and modeled by this facade, but no monitor wraps it",
                    f.name
                ),
            });
        }
    }

    // orphan-wrapper: monitored under a name the spec does not know
    let mut orphan_seen: HashSet<&str> = HashSet::new();
    for s in &sites {
        if !by_name.contains_key(s.name.as_str()) && orphan_seen.insert(s.name.as_str()) {
            diags.push(Diagnostic {
                code: "orphan-wrapper",
                target: s.name.clone(),
                file: s.file.clone(),
                line: s.line,
                message: format!(
                    "wrapper reports `{}` (as `{}`), which is not a row of the call specification",
                    s.name, s.raw_name
                ),
            });
        }
    }

    // wrap-once: a single method must report one name to the sink once;
    // two sites in one fn need a waiver (mutually-exclusive branches)
    let mut per_fn: BTreeMap<(String, String, String), Vec<&WrapSite>> = BTreeMap::new();
    for s in &sites {
        per_fn
            .entry((s.file.clone(), s.fn_name.clone(), s.name.clone()))
            .or_default()
            .push(s);
    }
    for ((file, fn_name, name), group) in &per_fn {
        if group.len() > 1 && !waived("wrap-once", file, fn_name) {
            diags.push(Diagnostic {
                code: "wrap-once",
                target: name.clone(),
                file: file.clone(),
                line: group[1].line,
                message: format!(
                    "`{fn_name}` reports `{name}` to the sink at {} sites; a call must be booked exactly once (waive with `speccheck: allow(wrap-once)` for exclusive branches)",
                    group.len()
                ),
            });
        }
    }

    // unified anatomy: a monitor facade may only delegate to the shared
    // core — re-growing timing/probing plumbing of its own is the drift
    // this refactor removed
    for (role, f) in files {
        if *role != Role::Monitor {
            continue;
        }
        for u in anatomy_uses(f) {
            if waived("anatomy", &u.file, &u.fn_name) {
                continue;
            }
            diags.push(Diagnostic {
                code: "anatomy",
                target: u.what.trim_end_matches('(').to_owned(),
                file: u.file.clone(),
                line: u.line,
                message: format!(
                    "`{}` uses `{}` directly; wrapper anatomy (timing, probing, overhead, booking) lives only in FacadeCore — delegate through `self.core` (waive with `speccheck: allow(anatomy)`)",
                    u.fn_name,
                    u.what.trim_end_matches('(')
                ),
            });
        }
    }

    // host-idle routing: in monitors implementing the probe (the legacy
    // per-facade anatomy), every implicit-sync wrapper must probe first,
    // and memsets must not
    for (role, f) in files {
        if *role != Role::Monitor || !defines_absorb(f) {
            continue;
        }
        let absorbs = absorb_calls(f);
        for s in wrap_sites(f) {
            let Some(row) = by_name.get(s.name.as_str()) else {
                continue;
            };
            let probed = absorbs
                .iter()
                .any(|(fn_name, line)| *fn_name == s.fn_name && *line < s.line);
            if row.blocking == BlockingClass::ImplicitSync && !probed {
                diags.push(Diagnostic {
                    code: "host-idle",
                    target: s.name.clone(),
                    file: s.file.clone(),
                    line: s.line,
                    message: format!(
                        "`{}` is in the implicit-blocking set but `{}` does not call absorb_host_idle() before the wrapped call",
                        s.name, s.fn_name
                    ),
                });
            }
            if s.name.contains("emset") && probed {
                diags.push(Diagnostic {
                    code: "host-idle",
                    target: s.name.clone(),
                    file: s.file.clone(),
                    line: s.line,
                    message: format!(
                        "`{}` is a memset — excluded from the implicit-blocking set (paper §III-C) — yet `{}` probes for host idle",
                        s.name, s.fn_name
                    ),
                });
            }
        }
    }

    // bytes attribution must match the spec row
    for s in &sites {
        let Some(row) = by_name.get(s.name.as_str()) else {
            continue;
        };
        match (&s.bytes, row.has_bytes) {
            (BytesArg::Zero, true) => diags.push(Diagnostic {
                code: "bytes-attr",
                target: s.name.clone(),
                file: s.file.clone(),
                line: s.line,
                message: format!(
                    "spec says `{}` carries a byte count, but the wrapper passes a literal 0",
                    s.name
                ),
            }),
            (BytesArg::Expr(e), false) => diags.push(Diagnostic {
                code: "bytes-attr",
                target: s.name.clone(),
                file: s.file.clone(),
                line: s.line,
                message: format!(
                    "spec says `{}` has no byte attribute, but the wrapper passes `{e}`",
                    s.name
                ),
            }),
            (BytesArg::ResultSized, false) => diags.push(Diagnostic {
                code: "bytes-attr",
                target: s.name.clone(),
                file: s.file.clone(),
                line: s.line,
                message: format!(
                    "spec says `{}` has no byte attribute, but the wrapper sizes it from the result",
                    s.name
                ),
            }),
            _ => {}
        }
    }

    // lock-across-call: no monitor may hold a let-bound guard across the
    // real (wrapped) call — the sink/table takes its own stripes inside
    for (role, f) in files {
        if *role != Role::Monitor {
            continue;
        }
        let holds = lock_holds(f);
        for s in wrap_sites(f) {
            for h in &holds {
                if s.line > h.line
                    && s.line < h.scope_end
                    && !waived("lock-across-call", &s.file, &s.fn_name)
                {
                    diags.push(Diagnostic {
                        code: "lock-across-call",
                        target: s.name.clone(),
                        file: s.file.clone(),
                        line: s.line,
                        message: format!(
                            "`{}` wraps the real call while the guard taken at line {} is still held (waive with `speccheck: allow(lock-across-call)` if the bracketing requires it)",
                            s.fn_name, h.line
                        ),
                    });
                }
            }
        }
    }

    // lock-order: the table/trace stripes must never nest
    for (role, f) in files {
        if *role != Role::LockDiscipline {
            continue;
        }
        let holds = lock_holds(f);
        let calls = lock_call_lines(f);
        for h in &holds {
            for &c in &calls {
                if c > h.line && c < h.scope_end {
                    diags.push(Diagnostic {
                        code: "lock-order",
                        target: format!("{}:{}", f.rel, c),
                        file: f.rel.clone(),
                        line: c,
                        message: format!(
                            "second `.lock()` while the stripe guard from line {} is held — stripes must never nest",
                            h.line
                        ),
                    });
                }
            }
        }
    }

    diags.sort_by(|a, b| {
        (a.code, &a.file, a.line, &a.target).cmp(&(b.code, &b.file, b.line, &b.target))
    });
    diags
}
