//! Exhaustive schedule exploration of the two concurrency-critical monitor
//! structures: the lock-striped trace ring and the perf-table stripe update
//! path. Compiled (and run) only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p ipm-core --test loom --release
//! ```
//!
//! These upgrade PR 1's randomized property tests to model checking: every
//! sequentially-consistent interleaving of lock/atomic operations the models
//! reach is visited (up to `LOOM_MAX_ITERATIONS`), not a sampled handful.
#![cfg(loom)]

use ipm_core::{CompactPolicy, EventSignature, PerfTable, TraceKind, TraceRecord, TraceRing};
use loom::sync::Arc;
use loom::thread;

fn rec(name: &str, begin: f64) -> TraceRecord {
    TraceRecord {
        kind: TraceKind::Call,
        name: name.into(),
        detail: None,
        begin,
        end: begin + 1e-6,
        bytes: 64,
        region: 0,
        stream: None,
        corr: 0,
        agg: None,
    }
}

/// The ring's core invariant, `captured + dropped == emitted`, under
/// concurrent emitters contending for a single stripe that is too small for
/// the combined load (so both the accept and the drop path are explored).
#[test]
fn trace_ring_accounting_is_exact_under_concurrent_emit() {
    loom::model(|| {
        // capacity 3, one stripe: four offers => at least one drop.
        let ring = Arc::new(TraceRing::new(3, 1));
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    let mut accepted = 0u64;
                    for i in 0..2 {
                        if ring.push(rec("cudaLaunch", (t * 2 + i) as f64)) {
                            accepted += 1;
                        }
                    }
                    accepted
                })
            })
            .collect();
        let accepted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

        assert_eq!(ring.emitted(), 4);
        assert_eq!(ring.captured() + ring.dropped(), ring.emitted());
        assert_eq!(ring.captured(), accepted);
        assert_eq!(ring.captured(), 3);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.len() as u64, ring.captured());
    });
}

/// A drain racing the emitters must neither disturb the cumulative counters
/// nor lose a record: everything accepted is either drained or still
/// resident afterwards.
#[test]
fn trace_ring_drain_races_emitters_without_losing_records() {
    loom::model(|| {
        let ring = Arc::new(TraceRing::new(4, 1));
        let emitter = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                ring.push(rec("cudaMemcpy(H2D)", 1.0));
                ring.push(rec("cudaMemcpy(D2H)", 2.0));
            })
        };
        let drained_mid = ring.drain().len() as u64;
        emitter.join().unwrap();

        assert_eq!(ring.captured() + ring.dropped(), ring.emitted());
        assert_eq!(ring.emitted(), 2);
        assert_eq!(ring.dropped(), 0);
        // counters are cumulative: the mid-flight drain removed records but
        // not history, and no accepted record vanished.
        assert_eq!(drained_mid + ring.len() as u64, ring.captured());
        assert_eq!(ring.captured(), 2);
    });
}

/// Compaction under contention: concurrent writers race the in-line merge
/// pass a compacting ring runs inside `push`. Whatever the interleaving,
/// the widened ledger `captured + dropped + compacted_away == emitted` must
/// close, no event's *accounting* may vanish (summary `event_count`s plus
/// singletons recover every accepted offer), and every stripe run must come
/// out pre-sorted — merge passes may never leave a stripe's buffer
/// interleaved out of `(begin, end)` order.
#[test]
fn trace_ring_compaction_races_writers_without_losing_accounting() {
    loom::model(|| {
        // one stripe, high-water 2: every push beyond the second can
        // trigger a merge pass while the other thread is mid-offer.
        let ring = Arc::new(TraceRing::with_policy(
            4,
            1,
            CompactPolicy::with_high_water(2),
        ));
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    let mut accepted = 0u64;
                    for i in 0..3 {
                        // same signature, mergeable (corr 0, short): the
                        // compactor is allowed to absorb any adjacent pair
                        if ring.push(rec("cudaLaunch", (t * 3 + i) as f64)) {
                            accepted += 1;
                        }
                    }
                    accepted
                })
            })
            .collect();
        let accepted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

        assert_eq!(ring.emitted(), 6);
        assert_eq!(
            ring.captured() + ring.dropped() + ring.compacted_away(),
            ring.emitted(),
            "compaction ledger must close"
        );
        assert_eq!(ring.emitted() - ring.dropped(), accepted);

        // stripe runs are pre-sorted: a merge pass must never leave a
        // stripe interleaved out of time order
        for run in ring.snapshot_runs() {
            for w in run.windows(2) {
                assert!(
                    (w[0].begin, w[0].end) <= (w[1].begin, w[1].end),
                    "stripe run out of order"
                );
            }
        }

        // effective conservation: summaries carry the counts of the
        // records they absorbed, so the drain recovers every accepted
        // offer exactly
        let drained = ring.drain();
        let effective: u64 = drained.iter().map(|r| r.event_count()).sum();
        assert_eq!(effective, accepted, "events lost or invented by merge");
        for w in drained.windows(2) {
            assert!((w[0].begin, w[0].end) <= (w[1].begin, w[1].end));
        }
    });
}

/// The thread-local delta-cell flush: recorders deposit into private cells
/// (`update_key`) while a drainer races them with flushing reads
/// (`snapshot`/`get`). Whatever the interleaving, no delta may be lost
/// (every completed update is eventually visible) and none may be counted
/// twice (flushing drains a cell, it does not copy it).
#[test]
fn delta_cell_flush_races_recorders_without_losing_or_doubling() {
    loom::model(|| {
        let table = Arc::new(PerfTable::new());
        let hot = EventSignature::call("cudaLaunch", 0);
        let recorders: Vec<_> = (0..2)
            .map(|t| {
                let table = Arc::clone(&table);
                thread::spawn(move || {
                    // two updates per thread: the second lands on a key the
                    // cell has already seen *unless* a racing flush drained
                    // it in between — both shapes are explored
                    table.update(&EventSignature::call("cudaLaunch", 0), 1e-6);
                    table.update(&EventSignature::call("cudaMemcpy(H2D)", 64 * t), 2e-6);
                })
            })
            .collect();

        // mid-flight flushing read, racing both recorders: it may observe
        // any prefix of the updates, but never a torn or doubled one
        let mid: u64 = table.snapshot().iter().map(|(_, stats)| stats.count).sum();
        assert!(mid <= 4, "mid-flight snapshot invented {mid} observations");

        for h in recorders {
            h.join().unwrap();
        }

        // after the recorders retire, a flushing read recovers every
        // completed update exactly once — across cells *and* across the
        // earlier drain (flushed deltas merged into shards stay there)
        let hot_stats = table.get(&hot).unwrap();
        assert_eq!(hot_stats.count, 2, "hot-key delta lost or doubled");
        assert_eq!(hot_stats.total, 2e-6);
        let total: u64 = table.snapshot().iter().map(|(_, stats)| stats.count).sum();
        assert_eq!(total, 4, "flush lost or double-counted a delta cell");
        assert_eq!(table.overflow(), 0);
    });
}

/// The stripe update path: concurrent updates to one hot signature must
/// merge (no lost counts), and the capacity-cap accounting must never store
/// more than `capacity` entries no matter how len-check/insert interleave.
#[test]
fn perf_table_stripe_updates_merge_and_respect_capacity() {
    loom::model(|| {
        let table = Arc::new(PerfTable::with_shape(2, 1));
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let table = Arc::clone(&table);
                thread::spawn(move || {
                    table.update(&EventSignature::call("hot", 0), 1e-6);
                    table.update(&EventSignature::call("own", t), 1e-6);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let hot = table.get(&EventSignature::call("hot", 0)).unwrap();
        assert_eq!(hot.count, 2, "hot-signature update lost");
        // 3 distinct signatures offered into capacity 2. The cap is
        // advisory under races (the len check and the insert are separate
        // steps), so concurrent inserters may over-admit by at most one
        // entry each — but no offer may vanish: entries stored plus
        // overflowed updates must cover all 4 offers exactly.
        assert!(table.len() <= 3);
        let stored_updates: u64 = [
            table.get(&EventSignature::call("hot", 0)),
            table.get(&EventSignature::call("own", 0)),
            table.get(&EventSignature::call("own", 1)),
        ]
        .iter()
        .flatten()
        .map(|s| s.count)
        .sum();
        assert_eq!(stored_updates + table.overflow(), 4);
    });
}
