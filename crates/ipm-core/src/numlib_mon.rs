//! Monitored numerical-library APIs (paper §III-D).
//!
//! IPM wraps the CUBLAS and CUFFT entry points, recording "the size of
//! matrices, vectors, or operations for each call in the *bytes* parameter
//! ... [allowing] correlation of achieved performance with the size of the
//! operation". [`IpmBlas`] and [`IpmFft`] are those wrappers. Note the
//! layering: for full fidelity the wrapped library context should itself be
//! constructed over the *monitored* CUDA facade, so its internal launches
//! and transfers are intercepted too — exactly how `LD_PRELOAD` composes in
//! the real tool.

use crate::facade::FacadeCore;
use crate::monitor::Ipm;
use ipm_gpu_sim::{CudaResult, DevicePtr, StreamId};
use ipm_interpose::{site, CallHandle};
use ipm_numlib::{BlasApi, Complex64, FftApi, FftDirection, FftType, PlanId, Transpose};
use std::sync::Arc;

/// The monitored CUBLAS facade.
pub struct IpmBlas<B: BlasApi> {
    core: FacadeCore,
    inner: B,
}

impl<B: BlasApi> IpmBlas<B> {
    /// Install monitoring around `inner`.
    pub fn new(ipm: Arc<Ipm>, inner: B) -> Self {
        Self {
            core: FacadeCore::new(ipm, None),
            inner,
        }
    }

    /// The wrapped library.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The monitoring context.
    pub fn ipm(&self) -> &Arc<Ipm> {
        self.core.ipm()
    }

    fn wrapped<R>(&self, call: CallHandle, bytes: u64, real: impl FnOnce() -> R) -> R {
        self.core.wrapped(call, bytes, real)
    }
}

impl<B: BlasApi> BlasApi for IpmBlas<B> {
    fn cublas_alloc(&self, n: usize, elem_size: usize) -> CudaResult<DevicePtr> {
        self.wrapped(site!("cublasAlloc"), (n * elem_size) as u64, || {
            self.inner.cublas_alloc(n, elem_size)
        })
    }

    fn cublas_free(&self, ptr: DevicePtr) -> CudaResult<()> {
        self.wrapped(site!("cublasFree"), 0, || self.inner.cublas_free(ptr))
    }

    fn cublas_set_matrix(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        host: &[u8],
        dev: DevicePtr,
    ) -> CudaResult<()> {
        self.wrapped(
            site!("cublasSetMatrix"),
            (rows * cols * elem_size) as u64,
            || {
                self.inner
                    .cublas_set_matrix(rows, cols, elem_size, host, dev)
            },
        )
    }

    fn cublas_get_matrix(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        dev: DevicePtr,
        host: &mut [u8],
    ) -> CudaResult<()> {
        self.wrapped(
            site!("cublasGetMatrix"),
            (rows * cols * elem_size) as u64,
            || {
                self.inner
                    .cublas_get_matrix(rows, cols, elem_size, dev, host)
            },
        )
    }

    fn cublas_set_matrix_modeled(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        host_prefix: &[u8],
        dev: DevicePtr,
    ) -> CudaResult<()> {
        self.wrapped(
            site!("cublasSetMatrix"),
            (rows * cols * elem_size) as u64,
            || {
                self.inner
                    .cublas_set_matrix_modeled(rows, cols, elem_size, host_prefix, dev)
            },
        )
    }

    fn cublas_get_matrix_modeled(
        &self,
        rows: usize,
        cols: usize,
        elem_size: usize,
        dev: DevicePtr,
        host_prefix: &mut [u8],
    ) -> CudaResult<()> {
        self.wrapped(
            site!("cublasGetMatrix"),
            (rows * cols * elem_size) as u64,
            || {
                self.inner
                    .cublas_get_matrix_modeled(rows, cols, elem_size, dev, host_prefix)
            },
        )
    }

    fn cublas_set_vector(
        &self,
        n: usize,
        elem_size: usize,
        host: &[u8],
        dev: DevicePtr,
    ) -> CudaResult<()> {
        self.wrapped(site!("cublasSetVector"), (n * elem_size) as u64, || {
            self.inner.cublas_set_vector(n, elem_size, host, dev)
        })
    }

    fn cublas_get_vector(
        &self,
        n: usize,
        elem_size: usize,
        dev: DevicePtr,
        host: &mut [u8],
    ) -> CudaResult<()> {
        self.wrapped(site!("cublasGetVector"), (n * elem_size) as u64, || {
            self.inner.cublas_get_vector(n, elem_size, dev, host)
        })
    }

    fn cublas_dgemm(
        &self,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        da: DevicePtr,
        lda: usize,
        db: DevicePtr,
        ldb: usize,
        beta: f64,
        dc: DevicePtr,
        ldc: usize,
    ) -> CudaResult<()> {
        // operand footprint: A(mk) + B(kn) + C(mn) doubles
        let bytes = 8 * (m * k + k * n + m * n) as u64;
        self.wrapped(site!("cublasDgemm"), bytes, || {
            self.inner
                .cublas_dgemm(ta, tb, m, n, k, alpha, da, lda, db, ldb, beta, dc, ldc)
        })
    }

    fn cublas_zgemm(
        &self,
        ta: Transpose,
        tb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: Complex64,
        da: DevicePtr,
        lda: usize,
        db: DevicePtr,
        ldb: usize,
        beta: Complex64,
        dc: DevicePtr,
        ldc: usize,
    ) -> CudaResult<()> {
        let bytes = 16 * (m * k + k * n + m * n) as u64;
        self.wrapped(site!("cublasZgemm"), bytes, || {
            self.inner
                .cublas_zgemm(ta, tb, m, n, k, alpha, da, lda, db, ldb, beta, dc, ldc)
        })
    }

    fn cublas_daxpy(&self, n: usize, alpha: f64, dx: DevicePtr, dy: DevicePtr) -> CudaResult<()> {
        self.wrapped(site!("cublasDaxpy"), 16 * n as u64, || {
            self.inner.cublas_daxpy(n, alpha, dx, dy)
        })
    }

    fn cublas_ddot(&self, n: usize, dx: DevicePtr, dy: DevicePtr) -> CudaResult<f64> {
        self.wrapped(site!("cublasDdot"), 16 * n as u64, || {
            self.inner.cublas_ddot(n, dx, dy)
        })
    }
}

/// The monitored CUFFT facade. Wraps the concrete context (it needs plan
/// metadata to derive operand sizes).
pub struct IpmFft {
    core: FacadeCore,
    inner: Arc<ipm_numlib::CufftContext>,
}

impl IpmFft {
    /// Install monitoring around `inner`.
    pub fn new(ipm: Arc<Ipm>, inner: Arc<ipm_numlib::CufftContext>) -> Self {
        Self {
            core: FacadeCore::new(ipm, None),
            inner,
        }
    }

    /// The wrapped library.
    pub fn inner(&self) -> &Arc<ipm_numlib::CufftContext> {
        &self.inner
    }

    /// The monitoring context.
    pub fn ipm(&self) -> &Arc<Ipm> {
        self.core.ipm()
    }

    fn wrapped<R>(&self, call: CallHandle, bytes: u64, real: impl FnOnce() -> R) -> R {
        self.core.wrapped(call, bytes, real)
    }
}

impl FftApi for IpmFft {
    fn cufft_plan_1d(&self, n: usize, ty: FftType, batch: usize) -> CudaResult<PlanId> {
        self.wrapped(site!("cufftPlan1d"), (16 * n * batch) as u64, || {
            self.inner.plan_1d(n, ty, batch)
        })
    }

    fn cufft_set_stream(&self, plan: PlanId, stream: StreamId) -> CudaResult<()> {
        self.wrapped(site!("cufftSetStream"), 0, || {
            self.inner.set_stream(plan, stream)
        })
    }

    fn cufft_exec_z2z(
        &self,
        plan: PlanId,
        idata: DevicePtr,
        odata: DevicePtr,
        dir: FftDirection,
    ) -> CudaResult<()> {
        let bytes = self
            .inner
            .plan_info(plan)
            .map(|(n, b)| (16 * n * b) as u64)
            .unwrap_or(0);
        self.wrapped(site!("cufftExecZ2Z"), bytes, || {
            self.inner.exec_z2z(plan, idata, odata, dir)
        })
    }

    fn cufft_destroy(&self, plan: PlanId) -> CudaResult<()> {
        self.wrapped(site!("cufftDestroy"), 0, || self.inner.destroy(plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuda_mon::IpmCuda;
    use crate::monitor::IpmConfig;
    use ipm_gpu_sim::{CudaApi, GpuConfig, GpuRuntime};
    use ipm_numlib::{CublasContext, CufftConfig, CufftContext, DeviceLibConfig};

    /// Full monitored stack: IPM around CUDA, CUBLAS built over the
    /// monitored CUDA, IPM around CUBLAS.
    fn stack() -> (Arc<Ipm>, IpmBlas<CublasContext>) {
        let rt = Arc::new(GpuRuntime::single(
            GpuConfig::dirac_node().with_context_init(0.0),
        ));
        let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
        let cuda: Arc<dyn CudaApi> = Arc::new(IpmCuda::new(ipm.clone(), rt));
        let blas = CublasContext::init(cuda, DeviceLibConfig::default());
        (ipm.clone(), IpmBlas::new(ipm, blas))
    }

    #[test]
    fn cublas_calls_record_operand_bytes() {
        let (ipm, blas) = stack();
        let d = blas.cublas_alloc(16, 8).unwrap();
        let host: Vec<u8> = vec![0; 128];
        blas.cublas_set_matrix(4, 4, 8, &host, d).unwrap();
        blas.cublas_dgemm(
            Transpose::N,
            Transpose::N,
            4,
            4,
            4,
            1.0,
            d,
            4,
            d,
            4,
            0.0,
            d,
            4,
        )
        .unwrap();
        let p = ipm.profile();
        let set = p
            .entries
            .iter()
            .find(|e| e.name == "cublasSetMatrix")
            .unwrap();
        assert_eq!(set.bytes, 128);
        let gemm = p.entries.iter().find(|e| e.name == "cublasDgemm").unwrap();
        assert_eq!(gemm.bytes, 8 * (16 + 16 + 16));
    }

    #[test]
    fn internal_cuda_calls_are_also_intercepted() {
        // the LD_PRELOAD composition property: CUBLAS's own launches and
        // memcpys show up in the profile alongside the cublas* entries
        let (ipm, blas) = stack();
        let d = blas.cublas_alloc(16, 8).unwrap();
        let host = vec![0u8; 128];
        blas.cublas_set_matrix(4, 4, 8, &host, d).unwrap();
        blas.cublas_dgemm(
            Transpose::N,
            Transpose::N,
            4,
            4,
            4,
            1.0,
            d,
            4,
            d,
            4,
            0.0,
            d,
            4,
        )
        .unwrap();
        let p = ipm.profile();
        assert!(
            p.count_of("cudaLaunch") >= 1,
            "library launch not intercepted"
        );
        assert!(
            p.count_of("cudaMemcpy(H2D)") >= 1,
            "library transfer not intercepted"
        );
        assert!(p.count_of("cudaConfigureCall") >= 1);
    }

    #[test]
    fn gemm_kernel_time_lands_in_exec_entries() {
        let (ipm, blas) = stack();
        let d = blas.cublas_alloc(64 * 64, 8).unwrap();
        blas.cublas_dgemm(
            Transpose::N,
            Transpose::N,
            64,
            64,
            64,
            1.0,
            d,
            64,
            d,
            64,
            0.0,
            d,
            64,
        )
        .unwrap();
        // sweep happens via a monitored sync call
        let host = &mut [0u8; 8][..];
        let _ = blas.cublas_get_vector(1, 8, d, host);
        let p = ipm.profile();
        let exec = p.time_of("@CUDA_EXEC_STRM00");
        assert!(exec > 0.0, "gemm kernel not timed");
        let breakdown = p.kernel_breakdown();
        assert_eq!(breakdown[0].0, "dgemm_kernel_NN");
    }

    #[test]
    fn cufft_exec_records_plan_sizes() {
        let rt = Arc::new(GpuRuntime::single(
            GpuConfig::dirac_node().with_context_init(0.0),
        ));
        let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
        let cuda: Arc<dyn CudaApi> = Arc::new(IpmCuda::new(ipm.clone(), rt.clone()));
        let fft = IpmFft::new(
            ipm.clone(),
            Arc::new(CufftContext::new(cuda, CufftConfig::default())),
        );
        let d = rt.malloc(64 * 16).unwrap();
        let plan = fft.cufft_plan_1d(64, FftType::Z2Z, 1).unwrap();
        fft.cufft_exec_z2z(plan, d, d, FftDirection::Forward)
            .unwrap();
        fft.cufft_destroy(plan).unwrap();
        let p = ipm.profile();
        let exec = p.entries.iter().find(|e| e.name == "cufftExecZ2Z").unwrap();
        assert_eq!(exec.bytes, 16 * 64);
        assert_eq!(p.count_of("cufftPlan1d"), 1);
        assert_eq!(p.count_of("cufftDestroy"), 1);
    }
}
