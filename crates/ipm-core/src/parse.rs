//! `ipm_parse` — the offline report generator.
//!
//! The paper (§II): "The XML file can then be used by the IPM parser
//! (`ipm_parse`) to produce a number of different output formats. The
//! parser can re-produce the banner, it can generate an HTML based webpage
//! ... and it can convert the IPM profile into the CUBE format." This
//! module is that tool as a library: banner regeneration, a self-contained
//! HTML report, and the CUBE conversion (see [`crate::cube`]).

use crate::aggregate::ClusterReport;
use crate::banner::{render_banner, render_cluster_banner};
use crate::export::{ChromeTrace, Export};
use crate::profile::RankProfile;
use crate::xml::{from_xml, trace_epoch_from_xml, trace_from_xml, XmlError};
use std::fmt::Write as _;

/// Parse one XML log and regenerate the single-rank banner.
pub fn banner_from_xml(xml: &str) -> Result<String, XmlError> {
    Ok(render_banner(&from_xml(xml)?, 0))
}

/// Parse one XML log per rank and produce the cluster banner.
pub fn cluster_banner_from_xml(xmls: &[String], nodes: usize) -> Result<String, XmlError> {
    let profiles = xmls
        .iter()
        .map(|x| from_xml(x))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(render_cluster_banner(
        &ClusterReport::from_profiles(profiles, nodes),
        0,
    ))
}

/// Rebuild the canonical export view from a set of XML logs (one per
/// rank): each rank carries its parsed profile, the embedded `<trace>`
/// records, and the recorded clock-alignment epoch, sorted by rank. Every
/// `ipm_parse` rendering goes through this one loader.
pub fn export_from_xml(xmls: &[String]) -> Result<Export, XmlError> {
    let mut parsed = Vec::new();
    for xml in xmls {
        let profile = from_xml(xml)?;
        let records = trace_from_xml(xml)?;
        let epoch = trace_epoch_from_xml(xml)?;
        parsed.push((profile, records, epoch));
    }
    parsed.sort_by_key(|(p, _, _)| p.rank);
    let mut export = Export::new();
    for (profile, records, epoch) in parsed {
        export = export.rank(profile).with_trace(records).with_epoch(epoch);
    }
    Ok(export)
}

/// Parse one XML log per rank and render the embedded `<trace>` sections
/// as Chrome trace-event JSON (the `ipm_parse trace` subcommand). Logs
/// written without tracing contribute a process entry with empty lanes.
/// Each log's recorded clock-alignment epoch is threaded through, so
/// merged multi-rank exports line their lanes up at `ts = 0`.
pub fn chrome_trace_from_xml(xmls: &[String]) -> Result<String, XmlError> {
    let export = export_from_xml(xmls)?;
    Ok(export.to(ChromeTrace).expect("ranks present"))
}

/// Parse one XML log per rank and render the embedded `<trace>` sections
/// as OTLP-shaped JSON (the `ipm_parse otlp` subcommand).
#[cfg(feature = "otlp")]
pub fn otlp_from_xml(xmls: &[String]) -> Result<String, XmlError> {
    let export = export_from_xml(xmls)?;
    Ok(export.to(crate::export::Otlp).expect("ranks present"))
}

/// Generate the HTML report page for a set of rank profiles — the format
/// "well-suited for permanent storage of the profiling report". The `Html`
/// backend of [`crate::export`] renders through this.
pub(crate) fn html_report(profiles: &[RankProfile], nodes: usize) -> String {
    let report = ClusterReport::from_profiles(profiles.to_vec(), nodes);
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n");
    let _ = writeln!(
        out,
        "<title>IPM profile: {}</title>",
        html_escape(&report.command)
    );
    out.push_str(
        "<style>body{font-family:monospace}table{border-collapse:collapse}\n\
         td,th{border:1px solid #999;padding:2px 8px;text-align:right}\n\
         th{background:#eee}td.name{text-align:left}</style></head><body>\n",
    );
    let _ = writeln!(out, "<h1>IPM profile</h1>");
    let _ = writeln!(
        out,
        "<p>command: <b>{}</b><br>tasks: {} on {} nodes<br>wallclock (max): {:.2} s<br>\
         %comm: {:.2}%<br>GPU utilization: {:.2}%</p>",
        html_escape(&report.command),
        report.nranks,
        report.nodes,
        report.wallclock_max,
        report.comm_fraction() * 100.0,
        report.gpu_utilization() * 100.0,
    );

    out.push_str("<h2>Events</h2>\n<table><tr><th>name</th><th>time [s]</th><th>count</th><th>%wall</th></tr>\n");
    for (name, stats) in report.totals_by_name() {
        let _ = writeln!(
            out,
            "<tr><td class=\"name\">{}</td><td>{:.2}</td><td>{}</td><td>{:.2}</td></tr>",
            html_escape(&name),
            stats.total,
            stats.count,
            100.0 * stats.total / report.wallclock_total.max(f64::MIN_POSITIVE),
        );
    }
    out.push_str("</table>\n");

    let kernels = report.kernel_shares();
    if !kernels.is_empty() {
        out.push_str("<h2>GPU kernels</h2>\n<table><tr><th>kernel</th><th>share of GPU time</th><th>imbalance</th></tr>\n");
        let imb = report.kernel_imbalance();
        for (k, share) in kernels {
            let i = imb
                .iter()
                .find(|(n, _)| n == &k)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            let _ = writeln!(
                out,
                "<tr><td class=\"name\">{}</td><td>{:.2}%</td><td>{:.1}%</td></tr>",
                html_escape(&k),
                share * 100.0,
                i * 100.0,
            );
        }
        out.push_str("</table>\n");
    }

    out.push_str("<h2>Per-rank wallclock</h2>\n<table><tr><th>rank</th><th>host</th><th>wallclock [s]</th><th>MPI [s]</th></tr>\n");
    for p in report.profiles() {
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td class=\"name\">{}</td><td>{:.2}</td><td>{:.2}</td></tr>",
            p.rank,
            html_escape(&p.host),
            p.wallclock,
            p.family_time(crate::profile::EventFamily::Mpi),
        );
    }
    out.push_str("</table>\n</body></html>\n");
    out
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileEntry;
    use crate::xml::to_xml;
    use ipm_sim_core::RunningStats;

    fn profile(rank: usize) -> RankProfile {
        let mut stats = RunningStats::new();
        stats.record(2.0);
        RankProfile {
            rank,
            nranks: 2,
            host: format!("dirac{rank:02}"),
            command: "./a.out <x>".to_owned(),
            wallclock: 10.0,
            regions: vec!["<program>".to_owned()],
            entries: vec![
                ProfileEntry {
                    name: "MPI_Allreduce".to_owned(),
                    detail: None,
                    bytes: 64,
                    region: 0,
                    stats,
                },
                ProfileEntry {
                    name: "@CUDA_EXEC_STRM00".to_owned(),
                    detail: Some("zgemm_kernel_NN".to_owned()),
                    bytes: 0,
                    region: 0,
                    stats,
                },
            ],
            dropped_events: 0,
            monitor: Default::default(),
        }
    }

    #[test]
    fn banner_regenerates_from_xml() {
        let xml = to_xml(&profile(0));
        let banner = banner_from_xml(&xml).unwrap();
        assert!(banner.contains("MPI_Allreduce"));
        assert!(banner.contains("##IPMv2.0"));
    }

    #[test]
    fn cluster_banner_from_multiple_xmls() {
        let xmls = vec![to_xml(&profile(0)), to_xml(&profile(1))];
        let banner = cluster_banner_from_xml(&xmls, 2).unwrap();
        assert!(banner.contains("mpi_tasks : 2 on 2 nodes"));
        assert!(banner.contains("MPI_Allreduce"));
    }

    #[test]
    fn html_report_is_wellformed_enough() {
        let html = html_report(&[profile(0), profile(1)], 2);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("zgemm_kernel_NN"));
        assert!(html.contains("&lt;x&gt;")); // command escaped
        assert!(html.ends_with("</html>\n"));
        // one row per rank in the per-rank table
        assert!(html.contains("dirac00") && html.contains("dirac01"));
    }

    #[test]
    fn bad_xml_propagates_error() {
        assert!(banner_from_xml("not xml").is_err());
    }

    #[test]
    fn chrome_trace_from_xml_logs_is_valid() {
        use crate::export::{validate_chrome_trace, Xml};
        use crate::trace::{TraceKind, TraceRecord};
        use std::sync::Arc;

        let mk = |rank: usize| {
            let trace = vec![
                TraceRecord {
                    kind: TraceKind::Call,
                    name: Arc::from("cudaLaunch"),
                    detail: None,
                    begin: 0.1 * rank as f64,
                    end: 0.1 * rank as f64 + 0.001,
                    bytes: 0,
                    region: 0,
                    stream: None,
                    corr: 1 + rank as u64,
                    agg: None,
                },
                TraceRecord {
                    kind: TraceKind::KernelExec,
                    name: Arc::from("@CUDA_EXEC_STRM00"),
                    detail: Some(Arc::from("zgemm_kernel_NN")),
                    begin: 0.1 * rank as f64 + 0.002,
                    end: 0.1 * rank as f64 + 0.05,
                    bytes: 0,
                    region: 0,
                    stream: Some(0),
                    corr: 1 + rank as u64,
                    agg: None,
                },
            ];
            Export::from_profile(profile(rank))
                .with_trace(trace)
                .to(Xml)
                .unwrap()
        };
        let json = chrome_trace_from_xml(&[mk(0), mk(1)]).unwrap();
        let stats = validate_chrome_trace(&json).expect("valid chrome trace");
        assert_eq!(stats.processes, 2);
        assert_eq!(stats.lanes, 4, "host + stream lane per rank");
        assert_eq!(stats.slices, 4);
        assert_eq!(stats.flow_pairs, 2);
    }

    #[cfg(feature = "otlp")]
    #[test]
    fn otlp_from_xml_logs_is_valid_and_linked() {
        use crate::export::{validate_otlp, Xml};
        use crate::trace::{TraceKind, TraceRecord};
        use std::sync::Arc;

        let mk = |rank: usize| {
            let trace = vec![
                TraceRecord {
                    kind: TraceKind::Call,
                    name: Arc::from("cudaLaunch"),
                    detail: None,
                    begin: 0.1,
                    end: 0.101,
                    bytes: 0,
                    region: 0,
                    stream: None,
                    corr: 5,
                    agg: None,
                },
                TraceRecord {
                    kind: TraceKind::KernelExec,
                    name: Arc::from("@CUDA_EXEC_STRM00"),
                    detail: Some(Arc::from("zgemm_kernel_NN")),
                    begin: 0.102,
                    end: 0.2,
                    bytes: 0,
                    region: 0,
                    stream: Some(0),
                    corr: 5,
                    agg: None,
                },
            ];
            Export::from_profile(profile(rank))
                .with_trace(trace)
                .to(Xml)
                .unwrap()
        };
        let json = otlp_from_xml(&[mk(0), mk(1)]).unwrap();
        let stats = validate_otlp(&json).expect("valid OTLP");
        assert_eq!(stats.resources, 2);
        assert_eq!(stats.spans, 4);
        assert_eq!(stats.links, 2, "one launch→kernel link per rank");
    }

    #[test]
    fn chrome_trace_from_xml_applies_recorded_epochs() {
        use crate::export::{validate_chrome_trace, Xml};
        use crate::trace::{TraceKind, TraceRecord};
        use std::sync::Arc;

        // two ranks whose clocks disagree: each records the shared cluster
        // instant at a different local time; after alignment both slices
        // start at the same exported ts
        let mk = |rank: usize, epoch: f64| {
            let trace = vec![TraceRecord {
                kind: TraceKind::Call,
                name: Arc::from("MPI_Allreduce"),
                detail: None,
                begin: epoch + 0.25,
                end: epoch + 0.5,
                bytes: 64,
                region: 0,
                stream: None,
                corr: 0,
                agg: None,
            }];
            Export::from_profile(profile(rank))
                .with_trace(trace)
                .with_epoch(epoch)
                .to(Xml)
                .unwrap()
        };
        let json = chrome_trace_from_xml(&[mk(0, 5.0), mk(1, 9.0)]).unwrap();
        validate_chrome_trace(&json).expect("valid chrome trace");
        assert_eq!(
            json.matches("\"ts\":250000,").count() + json.matches("\"ts\":250000}").count(),
            2,
            "both ranks' slices align at 0.25s past the epoch:\n{json}"
        );
    }
}
