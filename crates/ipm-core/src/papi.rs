//! The GPU counter component — the paper's §VI future work, implemented.
//!
//! "First, the integration of GPU hardware performance counters would be
//! useful for gaining more insight into kernel behavior than is possible
//! from timing information only. … IPM already supports Component PAPI and
//! it would thus be easy to leverage a GPU counter component."
//!
//! This module is that component: it reads the simulated device's
//! per-kernel counters (the interface NVIDIA had not yet documented in
//! 2011 — CUPTI shipped it later) and derives the roofline-style metrics a
//! performance analyst wants: achieved GFLOP/s, achieved bandwidth,
//! arithmetic intensity, and the bound resource.

use ipm_gpu_sim::{GpuRuntime, KernelCounters};
use ipm_sim_core::model::GpuComputeModel;
use std::fmt::Write as _;

/// Which device resource bounds a kernel, per the roofline model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundResource {
    Compute,
    Memory,
    /// No arithmetic model available (fixed-cost kernel) or negligible
    /// utilization of either resource.
    Unknown,
}

/// One kernel's counter-derived report row.
#[derive(Clone, Debug)]
pub struct CounterRow {
    pub kernel: String,
    pub counters: KernelCounters,
    /// Fraction of device peak flops achieved.
    pub compute_fraction: f64,
    /// Fraction of device peak bandwidth achieved.
    pub bandwidth_fraction: f64,
    pub bound: BoundResource,
}

/// The GPU counter component report for one context.
pub struct GpuCounterReport {
    pub rows: Vec<CounterRow>,
    pub model: GpuComputeModel,
}

impl GpuCounterReport {
    /// Collect counters from a runtime whose config enabled them.
    pub fn collect(rt: &GpuRuntime) -> Self {
        let model = rt.device().config().compute;
        let rows = rt
            .counters()
            .snapshot()
            .into_iter()
            .map(|(kernel, counters)| {
                let compute_fraction = counters.achieved_flops() / model.flops;
                let bandwidth_fraction = counters.achieved_bandwidth() / model.mem_bandwidth;
                let bound = if counters.flops == 0.0 && counters.dram_bytes == 0.0 {
                    BoundResource::Unknown
                } else if compute_fraction >= bandwidth_fraction {
                    BoundResource::Compute
                } else {
                    BoundResource::Memory
                };
                CounterRow {
                    kernel,
                    counters,
                    compute_fraction,
                    bandwidth_fraction,
                    bound,
                }
            })
            .collect();
        Self { rows, model }
    }

    /// Row for one kernel symbol.
    pub fn row(&self, kernel: &str) -> Option<&CounterRow> {
        self.rows.iter().find(|r| r.kernel == kernel)
    }

    /// Render the component report as a table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "kernel                                  inv      GFLOP/s   GB/s   AI(f/B)  %peak  bound\n",
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<38} {:>5} {:>11.1} {:>7.1} {:>8.2} {:>6.1}  {}",
                r.kernel,
                r.counters.invocations,
                r.counters.achieved_flops() / 1e9,
                r.counters.achieved_bandwidth() / 1e9,
                r.counters.arithmetic_intensity(),
                100.0 * r.compute_fraction.max(r.bandwidth_fraction),
                match r.bound {
                    BoundResource::Compute => "compute",
                    BoundResource::Memory => "memory",
                    BoundResource::Unknown => "-",
                },
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_gpu_sim::{launch_kernel, GpuConfig, Kernel, KernelCost, LaunchConfig};

    fn runtime() -> GpuRuntime {
        GpuRuntime::single(
            GpuConfig::dirac_node()
                .with_context_init(0.0)
                .with_counters(),
        )
    }

    #[test]
    fn roofline_kernels_report_exact_flops() {
        let rt = runtime();
        let k = Kernel::timed(
            "compute_heavy",
            KernelCost::Roofline {
                flops_per_thread: 100_000.0,
                bytes_per_thread: 4.0,
                efficiency: 0.5,
            },
        );
        launch_kernel(&rt, &k, LaunchConfig::simple(64u32, 128u32), &[]).unwrap();
        rt.thread_synchronize().unwrap();
        let report = GpuCounterReport::collect(&rt);
        let row = report.row("compute_heavy").expect("row");
        let threads = 64.0 * 128.0;
        assert!((row.counters.flops - 100_000.0 * threads).abs() < 1.0);
        assert!((row.counters.dram_bytes - 4.0 * threads).abs() < 1e-6);
        assert_eq!(row.counters.invocations, 1);
        assert_eq!(row.bound, BoundResource::Compute);
        // efficiency 0.5 → ~50% of peak achieved
        assert!(
            (row.compute_fraction - 0.5).abs() < 0.05,
            "{}",
            row.compute_fraction
        );
    }

    #[test]
    fn memory_bound_kernels_are_classified() {
        let rt = runtime();
        let k = Kernel::timed(
            "stream_copy",
            KernelCost::Roofline {
                flops_per_thread: 1.0,
                bytes_per_thread: 64.0,
                efficiency: 0.7,
            },
        );
        launch_kernel(&rt, &k, LaunchConfig::simple(512u32, 256u32), &[]).unwrap();
        rt.thread_synchronize().unwrap();
        let report = GpuCounterReport::collect(&rt);
        assert_eq!(
            report.row("stream_copy").unwrap().bound,
            BoundResource::Memory
        );
    }

    #[test]
    fn fixed_cost_kernels_report_time_only() {
        let rt = runtime();
        let k = Kernel::timed("opaque", KernelCost::Fixed(0.01));
        launch_kernel(&rt, &k, LaunchConfig::simple(8u32, 32u32), &[]).unwrap();
        rt.thread_synchronize().unwrap();
        let report = GpuCounterReport::collect(&rt);
        let row = report.row("opaque").unwrap();
        assert_eq!(row.counters.flops, 0.0);
        assert!(row.counters.device_time >= 0.01);
        assert_eq!(row.bound, BoundResource::Unknown);
        assert_eq!(row.counters.threads, 8 * 32);
    }

    #[test]
    fn disabled_counters_yield_empty_report() {
        let rt = GpuRuntime::single(GpuConfig::dirac_node().with_context_init(0.0));
        let k = Kernel::timed("k", KernelCost::Fixed(0.01));
        launch_kernel(&rt, &k, LaunchConfig::simple(1u32, 1u32), &[]).unwrap();
        rt.thread_synchronize().unwrap();
        assert!(GpuCounterReport::collect(&rt).rows.is_empty());
    }

    #[test]
    fn rendered_table_lists_kernels_and_bounds() {
        let rt = runtime();
        let k = Kernel::timed(
            "k1",
            KernelCost::Roofline {
                flops_per_thread: 500.0,
                bytes_per_thread: 1.0,
                efficiency: 0.6,
            },
        );
        launch_kernel(&rt, &k, LaunchConfig::simple(32u32, 64u32), &[]).unwrap();
        rt.thread_synchronize().unwrap();
        let text = GpuCounterReport::collect(&rt).render();
        assert!(text.contains("k1"));
        assert!(text.contains("compute"));
        assert!(text.contains("GFLOP/s"));
    }
}
