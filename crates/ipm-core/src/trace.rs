//! Streaming event trace: bounded per-rank rings and Perfetto export.
//!
//! The paper's IPM is strictly post-mortem: the hash table aggregates, the
//! banner summarizes, event ordering is lost. This module adds the
//! event-stream layer modern GPU telemetry systems build on:
//!
//! * [`TraceRing`] — a bounded, lock-striped ring capturing one compact
//!   [`TraceRecord`] per wrapped call, KTT completion, and
//!   `@CUDA_HOST_IDLE` interval, with **exact drop accounting**: the
//!   invariant `captured + dropped == emitted` holds at every instant,
//!   under concurrent emission, whether or not the ring overflowed.
//! * [`TraceRank`] — one rank's exporter input: its records, the device
//!   ground truth (`gpu-sim` [`ProfRecord`]s), and the clock-alignment
//!   epoch. Rendering lives in the unified [`crate::export`] pipeline
//!   (`Export::…​.to(ChromeTrace | Otlp)`); the validator and JSON parser
//!   are re-exported below so established `trace::` paths keep working.
//!
//! Retention is layered on by [`crate::compact`]: a [`CompactPolicy`] makes
//! a stripe past its high-water mark merge adjacent same-signature records
//! into summary records (so long runs keep timeline shape under the hard
//! cap), stripes maintain pre-sorted runs, drains k-way merge instead of
//! globally sorting, and the accounting invariant widens to
//! `captured + dropped + compacted_away == emitted`.

use crate::compact::{cmp_time, compact_records, CompactPolicy, TraceAgg};
use ipm_gpu_sim::ProfRecord;
#[cfg(not(loom))]
use std::cell::UnsafeCell;
#[cfg(not(loom))]
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// What a trace record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A host-side wrapped API call (the Fig. 2 anatomy).
    Call,
    /// A device-side kernel execution interval (KTT completion).
    KernelExec,
    /// An implicit host-blocking interval (`@CUDA_HOST_IDLE`).
    HostIdle,
}

impl TraceKind {
    /// Stable one-letter tag used by the XML encoding.
    pub fn tag(self) -> char {
        match self {
            TraceKind::Call => 'C',
            TraceKind::KernelExec => 'K',
            TraceKind::HostIdle => 'I',
        }
    }

    /// Inverse of [`TraceKind::tag`].
    pub fn from_tag(tag: char) -> Option<Self> {
        match tag {
            'C' => Some(TraceKind::Call),
            'K' => Some(TraceKind::KernelExec),
            'I' => Some(TraceKind::HostIdle),
            _ => None,
        }
    }
}

/// One captured event: a compact, fixed-shape record (interned names keep
/// it cheap to clone under the ring lock).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    pub kind: TraceKind,
    /// Registry name (`cudaMemcpy(D2H)`, `MPI_Allreduce`, …) or, for
    /// `KernelExec`, the `@CUDA_EXEC_STRMxx` pseudo-event name.
    pub name: Arc<str>,
    /// Kernel symbol for `KernelExec` records.
    pub detail: Option<Arc<str>>,
    /// Begin timestamp, virtual seconds.
    pub begin: f64,
    /// End timestamp, virtual seconds.
    pub end: f64,
    pub bytes: u64,
    /// Active user region at capture time.
    pub region: u16,
    /// Device stream for `KernelExec`; `None` means the host lane.
    pub stream: Option<u32>,
    /// Correlation id linking a `cudaLaunch` call to its kernel execution
    /// (0 when untracked).
    pub corr: u64,
    /// Present on summary records produced by compaction: the aggregate of
    /// every record merged in. `None` means a raw, single-event record.
    pub agg: Option<TraceAgg>,
}

impl TraceRecord {
    /// Whether this record is a compaction summary.
    pub fn is_summary(&self) -> bool {
        self.agg.is_some()
    }

    /// Original events this record represents: 1 for a raw record, the
    /// merged count for a summary. Σ `event_count` is the conserved
    /// quantity compaction never changes.
    pub fn event_count(&self) -> u64 {
        self.agg.map_or(1, |a| a.count)
    }

    /// Summed busy time this record represents, virtual seconds: its own
    /// duration for a raw record, the merged total for a summary (the
    /// summary's `end - begin` span also covers the gaps *between* merged
    /// events, so it is not the conserved quantity — this is).
    pub fn busy_total(&self) -> f64 {
        self.agg.map_or(self.end - self.begin, |a| a.total)
    }

    /// Longest individual duration this record represents (merge-ceiling
    /// checks compare against this, so a summary never smuggles a long
    /// slice past the policy).
    pub(crate) fn longest(&self) -> f64 {
        self.agg.map_or(self.end - self.begin, |a| a.max)
    }

    /// This record's aggregate, treating a raw record as a unit summary.
    pub(crate) fn agg_or_unit(&self) -> TraceAgg {
        self.agg.unwrap_or(TraceAgg {
            count: 1,
            total: self.end - self.begin,
            min: self.end - self.begin,
            max: self.end - self.begin,
            exemplar: (self.begin, self.end),
        })
    }
}

// ---------------------------------------------------------------------------
// The ring
// ---------------------------------------------------------------------------

/// Default total ring capacity (records, across all stripes).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;
/// Default number of lock stripes.
pub const DEFAULT_TRACE_SHARDS: usize = 8;

/// Minimal spin mutex for ring stripes. Uncontended acquire is one
/// compare-exchange and release one store — roughly half the cost of a
/// futex-backed mutex, which matters at the per-wrapped-call push rate.
/// Contention is rare (stripes × rotating writers) and critical sections
/// are tiny appends, so spinning on the exceptional conflict is cheap.
#[cfg(not(loom))]
struct SpinLock<T> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: the lock protocol below gives exclusive &mut access to `data`
// between a successful compare-exchange (Acquire) and the guard's release
// store, so sharing across threads is sound for Send payloads.
#[cfg(not(loom))]
unsafe impl<T: Send> Send for SpinLock<T> {}
#[cfg(not(loom))]
unsafe impl<T: Send> Sync for SpinLock<T> {}

// Model-checking flavour: a raw spin loop never yields to loom's cooperative
// scheduler, so under `--cfg loom` the stripe lock becomes a scheduler-aware
// mutex (blocked threads are unschedulable, keeping exploration finite).
// The guard API is identical, callers don't change.
#[cfg(loom)]
struct SpinLock<T> {
    inner: loom::sync::Mutex<T>,
}

#[cfg(loom)]
impl<T> SpinLock<T> {
    fn new(value: T) -> Self {
        Self {
            inner: loom::sync::Mutex::new(value),
        }
    }

    fn lock(&self) -> loom::sync::MutexGuard<'_, T> {
        self.inner.lock()
    }
}

#[cfg(not(loom))]
impl<T> SpinLock<T> {
    fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            data: UnsafeCell::new(value),
        }
    }

    fn lock(&self) -> SpinGuard<'_, T> {
        loop {
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return SpinGuard { lock: self };
            }
            while self.locked.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(not(loom))]
struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

#[cfg(not(loom))]
impl<T> std::ops::Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock
        unsafe { &*self.lock.data.get() }
    }
}

#[cfg(not(loom))]
impl<T> std::ops::DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the lock exclusively
        unsafe { &mut *self.lock.data.get() }
    }
}

#[cfg(not(loom))]
impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

/// A consistent sample of a ring's cumulative counters, taken with one
/// lock acquisition per stripe (see [`TraceRing::counters`]); always
/// satisfies `captured + dropped + compacted == emitted`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Records offered (the sum of the other three).
    pub emitted: u64,
    /// Records stored and still individually accounted for.
    pub captured: u64,
    /// Records refused because the ring was full.
    pub dropped: u64,
    /// Records absorbed into summaries by compaction passes.
    pub compacted: u64,
}

/// One lock stripe: its record buffer plus bookkeeping that only ever
/// changes under the stripe lock (so it needs no atomics of its own).
#[derive(Default)]
struct Shard {
    buf: Vec<TraceRecord>,
    /// Most records ever resident in this stripe.
    hwm: usize,
    /// Records this stripe has stored and still accounts for (cumulative,
    /// survives drains; a compaction pass moves the merged-away count from
    /// here to `compacted_away`, so `captured` always tallies records that
    /// were either drained raw or are resident — raw or inside a summary's
    /// `event_count`).
    captured: u64,
    /// Records this stripe has refused.
    dropped: u64,
    /// Records absorbed into summaries by compaction passes.
    compacted_away: u64,
    /// Set when an append broke the buffer's `(begin, end)` order; cleared
    /// by the sort that precedes a compaction pass or drain. Records are
    /// appended in virtual-time order per thread, so this trips only when
    /// stripe rotation interleaves writers — the common case is a cheap
    /// tail comparison and no sort at all.
    unsorted: bool,
    /// Amortization gate: the next compaction pass runs only once the
    /// buffer has grown past this, so a stripe full of unmergeable records
    /// doesn't pay an O(len) scan on every push.
    compact_gate: usize,
}

/// A bounded, lock-striped trace ring.
///
/// Writers pick a stripe round-robin (via a per-thread counter, so the hot
/// path takes no shared atomics at all) and append under that stripe's
/// lock only; a full ring drops the *new* record (launches must never
/// block on telemetry). Drop accounting is exact by construction: every
/// offer increments exactly one of the stripe's `captured` or `dropped`
/// counters under its lock, a compaction pass moves absorbed records from
/// `captured` to `compacted_away` under the same lock, and `emitted` is
/// *defined* as the sum of all three — so
/// `captured + dropped + compacted_away == emitted` holds at every
/// instant, under any interleaving (with compaction disabled,
/// `compacted_away` stays 0 and this is the PR 1 invariant).
pub struct TraceRing {
    shards: Vec<SpinLock<Shard>>,
    per_shard: usize,
    policy: CompactPolicy,
    /// Stripe rotation granularity (log2): writers stay on one stripe for
    /// `1 << rot_shift` consecutive pushes before moving on. (Unused by the
    /// loom build, whose stripe pick is pinned per modeled thread.)
    #[cfg_attr(loom, allow(dead_code))]
    rot_shift: u32,
}

impl TraceRing {
    /// Ring with `capacity` total record slots split over `shards` stripes
    /// and compaction disabled (a full stripe drops). Both are clamped to
    /// at least 1; per-stripe capacity rounds up so the usable total is
    /// never below `capacity`.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::with_policy(capacity, shards, CompactPolicy::DISABLED)
    }

    /// Ring with an explicit retention policy: once a stripe holds
    /// `policy.stripe_high_water` records, pushes first run a compaction
    /// pass merging adjacent same-signature records into summaries.
    pub fn with_policy(capacity: usize, shards: usize, policy: CompactPolicy) -> Self {
        let capacity = capacity.max(1);
        // power-of-two stripe count: the hot-path stripe pick is a mask,
        // not a division
        let shards = shards.max(1).min(capacity).next_power_of_two();
        let per_shard = capacity.div_ceil(shards);
        // sticky rotation (64-push blocks) keeps a writer's stripe
        // cache-warm, but only when blocks tile stripes exactly — otherwise
        // a sequential fill could hit a full stripe while others have room,
        // dropping before `capacity` records are resident
        let rot_shift = if per_shard.is_multiple_of(64) { 6 } else { 0 };
        Self {
            shards: (0..shards)
                .map(|_| SpinLock::new(Shard::default()))
                .collect(),
            per_shard,
            policy,
            rot_shift,
        }
    }

    /// Total record capacity.
    pub fn capacity(&self) -> usize {
        self.per_shard * self.shards.len()
    }

    /// The retention policy this ring was built with.
    pub fn policy(&self) -> CompactPolicy {
        self.policy
    }

    /// Round-robin stripe pick without shared state: each thread advances
    /// its own counter, rotating stripes every `1 << rot_shift` pushes.
    /// Sticky rotation keeps the stripe's lock and buffer tail cache-warm
    /// across a burst while still spreading one thread's records over all
    /// stripes (so a single rank thread can use the full capacity).
    #[cfg(not(loom))]
    fn shard_index(&self) -> usize {
        use std::cell::Cell;
        thread_local! {
            static ROBIN: Cell<usize> = const { Cell::new(0) };
        }
        let n = ROBIN.with(|c| {
            let v = c.get();
            c.set(v.wrapping_add(1));
            v
        });
        (n >> self.rot_shift) & (self.shards.len() - 1) // stripe count is a power of two
    }

    /// Model-checking flavour: the per-OS-thread round-robin counter would
    /// leak state across loom's replayed executions (the driver thread is
    /// reused), breaking schedule determinism. Pin each modeled thread to
    /// the stripe matching its loom index instead — the invariants under
    /// test are stripe-agnostic, and models force contention with a
    /// single-stripe ring anyway.
    #[cfg(loom)]
    fn shard_index(&self) -> usize {
        loom::managed_thread_index().unwrap_or(0) & (self.shards.len() - 1)
    }

    /// Offer one record; returns `false` (and counts a drop) if the ring
    /// is full. Never blocks beyond one stripe lock; the hot path is one
    /// uncontended lock and plain arithmetic under it. With a retention
    /// policy set, a stripe at its high-water mark first compacts in place
    /// (amortized by `compact_gate`, so unmergeable workloads degrade to
    /// the plain drop path rather than rescanning every push).
    pub fn push(&self, rec: TraceRecord) -> bool {
        let mut shard = self.shards[self.shard_index()].lock();
        if self.policy.is_enabled()
            && shard.buf.len() >= self.policy.stripe_high_water
            && shard.buf.len() >= shard.compact_gate
        {
            if shard.unsorted {
                shard.buf.sort_by(cmp_time);
                shard.unsorted = false;
            }
            let before = shard.buf.len();
            let removed = compact_records(&mut shard.buf, &self.policy) as u64;
            shard.captured -= removed;
            shard.compacted_away += removed;
            shard.compact_gate = shard.buf.len() + before / 8;
        }
        if shard.buf.len() >= self.per_shard {
            shard.dropped += 1;
            return false;
        }
        if shard
            .buf
            .last()
            .is_some_and(|last| cmp_time(&rec, last).is_lt())
        {
            shard.unsorted = true;
        }
        shard.buf.push(rec);
        shard.captured += 1;
        if shard.buf.len() > shard.hwm {
            shard.hwm = shard.buf.len();
        }
        true
    }

    /// Records offered so far (captured plus dropped plus compacted away).
    pub fn emitted(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let g = s.lock();
                g.captured + g.dropped + g.compacted_away
            })
            .sum()
    }

    /// All cumulative counters in one sweep, each stripe read under a
    /// single lock acquisition. Because every stripe's triple is sampled
    /// atomically (and `emitted` is their sum by definition), the returned
    /// snapshot satisfies `captured + dropped + compacted == emitted` even
    /// while writers and compaction passes are running — unlike combining
    /// the individual accessors, which sweep the stripes once each and can
    /// interleave with concurrent pushes.
    pub fn counters(&self) -> TraceCounters {
        let mut c = TraceCounters::default();
        for shard in &self.shards {
            let g = shard.lock();
            c.captured += g.captured;
            c.dropped += g.dropped;
            c.compacted += g.compacted_away;
            c.emitted += g.captured + g.dropped + g.compacted_away;
        }
        c
    }

    /// Records stored and still individually accounted for (drained
    /// records still count; records absorbed into summaries move to
    /// [`TraceRing::compacted_away`]).
    pub fn captured(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().captured).sum()
    }

    /// Records refused because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().dropped).sum()
    }

    /// Records absorbed into summary records by compaction passes. Their
    /// count and busy time live on in the summaries' [`TraceAgg`]s:
    /// Σ `event_count` over resident + drained records always equals
    /// `emitted - dropped`.
    pub fn compacted_away(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().compacted_away).sum()
    }

    /// Records currently resident.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().buf.len()).sum()
    }

    /// Whether no records are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of resident records: the sum of each stripe's own
    /// high-water mark. Stripes fill independently, so this is an upper
    /// bound on the instantaneous global maximum (and equal to it for the
    /// usual fill-then-drain lifecycle), never exceeding capacity.
    pub fn high_water_mark(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().hwm as u64).sum()
    }

    /// High-water memory footprint in bytes (record slots only).
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water_mark() * std::mem::size_of::<TraceRecord>() as u64
    }

    /// Remove and return every resident record in `(begin, end)` order.
    /// Frees ring space for further capture; counters are cumulative and
    /// unaffected. Each stripe hands over a pre-sorted run (sorting only
    /// if interleaved writers actually broke its order) and the runs are
    /// k-way merged — same record-for-record output as the old global
    /// sort, without re-sorting the already-ordered bulk on the consumer
    /// thread.
    pub fn drain(&self) -> Vec<TraceRecord> {
        let mut runs = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (mut run, unsorted) = {
                let mut g = shard.lock();
                (std::mem::take(&mut g.buf), std::mem::take(&mut g.unsorted))
            };
            if unsorted {
                run.sort_by(cmp_time);
            }
            runs.push(run);
        }
        crate::compact::merge_runs(runs)
    }

    /// Copy every resident record without removing it, in `(begin, end)`
    /// order (k-way merge of the per-stripe runs, like [`TraceRing::drain`]).
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        crate::compact::merge_runs(self.snapshot_runs())
    }

    /// Copy each stripe's resident records as its own sorted run, without
    /// removing anything. This is the merge input [`TraceRing::snapshot`]
    /// consumes; exposed so tests and benches can compare the k-way merge
    /// against a reference global sort, and so streaming consumers can
    /// merge incrementally.
    pub fn snapshot_runs(&self) -> Vec<Vec<TraceRecord>> {
        let mut runs = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (mut run, unsorted) = {
                let g = shard.lock();
                (g.buf.clone(), g.unsorted)
            };
            if unsorted {
                run.sort_by(cmp_time);
            }
            runs.push(run);
        }
        runs
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

/// One rank's inputs to the exporter.
#[derive(Clone, Debug, Default)]
pub struct TraceRank {
    pub rank: usize,
    /// Host name, shown in the Perfetto process label.
    pub host: String,
    /// This rank's clock-alignment epoch, virtual seconds: the shared
    /// cluster instant (first `MPI_Init` return) expressed on the rank's
    /// own clock. The exporter subtracts it from every timestamp, so
    /// merged multi-rank lanes line up at `ts = 0` even when ranks booted
    /// at different absolute times. 0 means unaligned (single-rank export
    /// or pre-epoch logs).
    pub epoch: f64,
    /// Host-side records (drained or snapshotted from the rank's ring).
    pub records: Vec<TraceRecord>,
    /// Device-side ground truth from the simulator profiler. When present,
    /// device lanes are built from these (they include memcpys and carry
    /// true durations); the ring's `KernelExec` records are used as the
    /// fallback when the profiler was disabled.
    pub prof: Vec<ProfRecord>,
}

// ---------------------------------------------------------------------------
// Moved items
// ---------------------------------------------------------------------------

// The Chrome exporter, its validator, and the JSON parser now live in the
// unified export pipeline (`crate::export::chrome`) and the shared JSON
// module (`crate::jsonw`); re-exported here so the established
// `ipm_core::trace::…` paths keep working.
#[allow(deprecated)]
pub use crate::compat::chrome_trace;
pub use crate::export::chrome::{validate_chrome_trace, TraceStats};
pub use crate::jsonw::{parse_json, Json};

#[cfg(test)]
mod tests {
    use super::*;

    fn call(name: &str, begin: f64, end: f64) -> TraceRecord {
        TraceRecord {
            kind: TraceKind::Call,
            name: Arc::from(name),
            detail: None,
            begin,
            end,
            bytes: 0,
            region: 0,
            stream: None,
            corr: 0,
            agg: None,
        }
    }

    #[test]
    fn ring_accounting_is_exact_without_overflow() {
        let ring = TraceRing::new(16, 4);
        for i in 0..10 {
            assert!(ring.push(call("x", i as f64, i as f64 + 0.5)));
        }
        assert_eq!(ring.emitted(), 10);
        assert_eq!(ring.captured(), 10);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.captured() + ring.dropped(), ring.emitted());
        assert_eq!(ring.len(), 10);
        assert_eq!(ring.high_water_mark(), 10);
    }

    #[test]
    fn full_ring_drops_and_accounts() {
        let ring = TraceRing::new(4, 2);
        let mut accepted = 0;
        for i in 0..20 {
            if ring.push(call("x", i as f64, i as f64)) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4);
        assert_eq!(ring.emitted(), 20);
        assert_eq!(ring.captured(), 4);
        assert_eq!(ring.dropped(), 16);
        assert_eq!(ring.captured() + ring.dropped(), ring.emitted());
    }

    #[test]
    fn drain_frees_space_and_sorts() {
        let ring = TraceRing::new(8, 3);
        for &t in &[3.0, 1.0, 2.0] {
            ring.push(call("x", t, t + 0.1));
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 3);
        assert!(drained.windows(2).all(|w| w[0].begin <= w[1].begin));
        assert!(ring.is_empty());
        // freed space accepts new records
        assert!(ring.push(call("y", 9.0, 9.5)));
        assert_eq!(ring.captured(), 4);
    }

    #[test]
    fn concurrent_emission_keeps_accounting_exact() {
        let ring = Arc::new(TraceRing::new(256, 8));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let ring = ring.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        ring.push(call("k", (t * 100 + i) as f64, (t * 100 + i) as f64 + 0.5));
                    }
                });
            }
        });
        assert_eq!(ring.emitted(), 800);
        assert_eq!(ring.captured() + ring.dropped(), 800);
        assert_eq!(ring.len() as u64, ring.captured());
    }

    #[test]
    fn compacting_ring_stays_under_high_water_and_conserves() {
        // single stripe so the high-water arithmetic is easy to reason about
        let ring = TraceRing::with_policy(1 << 12, 1, CompactPolicy::with_high_water(64));
        let n: u64 = 10_000;
        for i in 0..n {
            let t = i as f64 * 0.001;
            assert!(ring.push(call("cudaLaunch", t, t + 0.0005)), "never drops");
        }
        assert_eq!(ring.emitted(), n);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(
            ring.captured() + ring.dropped() + ring.compacted_away(),
            ring.emitted()
        );
        // the gate lets a stripe overshoot the high-water mark by at most
        // len/8 between passes; it must stay far below the raw count
        assert!(ring.len() <= 64 + 64 / 8 + 1, "resident: {}", ring.len());
        let resident = ring.drain();
        let events: u64 = resident.iter().map(TraceRecord::event_count).sum();
        assert_eq!(events, n, "per-signature event count conserved");
        let total: f64 = resident.iter().map(TraceRecord::busy_total).sum();
        assert!((total - n as f64 * 0.0005).abs() < 1e-6);
    }

    #[test]
    fn disabled_policy_is_the_old_drop_behavior() {
        let ring = TraceRing::with_policy(4, 2, CompactPolicy::DISABLED);
        for i in 0..20 {
            ring.push(call("x", i as f64, i as f64));
        }
        assert_eq!(ring.captured(), 4);
        assert_eq!(ring.dropped(), 16);
        assert_eq!(ring.compacted_away(), 0);
    }

    #[test]
    fn drain_merges_interleaved_stripes_in_time_order() {
        // multiple stripes, each receiving an ordered subsequence; drain
        // must interleave them globally by (begin, end)
        let ring = TraceRing::new(64, 4);
        for i in 0..32 {
            ring.push(call("x", i as f64, i as f64 + 0.5));
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 32);
        assert!(drained
            .windows(2)
            .all(|w| (w[0].begin, w[0].end) <= (w[1].begin, w[1].end)));
    }

    #[test]
    fn counters_sweep_matches_individual_accessors() {
        let ring = TraceRing::with_policy(8, 2, CompactPolicy::with_high_water(2));
        for i in 0..50 {
            ring.push(call("x", i as f64, i as f64 + 0.5));
        }
        let c = ring.counters();
        assert_eq!(c.emitted, ring.emitted());
        assert_eq!(c.captured, ring.captured());
        assert_eq!(c.dropped, ring.dropped());
        assert_eq!(c.compacted, ring.compacted_away());
        assert_eq!(c.captured + c.dropped + c.compacted, c.emitted);
    }

    #[test]
    fn counters_ledger_closes_while_writers_race() {
        // the single-lock-per-stripe sweep must return a closing ledger at
        // any instant, concurrent pushes notwithstanding
        let ring = Arc::new(TraceRing::with_policy(
            64,
            4,
            CompactPolicy::with_high_water(8),
        ));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let ring = ring.clone();
                scope.spawn(move || {
                    for i in 0..500 {
                        let b = (t * 500 + i) as f64;
                        ring.push(call("k", b, b + 0.5));
                    }
                });
            }
            let ring = ring.clone();
            scope.spawn(move || {
                for _ in 0..200 {
                    let c = ring.counters();
                    assert_eq!(
                        c.captured + c.dropped + c.compacted,
                        c.emitted,
                        "mid-run counter sweep tore"
                    );
                }
            });
        });
    }
}
