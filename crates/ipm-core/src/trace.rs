//! Streaming event trace: bounded per-rank rings and Perfetto export.
//!
//! The paper's IPM is strictly post-mortem: the hash table aggregates, the
//! banner summarizes, event ordering is lost. This module adds the
//! event-stream layer modern GPU telemetry systems build on:
//!
//! * [`TraceRing`] — a bounded, lock-striped ring capturing one compact
//!   [`TraceRecord`] per wrapped call, KTT completion, and
//!   `@CUDA_HOST_IDLE` interval, with **exact drop accounting**: the
//!   invariant `captured + dropped == emitted` holds at every instant,
//!   under concurrent emission, whether or not the ring overflowed.
//! * [`chrome_trace`] — merges host-side trace records with the device
//!   ground truth (`gpu-sim` [`ProfRecord`]s) into Chrome trace-event JSON
//!   loadable in Perfetto / `chrome://tracing`: one process per rank, a
//!   host lane plus one lane per stream, and flow arrows linking each
//!   `cudaLaunch` to the kernel execution it submitted (via the
//!   correlation id the runtime assigns at enqueue).
//! * [`validate_chrome_trace`] — a dependency-free JSON parser + structural
//!   validator (matched `B`/`E` pairs, per-lane timestamp monotonicity,
//!   resolved flow bindings) shared by tests and the `ipm_parse trace`
//!   subcommand.
//!
//! Retention is layered on by [`crate::compact`]: a [`CompactPolicy`] makes
//! a stripe past its high-water mark merge adjacent same-signature records
//! into summary records (so long runs keep timeline shape under the hard
//! cap), stripes maintain pre-sorted runs, drains k-way merge instead of
//! globally sorting, and the accounting invariant widens to
//! `captured + dropped + compacted_away == emitted`.

use crate::compact::{cmp_time, compact_records, CompactPolicy, TraceAgg};
use ipm_gpu_sim::{ProfKind, ProfRecord};
#[cfg(not(loom))]
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::fmt::Write as _;
#[cfg(not(loom))]
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// What a trace record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A host-side wrapped API call (the Fig. 2 anatomy).
    Call,
    /// A device-side kernel execution interval (KTT completion).
    KernelExec,
    /// An implicit host-blocking interval (`@CUDA_HOST_IDLE`).
    HostIdle,
}

impl TraceKind {
    /// Stable one-letter tag used by the XML encoding.
    pub fn tag(self) -> char {
        match self {
            TraceKind::Call => 'C',
            TraceKind::KernelExec => 'K',
            TraceKind::HostIdle => 'I',
        }
    }

    /// Inverse of [`TraceKind::tag`].
    pub fn from_tag(tag: char) -> Option<Self> {
        match tag {
            'C' => Some(TraceKind::Call),
            'K' => Some(TraceKind::KernelExec),
            'I' => Some(TraceKind::HostIdle),
            _ => None,
        }
    }
}

/// One captured event: a compact, fixed-shape record (interned names keep
/// it cheap to clone under the ring lock).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    pub kind: TraceKind,
    /// Registry name (`cudaMemcpy(D2H)`, `MPI_Allreduce`, …) or, for
    /// `KernelExec`, the `@CUDA_EXEC_STRMxx` pseudo-event name.
    pub name: Arc<str>,
    /// Kernel symbol for `KernelExec` records.
    pub detail: Option<Arc<str>>,
    /// Begin timestamp, virtual seconds.
    pub begin: f64,
    /// End timestamp, virtual seconds.
    pub end: f64,
    pub bytes: u64,
    /// Active user region at capture time.
    pub region: u16,
    /// Device stream for `KernelExec`; `None` means the host lane.
    pub stream: Option<u32>,
    /// Correlation id linking a `cudaLaunch` call to its kernel execution
    /// (0 when untracked).
    pub corr: u64,
    /// Present on summary records produced by compaction: the aggregate of
    /// every record merged in. `None` means a raw, single-event record.
    pub agg: Option<TraceAgg>,
}

impl TraceRecord {
    /// Whether this record is a compaction summary.
    pub fn is_summary(&self) -> bool {
        self.agg.is_some()
    }

    /// Original events this record represents: 1 for a raw record, the
    /// merged count for a summary. Σ `event_count` is the conserved
    /// quantity compaction never changes.
    pub fn event_count(&self) -> u64 {
        self.agg.map_or(1, |a| a.count)
    }

    /// Summed busy time this record represents, virtual seconds: its own
    /// duration for a raw record, the merged total for a summary (the
    /// summary's `end - begin` span also covers the gaps *between* merged
    /// events, so it is not the conserved quantity — this is).
    pub fn busy_total(&self) -> f64 {
        self.agg.map_or(self.end - self.begin, |a| a.total)
    }

    /// Longest individual duration this record represents (merge-ceiling
    /// checks compare against this, so a summary never smuggles a long
    /// slice past the policy).
    pub(crate) fn longest(&self) -> f64 {
        self.agg.map_or(self.end - self.begin, |a| a.max)
    }

    /// This record's aggregate, treating a raw record as a unit summary.
    pub(crate) fn agg_or_unit(&self) -> TraceAgg {
        self.agg.unwrap_or(TraceAgg {
            count: 1,
            total: self.end - self.begin,
            min: self.end - self.begin,
            max: self.end - self.begin,
            exemplar: (self.begin, self.end),
        })
    }
}

// ---------------------------------------------------------------------------
// The ring
// ---------------------------------------------------------------------------

/// Default total ring capacity (records, across all stripes).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;
/// Default number of lock stripes.
pub const DEFAULT_TRACE_SHARDS: usize = 8;

/// Minimal spin mutex for ring stripes. Uncontended acquire is one
/// compare-exchange and release one store — roughly half the cost of a
/// futex-backed mutex, which matters at the per-wrapped-call push rate.
/// Contention is rare (stripes × rotating writers) and critical sections
/// are tiny appends, so spinning on the exceptional conflict is cheap.
#[cfg(not(loom))]
struct SpinLock<T> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: the lock protocol below gives exclusive &mut access to `data`
// between a successful compare-exchange (Acquire) and the guard's release
// store, so sharing across threads is sound for Send payloads.
#[cfg(not(loom))]
unsafe impl<T: Send> Send for SpinLock<T> {}
#[cfg(not(loom))]
unsafe impl<T: Send> Sync for SpinLock<T> {}

// Model-checking flavour: a raw spin loop never yields to loom's cooperative
// scheduler, so under `--cfg loom` the stripe lock becomes a scheduler-aware
// mutex (blocked threads are unschedulable, keeping exploration finite).
// The guard API is identical, callers don't change.
#[cfg(loom)]
struct SpinLock<T> {
    inner: loom::sync::Mutex<T>,
}

#[cfg(loom)]
impl<T> SpinLock<T> {
    fn new(value: T) -> Self {
        Self {
            inner: loom::sync::Mutex::new(value),
        }
    }

    fn lock(&self) -> loom::sync::MutexGuard<'_, T> {
        self.inner.lock()
    }
}

#[cfg(not(loom))]
impl<T> SpinLock<T> {
    fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            data: UnsafeCell::new(value),
        }
    }

    fn lock(&self) -> SpinGuard<'_, T> {
        loop {
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return SpinGuard { lock: self };
            }
            while self.locked.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(not(loom))]
struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

#[cfg(not(loom))]
impl<T> std::ops::Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock
        unsafe { &*self.lock.data.get() }
    }
}

#[cfg(not(loom))]
impl<T> std::ops::DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the lock exclusively
        unsafe { &mut *self.lock.data.get() }
    }
}

#[cfg(not(loom))]
impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

/// A consistent sample of a ring's cumulative counters, taken with one
/// lock acquisition per stripe (see [`TraceRing::counters`]); always
/// satisfies `captured + dropped + compacted == emitted`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Records offered (the sum of the other three).
    pub emitted: u64,
    /// Records stored and still individually accounted for.
    pub captured: u64,
    /// Records refused because the ring was full.
    pub dropped: u64,
    /// Records absorbed into summaries by compaction passes.
    pub compacted: u64,
}

/// One lock stripe: its record buffer plus bookkeeping that only ever
/// changes under the stripe lock (so it needs no atomics of its own).
#[derive(Default)]
struct Shard {
    buf: Vec<TraceRecord>,
    /// Most records ever resident in this stripe.
    hwm: usize,
    /// Records this stripe has stored and still accounts for (cumulative,
    /// survives drains; a compaction pass moves the merged-away count from
    /// here to `compacted_away`, so `captured` always tallies records that
    /// were either drained raw or are resident — raw or inside a summary's
    /// `event_count`).
    captured: u64,
    /// Records this stripe has refused.
    dropped: u64,
    /// Records absorbed into summaries by compaction passes.
    compacted_away: u64,
    /// Set when an append broke the buffer's `(begin, end)` order; cleared
    /// by the sort that precedes a compaction pass or drain. Records are
    /// appended in virtual-time order per thread, so this trips only when
    /// stripe rotation interleaves writers — the common case is a cheap
    /// tail comparison and no sort at all.
    unsorted: bool,
    /// Amortization gate: the next compaction pass runs only once the
    /// buffer has grown past this, so a stripe full of unmergeable records
    /// doesn't pay an O(len) scan on every push.
    compact_gate: usize,
}

/// A bounded, lock-striped trace ring.
///
/// Writers pick a stripe round-robin (via a per-thread counter, so the hot
/// path takes no shared atomics at all) and append under that stripe's
/// lock only; a full ring drops the *new* record (launches must never
/// block on telemetry). Drop accounting is exact by construction: every
/// offer increments exactly one of the stripe's `captured` or `dropped`
/// counters under its lock, a compaction pass moves absorbed records from
/// `captured` to `compacted_away` under the same lock, and `emitted` is
/// *defined* as the sum of all three — so
/// `captured + dropped + compacted_away == emitted` holds at every
/// instant, under any interleaving (with compaction disabled,
/// `compacted_away` stays 0 and this is the PR 1 invariant).
pub struct TraceRing {
    shards: Vec<SpinLock<Shard>>,
    per_shard: usize,
    policy: CompactPolicy,
    /// Stripe rotation granularity (log2): writers stay on one stripe for
    /// `1 << rot_shift` consecutive pushes before moving on. (Unused by the
    /// loom build, whose stripe pick is pinned per modeled thread.)
    #[cfg_attr(loom, allow(dead_code))]
    rot_shift: u32,
}

impl TraceRing {
    /// Ring with `capacity` total record slots split over `shards` stripes
    /// and compaction disabled (a full stripe drops). Both are clamped to
    /// at least 1; per-stripe capacity rounds up so the usable total is
    /// never below `capacity`.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::with_policy(capacity, shards, CompactPolicy::DISABLED)
    }

    /// Ring with an explicit retention policy: once a stripe holds
    /// `policy.stripe_high_water` records, pushes first run a compaction
    /// pass merging adjacent same-signature records into summaries.
    pub fn with_policy(capacity: usize, shards: usize, policy: CompactPolicy) -> Self {
        let capacity = capacity.max(1);
        // power-of-two stripe count: the hot-path stripe pick is a mask,
        // not a division
        let shards = shards.max(1).min(capacity).next_power_of_two();
        let per_shard = capacity.div_ceil(shards);
        // sticky rotation (64-push blocks) keeps a writer's stripe
        // cache-warm, but only when blocks tile stripes exactly — otherwise
        // a sequential fill could hit a full stripe while others have room,
        // dropping before `capacity` records are resident
        let rot_shift = if per_shard.is_multiple_of(64) { 6 } else { 0 };
        Self {
            shards: (0..shards)
                .map(|_| SpinLock::new(Shard::default()))
                .collect(),
            per_shard,
            policy,
            rot_shift,
        }
    }

    /// Total record capacity.
    pub fn capacity(&self) -> usize {
        self.per_shard * self.shards.len()
    }

    /// The retention policy this ring was built with.
    pub fn policy(&self) -> CompactPolicy {
        self.policy
    }

    /// Round-robin stripe pick without shared state: each thread advances
    /// its own counter, rotating stripes every `1 << rot_shift` pushes.
    /// Sticky rotation keeps the stripe's lock and buffer tail cache-warm
    /// across a burst while still spreading one thread's records over all
    /// stripes (so a single rank thread can use the full capacity).
    #[cfg(not(loom))]
    fn shard_index(&self) -> usize {
        use std::cell::Cell;
        thread_local! {
            static ROBIN: Cell<usize> = const { Cell::new(0) };
        }
        let n = ROBIN.with(|c| {
            let v = c.get();
            c.set(v.wrapping_add(1));
            v
        });
        (n >> self.rot_shift) & (self.shards.len() - 1) // stripe count is a power of two
    }

    /// Model-checking flavour: the per-OS-thread round-robin counter would
    /// leak state across loom's replayed executions (the driver thread is
    /// reused), breaking schedule determinism. Pin each modeled thread to
    /// the stripe matching its loom index instead — the invariants under
    /// test are stripe-agnostic, and models force contention with a
    /// single-stripe ring anyway.
    #[cfg(loom)]
    fn shard_index(&self) -> usize {
        loom::managed_thread_index().unwrap_or(0) & (self.shards.len() - 1)
    }

    /// Offer one record; returns `false` (and counts a drop) if the ring
    /// is full. Never blocks beyond one stripe lock; the hot path is one
    /// uncontended lock and plain arithmetic under it. With a retention
    /// policy set, a stripe at its high-water mark first compacts in place
    /// (amortized by `compact_gate`, so unmergeable workloads degrade to
    /// the plain drop path rather than rescanning every push).
    pub fn push(&self, rec: TraceRecord) -> bool {
        let mut shard = self.shards[self.shard_index()].lock();
        if self.policy.is_enabled()
            && shard.buf.len() >= self.policy.stripe_high_water
            && shard.buf.len() >= shard.compact_gate
        {
            if shard.unsorted {
                shard.buf.sort_by(cmp_time);
                shard.unsorted = false;
            }
            let before = shard.buf.len();
            let removed = compact_records(&mut shard.buf, &self.policy) as u64;
            shard.captured -= removed;
            shard.compacted_away += removed;
            shard.compact_gate = shard.buf.len() + before / 8;
        }
        if shard.buf.len() >= self.per_shard {
            shard.dropped += 1;
            return false;
        }
        if shard
            .buf
            .last()
            .is_some_and(|last| cmp_time(&rec, last).is_lt())
        {
            shard.unsorted = true;
        }
        shard.buf.push(rec);
        shard.captured += 1;
        if shard.buf.len() > shard.hwm {
            shard.hwm = shard.buf.len();
        }
        true
    }

    /// Records offered so far (captured plus dropped plus compacted away).
    pub fn emitted(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let g = s.lock();
                g.captured + g.dropped + g.compacted_away
            })
            .sum()
    }

    /// All cumulative counters in one sweep, each stripe read under a
    /// single lock acquisition. Because every stripe's triple is sampled
    /// atomically (and `emitted` is their sum by definition), the returned
    /// snapshot satisfies `captured + dropped + compacted == emitted` even
    /// while writers and compaction passes are running — unlike combining
    /// the individual accessors, which sweep the stripes once each and can
    /// interleave with concurrent pushes.
    pub fn counters(&self) -> TraceCounters {
        let mut c = TraceCounters::default();
        for shard in &self.shards {
            let g = shard.lock();
            c.captured += g.captured;
            c.dropped += g.dropped;
            c.compacted += g.compacted_away;
            c.emitted += g.captured + g.dropped + g.compacted_away;
        }
        c
    }

    /// Records stored and still individually accounted for (drained
    /// records still count; records absorbed into summaries move to
    /// [`TraceRing::compacted_away`]).
    pub fn captured(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().captured).sum()
    }

    /// Records refused because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().dropped).sum()
    }

    /// Records absorbed into summary records by compaction passes. Their
    /// count and busy time live on in the summaries' [`TraceAgg`]s:
    /// Σ `event_count` over resident + drained records always equals
    /// `emitted - dropped`.
    pub fn compacted_away(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().compacted_away).sum()
    }

    /// Records currently resident.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().buf.len()).sum()
    }

    /// Whether no records are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of resident records: the sum of each stripe's own
    /// high-water mark. Stripes fill independently, so this is an upper
    /// bound on the instantaneous global maximum (and equal to it for the
    /// usual fill-then-drain lifecycle), never exceeding capacity.
    pub fn high_water_mark(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().hwm as u64).sum()
    }

    /// High-water memory footprint in bytes (record slots only).
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water_mark() * std::mem::size_of::<TraceRecord>() as u64
    }

    /// Remove and return every resident record in `(begin, end)` order.
    /// Frees ring space for further capture; counters are cumulative and
    /// unaffected. Each stripe hands over a pre-sorted run (sorting only
    /// if interleaved writers actually broke its order) and the runs are
    /// k-way merged — same record-for-record output as the old global
    /// sort, without re-sorting the already-ordered bulk on the consumer
    /// thread.
    pub fn drain(&self) -> Vec<TraceRecord> {
        let mut runs = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (mut run, unsorted) = {
                let mut g = shard.lock();
                (std::mem::take(&mut g.buf), std::mem::take(&mut g.unsorted))
            };
            if unsorted {
                run.sort_by(cmp_time);
            }
            runs.push(run);
        }
        crate::compact::merge_runs(runs)
    }

    /// Copy every resident record without removing it, in `(begin, end)`
    /// order (k-way merge of the per-stripe runs, like [`TraceRing::drain`]).
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        crate::compact::merge_runs(self.snapshot_runs())
    }

    /// Copy each stripe's resident records as its own sorted run, without
    /// removing anything. This is the merge input [`TraceRing::snapshot`]
    /// consumes; exposed so tests and benches can compare the k-way merge
    /// against a reference global sort, and so streaming consumers can
    /// merge incrementally.
    pub fn snapshot_runs(&self) -> Vec<Vec<TraceRecord>> {
        let mut runs = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (mut run, unsorted) = {
                let g = shard.lock();
                (g.buf.clone(), g.unsorted)
            };
            if unsorted {
                run.sort_by(cmp_time);
            }
            runs.push(run);
        }
        runs
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

/// One rank's inputs to the exporter.
#[derive(Clone, Debug, Default)]
pub struct TraceRank {
    pub rank: usize,
    /// Host name, shown in the Perfetto process label.
    pub host: String,
    /// This rank's clock-alignment epoch, virtual seconds: the shared
    /// cluster instant (first `MPI_Init` return) expressed on the rank's
    /// own clock. The exporter subtracts it from every timestamp, so
    /// merged multi-rank lanes line up at `ts = 0` even when ranks booted
    /// at different absolute times. 0 means unaligned (single-rank export
    /// or pre-epoch logs).
    pub epoch: f64,
    /// Host-side records (drained or snapshotted from the rank's ring).
    pub records: Vec<TraceRecord>,
    /// Device-side ground truth from the simulator profiler. When present,
    /// device lanes are built from these (they include memcpys and carry
    /// true durations); the ring's `KernelExec` records are used as the
    /// fallback when the profiler was disabled.
    pub prof: Vec<ProfRecord>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds for the `ts` field (Chrome's unit).
fn us(t: f64) -> f64 {
    t * 1e6
}

/// An interval destined for one lane.
struct LaneSlice {
    name: String,
    begin: f64,
    end: f64,
    args: Vec<(&'static str, String)>,
    /// Flow id to terminate at this slice's begin (0 = none).
    flow_in: u64,
    /// Flow id to originate at this slice's begin (0 = none).
    flow_out: u64,
    /// Compaction summary: emitted as a Chrome `X` (complete) event rather
    /// than a `B`/`E` pair. Summaries span `first_begin..last_end` of an
    /// interleaved subsequence (writers rotate ring stripes, each stripe
    /// compacts its own subsequence), so two stripes' summaries can
    /// *partially* overlap — something `B`/`E` nesting cannot express. An
    /// `X` event carries its own `dur` and takes no part in the nesting
    /// stack, so overlap is harmless.
    summary: bool,
}

/// Emit one lane's slices: raw records as properly nested `B`/`E` pairs,
/// summaries as self-contained `X` events (JSON object strings). Events
/// are produced in `(begin, -end)` order and every event's `ts` is either
/// the current slice's begin or a pending end ≤ it, so timestamps are
/// non-decreasing even when summary spans partially overlap raw slices or
/// each other.
fn emit_lane(pid: usize, tid: u32, mut slices: Vec<LaneSlice>, out: &mut Vec<String>) {
    slices.sort_by(|a, b| {
        a.begin
            .partial_cmp(&b.begin)
            .expect("finite timestamps")
            .then(b.end.partial_cmp(&a.end).expect("finite timestamps"))
    });
    // stack of pending end timestamps with their slice names
    let mut stack: Vec<(f64, String)> = Vec::new();
    let close = |stack: &mut Vec<(f64, String)>, upto: f64, out: &mut Vec<String>| {
        while let Some((end, _)) = stack.last() {
            if *end <= upto {
                let (end, name) = stack.pop().expect("checked non-empty");
                out.push(format!(
                    "{{\"ph\":\"E\",\"name\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{}}}",
                    esc(&name),
                    pid,
                    tid,
                    us(end)
                ));
            } else {
                break;
            }
        }
    };
    for s in slices {
        close(&mut stack, s.begin, out);
        if s.flow_in != 0 {
            out.push(format!(
                "{{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"launch\",\"name\":\"launch\",\"id\":{},\"pid\":{},\"tid\":{},\"ts\":{}}}",
                s.flow_in, pid, tid, us(s.begin)
            ));
        }
        if s.flow_out != 0 {
            out.push(format!(
                "{{\"ph\":\"s\",\"cat\":\"launch\",\"name\":\"launch\",\"id\":{},\"pid\":{},\"tid\":{},\"ts\":{}}}",
                s.flow_out, pid, tid, us(s.begin)
            ));
        }
        let mut args = String::new();
        for (i, (k, v)) in s.args.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            let _ = write!(args, "\"{}\":{}", k, v);
        }
        if s.summary {
            out.push(format!(
                "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
                esc(&s.name),
                pid,
                tid,
                us(s.begin),
                us(s.end - s.begin),
                args
            ));
        } else {
            out.push(format!(
                "{{\"ph\":\"B\",\"name\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{},\"args\":{{{}}}}}",
                esc(&s.name),
                pid,
                tid,
                us(s.begin),
                args
            ));
            stack.push((s.end, s.name));
        }
    }
    close(&mut stack, f64::INFINITY, out);
}

/// Append the aggregate fields of a summary record to a slice's args, so
/// Perfetto shows how many events a compacted slice stands for.
fn summary_args(t: &TraceRecord, args: &mut Vec<(&'static str, String)>) {
    if let Some(a) = t.agg {
        args.push(("count", a.count.to_string()));
        args.push(("total_us", format!("{}", us(a.total))));
        args.push(("min_us", format!("{}", us(a.min))));
        args.push(("max_us", format!("{}", us(a.max))));
    }
}

fn meta_event(pid: usize, tid: Option<u32>, which: &str, label: &str) -> String {
    match tid {
        Some(tid) => format!(
            "{{\"ph\":\"M\",\"name\":\"{}\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            which,
            pid,
            tid,
            esc(label)
        ),
        None => format!(
            "{{\"ph\":\"M\",\"name\":\"{}\",\"pid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            which,
            pid,
            esc(label)
        ),
    }
}

/// Render ranks into Chrome trace-event JSON (the `{"traceEvents": [...]}`
/// object form). One process per rank; `tid 0` is the host lane and
/// `tid 1 + s` is device stream `s`. `cudaLaunch` slices originate flow
/// arrows (`ph:"s"`) that terminate (`ph:"f"`) at the kernel slice with the
/// same correlation id. Raw records render as `B`/`E` pairs; compaction
/// summaries render as `X` (complete) events carrying their aggregate in
/// `args`, since summaries from different ring stripes may partially
/// overlap in time.
pub fn chrome_trace(ranks: &[TraceRank]) -> String {
    let mut events: Vec<String> = Vec::new();
    for r in ranks {
        let pid = r.rank;
        let label = if r.host.is_empty() {
            format!("rank {}", r.rank)
        } else {
            format!("rank {} ({})", r.rank, r.host)
        };
        events.push(meta_event(pid, None, "process_name", &label));
        events.push(meta_event(pid, Some(0), "thread_name", "host"));

        // Which correlation ids have a device-side slice to land on?
        let use_prof = !r.prof.is_empty();
        let mut device_corrs: std::collections::HashSet<u64> = std::collections::HashSet::new();
        if use_prof {
            device_corrs.extend(r.prof.iter().filter(|p| p.corr != 0).map(|p| p.corr));
        } else {
            device_corrs.extend(
                r.records
                    .iter()
                    .filter(|t| t.kind == TraceKind::KernelExec && t.corr != 0)
                    .map(|t| t.corr),
            );
        }

        // Host lane: wrapped calls + host-idle intervals.
        let host_slices: Vec<LaneSlice> = r
            .records
            .iter()
            .filter(|t| t.kind != TraceKind::KernelExec)
            .map(|t| {
                let mut args: Vec<(&'static str, String)> = Vec::new();
                if t.bytes > 0 {
                    args.push(("bytes", t.bytes.to_string()));
                }
                args.push(("region", t.region.to_string()));
                summary_args(t, &mut args);
                LaneSlice {
                    name: t.name.to_string(),
                    begin: t.begin - r.epoch,
                    end: t.end - r.epoch,
                    args,
                    flow_in: 0,
                    flow_out: if t.corr != 0 && device_corrs.contains(&t.corr) {
                        t.corr
                    } else {
                        0
                    },
                    summary: t.is_summary(),
                }
            })
            .collect();
        emit_lane(pid, 0, host_slices, &mut events);

        // Device lanes: one per stream, from the profiler ground truth when
        // available, otherwise from KTT KernelExec records.
        let mut lanes: HashMap<u32, Vec<LaneSlice>> = HashMap::new();
        if use_prof {
            for p in &r.prof {
                let args = vec![("gputime_us", format!("{}", p.gputime * 1e6))];
                lanes.entry(p.stream.0).or_default().push(LaneSlice {
                    name: p.method.clone(),
                    begin: p.start - r.epoch,
                    end: p.start + p.gputime - r.epoch,
                    args,
                    flow_in: if p.kind == ProfKind::Kernel {
                        p.corr
                    } else {
                        0
                    },
                    flow_out: 0,
                    summary: false,
                });
            }
        } else {
            for t in r.records.iter().filter(|t| t.kind == TraceKind::KernelExec) {
                let stream = t.stream.unwrap_or(0);
                let name = t
                    .detail
                    .as_deref()
                    .map(str::to_owned)
                    .unwrap_or_else(|| t.name.to_string());
                let mut args = vec![("region", t.region.to_string())];
                summary_args(t, &mut args);
                lanes.entry(stream).or_default().push(LaneSlice {
                    name,
                    begin: t.begin - r.epoch,
                    end: t.end - r.epoch,
                    args,
                    flow_in: t.corr,
                    flow_out: 0,
                    summary: t.is_summary(),
                });
            }
        }
        let mut stream_ids: Vec<u32> = lanes.keys().copied().collect();
        stream_ids.sort_unstable();
        for s in stream_ids {
            let tid = 1 + s;
            events.push(meta_event(
                pid,
                Some(tid),
                "thread_name",
                &format!("stream {s}"),
            ));
            emit_lane(
                pid,
                tid,
                lanes.remove(&s).expect("key present"),
                &mut events,
            );
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (validation only; no external deps available)
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // advance one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Parse a JSON document (strict enough for validation; rejects trailing
/// garbage).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Structural facts about a validated trace, for assertions and the CLI
/// summary line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Completed `B`/`E` slice pairs.
    pub slices: usize,
    /// Distinct processes (ranks).
    pub processes: usize,
    /// Distinct `(pid, tid)` lanes carrying at least one slice.
    pub lanes: usize,
    /// Flow arrows with both a start (`s`) and a finish (`f`) binding.
    pub flow_pairs: usize,
}

/// Validate Chrome trace-event JSON structurally: the document parses, every
/// `B` has a matching `E` (same lane, same name, LIFO order), every `X`
/// carries a name and a finite non-negative `dur`, timestamps are monotone
/// non-decreasing per lane, and every flow start resolves to a flow finish
/// (and vice versa). Returns summary stats on success (`X` events count as
/// completed slices).
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;

    let mut stacks: HashMap<(u64, u64), Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut lanes_with_slices: std::collections::HashSet<(u64, u64)> =
        std::collections::HashSet::new();
    let mut processes: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut flow_starts: HashMap<u64, usize> = HashMap::new();
    let mut flow_finishes: HashMap<u64, usize> = HashMap::new();
    let mut slices = 0usize;

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing pid"))? as u64;
        processes.insert(pid);
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let tid = ev
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing tid"))? as u64;
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing ts"))?;
        if !ts.is_finite() {
            return Err(format!("event {i}: non-finite ts"));
        }
        let lane = (pid, tid);
        if let Some(prev) = last_ts.get(&lane) {
            if ts < *prev {
                return Err(format!(
                    "event {i}: lane ({pid},{tid}) timestamp regressed {prev} -> {ts}"
                ));
            }
        }
        last_ts.insert(lane, ts);
        match ph {
            "B" => {
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("event {i}: B without name"))?;
                stacks.entry(lane).or_default().push(name.to_owned());
                lanes_with_slices.insert(lane);
            }
            "E" => {
                let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
                let stack = stacks.entry(lane).or_default();
                match stack.pop() {
                    Some(open) if name.is_empty() || open == name => slices += 1,
                    Some(open) => {
                        return Err(format!(
                            "event {i}: E '{name}' does not match open B '{open}' on lane ({pid},{tid})"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "event {i}: E '{name}' with no open B on lane ({pid},{tid})"
                        ))
                    }
                }
            }
            "s" => {
                let id = ev
                    .get("id")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: flow start without id"))?
                    as u64;
                *flow_starts.entry(id).or_default() += 1;
            }
            "f" => {
                let id = ev
                    .get("id")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: flow finish without id"))?
                    as u64;
                *flow_finishes.entry(id).or_default() += 1;
            }
            "X" => {
                ev.get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("event {i}: X without name"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: X without dur"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i}: X with bad dur {dur}"));
                }
                slices += 1;
                lanes_with_slices.insert(lane);
            }
            "i" | "C" => {} // tolerated, unused by our exporter
            other => return Err(format!("event {i}: unknown phase '{other}'")),
        }
    }

    for (lane, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "lane ({},{}) has {} unclosed B events (first: '{}')",
                lane.0,
                lane.1,
                stack.len(),
                stack[0]
            ));
        }
    }
    let mut flow_pairs = 0usize;
    for (id, n) in &flow_starts {
        match flow_finishes.get(id) {
            Some(m) if m == n => flow_pairs += n,
            _ => {
                return Err(format!(
                    "flow id {id}: {n} starts without matching finishes"
                ))
            }
        }
    }
    for id in flow_finishes.keys() {
        if !flow_starts.contains_key(id) {
            return Err(format!("flow id {id}: finish without start"));
        }
    }

    Ok(TraceStats {
        slices,
        processes: processes.len(),
        lanes: lanes_with_slices.len(),
        flow_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_gpu_sim::StreamId;

    fn call(name: &str, begin: f64, end: f64) -> TraceRecord {
        TraceRecord {
            kind: TraceKind::Call,
            name: Arc::from(name),
            detail: None,
            begin,
            end,
            bytes: 0,
            region: 0,
            stream: None,
            corr: 0,
            agg: None,
        }
    }

    #[test]
    fn ring_accounting_is_exact_without_overflow() {
        let ring = TraceRing::new(16, 4);
        for i in 0..10 {
            assert!(ring.push(call("x", i as f64, i as f64 + 0.5)));
        }
        assert_eq!(ring.emitted(), 10);
        assert_eq!(ring.captured(), 10);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.captured() + ring.dropped(), ring.emitted());
        assert_eq!(ring.len(), 10);
        assert_eq!(ring.high_water_mark(), 10);
    }

    #[test]
    fn full_ring_drops_and_accounts() {
        let ring = TraceRing::new(4, 2);
        let mut accepted = 0;
        for i in 0..20 {
            if ring.push(call("x", i as f64, i as f64)) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4);
        assert_eq!(ring.emitted(), 20);
        assert_eq!(ring.captured(), 4);
        assert_eq!(ring.dropped(), 16);
        assert_eq!(ring.captured() + ring.dropped(), ring.emitted());
    }

    #[test]
    fn drain_frees_space_and_sorts() {
        let ring = TraceRing::new(8, 3);
        for &t in &[3.0, 1.0, 2.0] {
            ring.push(call("x", t, t + 0.1));
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 3);
        assert!(drained.windows(2).all(|w| w[0].begin <= w[1].begin));
        assert!(ring.is_empty());
        // freed space accepts new records
        assert!(ring.push(call("y", 9.0, 9.5)));
        assert_eq!(ring.captured(), 4);
    }

    #[test]
    fn concurrent_emission_keeps_accounting_exact() {
        let ring = Arc::new(TraceRing::new(256, 8));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let ring = ring.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        ring.push(call("k", (t * 100 + i) as f64, (t * 100 + i) as f64 + 0.5));
                    }
                });
            }
        });
        assert_eq!(ring.emitted(), 800);
        assert_eq!(ring.captured() + ring.dropped(), 800);
        assert_eq!(ring.len() as u64, ring.captured());
    }

    #[test]
    fn compacting_ring_stays_under_high_water_and_conserves() {
        // single stripe so the high-water arithmetic is easy to reason about
        let ring = TraceRing::with_policy(1 << 12, 1, CompactPolicy::with_high_water(64));
        let n: u64 = 10_000;
        for i in 0..n {
            let t = i as f64 * 0.001;
            assert!(ring.push(call("cudaLaunch", t, t + 0.0005)), "never drops");
        }
        assert_eq!(ring.emitted(), n);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(
            ring.captured() + ring.dropped() + ring.compacted_away(),
            ring.emitted()
        );
        // the gate lets a stripe overshoot the high-water mark by at most
        // len/8 between passes; it must stay far below the raw count
        assert!(ring.len() <= 64 + 64 / 8 + 1, "resident: {}", ring.len());
        let resident = ring.drain();
        let events: u64 = resident.iter().map(TraceRecord::event_count).sum();
        assert_eq!(events, n, "per-signature event count conserved");
        let total: f64 = resident.iter().map(TraceRecord::busy_total).sum();
        assert!((total - n as f64 * 0.0005).abs() < 1e-6);
    }

    #[test]
    fn disabled_policy_is_the_old_drop_behavior() {
        let ring = TraceRing::with_policy(4, 2, CompactPolicy::DISABLED);
        for i in 0..20 {
            ring.push(call("x", i as f64, i as f64));
        }
        assert_eq!(ring.captured(), 4);
        assert_eq!(ring.dropped(), 16);
        assert_eq!(ring.compacted_away(), 0);
    }

    #[test]
    fn drain_merges_interleaved_stripes_in_time_order() {
        // multiple stripes, each receiving an ordered subsequence; drain
        // must interleave them globally by (begin, end)
        let ring = TraceRing::new(64, 4);
        for i in 0..32 {
            ring.push(call("x", i as f64, i as f64 + 0.5));
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 32);
        assert!(drained
            .windows(2)
            .all(|w| (w[0].begin, w[0].end) <= (w[1].begin, w[1].end)));
    }

    #[test]
    fn multi_stripe_compacted_burst_exports_valid_chrome_trace() {
        // Writers rotate stripes, so with the default 8 stripes a
        // same-signature burst lands as interleaved subsequences; each
        // stripe compacts its own subsequence into summaries whose time
        // spans partially overlap across stripes. The exporter must render
        // those as X events — B/E nesting cannot express partial overlap
        // (regression: E timestamps regressed and the validator rejected
        // the exporter's own output).
        let ring = TraceRing::with_policy(
            1 << 12,
            DEFAULT_TRACE_SHARDS,
            CompactPolicy::with_high_water(16),
        );
        for i in 0..2000 {
            let t = i as f64 * 1e-3;
            assert!(ring.push(call("cudaLaunch", t, t + 5e-4)));
        }
        assert!(ring.compacted_away() > 0, "burst must compact");
        let records = ring.drain();
        let summaries: Vec<&TraceRecord> = records.iter().filter(|r| r.is_summary()).collect();
        assert!(
            summaries
                .windows(2)
                .any(|w| w[1].begin < w[0].end && w[0].begin < w[1].end),
            "want partially overlapping summaries from several stripes"
        );
        let rank = TraceRank {
            rank: 0,
            host: String::new(),
            epoch: 0.0,
            records,
            prof: Vec::new(),
        };
        let json = chrome_trace(&[rank]);
        let stats = validate_chrome_trace(&json).expect("multi-stripe compacted export invalid");
        assert!(stats.slices > 0);
    }

    #[test]
    fn counters_sweep_matches_individual_accessors() {
        let ring = TraceRing::with_policy(8, 2, CompactPolicy::with_high_water(2));
        for i in 0..50 {
            ring.push(call("x", i as f64, i as f64 + 0.5));
        }
        let c = ring.counters();
        assert_eq!(c.emitted, ring.emitted());
        assert_eq!(c.captured, ring.captured());
        assert_eq!(c.dropped, ring.dropped());
        assert_eq!(c.compacted, ring.compacted_away());
        assert_eq!(c.captured + c.dropped + c.compacted, c.emitted);
    }

    #[test]
    fn counters_ledger_closes_while_writers_race() {
        // the single-lock-per-stripe sweep must return a closing ledger at
        // any instant, concurrent pushes notwithstanding
        let ring = Arc::new(TraceRing::with_policy(
            64,
            4,
            CompactPolicy::with_high_water(8),
        ));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let ring = ring.clone();
                scope.spawn(move || {
                    for i in 0..500 {
                        let b = (t * 500 + i) as f64;
                        ring.push(call("k", b, b + 0.5));
                    }
                });
            }
            let ring = ring.clone();
            scope.spawn(move || {
                for _ in 0..200 {
                    let c = ring.counters();
                    assert_eq!(
                        c.captured + c.dropped + c.compacted,
                        c.emitted,
                        "mid-run counter sweep tore"
                    );
                }
            });
        });
    }

    #[test]
    fn epoch_shifts_exported_timestamps() {
        let rank = TraceRank {
            rank: 0,
            host: String::new(),
            epoch: 10.0,
            records: vec![call("cudaMalloc", 10.5, 11.0)],
            prof: Vec::new(),
        };
        let json = chrome_trace(&[rank]);
        validate_chrome_trace(&json).expect("valid trace");
        // 10.5s on the rank clock is 0.5s after the epoch -> ts 500000 us
        assert!(json.contains("\"ts\":500000"), "{json}");
        assert!(!json.contains("\"ts\":10500000"), "{json}");
    }

    #[test]
    fn summary_slices_carry_count_args() {
        let mut rec = call("cudaLaunch", 1.0, 3.0);
        rec.agg = Some(TraceAgg {
            count: 17,
            total: 1.25,
            min: 0.05,
            max: 0.2,
            exemplar: (1.4, 1.6),
        });
        let rank = TraceRank {
            rank: 0,
            host: String::new(),
            epoch: 0.0,
            records: vec![rec],
            prof: Vec::new(),
        };
        let json = chrome_trace(&[rank]);
        validate_chrome_trace(&json).expect("valid trace");
        assert!(json.contains("\"count\":17"), "{json}");
        assert!(json.contains("\"total_us\":1250000"), "{json}");
    }

    #[test]
    fn chrome_trace_is_valid_and_has_flows() {
        let mut launch = call("cudaLaunch", 1.0, 1.00001);
        launch.corr = 42;
        let mut exec = TraceRecord {
            kind: TraceKind::KernelExec,
            name: Arc::from("@CUDA_EXEC_STRM00"),
            detail: Some(Arc::from("square")),
            begin: 1.0001,
            end: 2.15,
            bytes: 0,
            region: 0,
            stream: Some(0),
            corr: 42,
            agg: None,
        };
        let rank = TraceRank {
            rank: 0,
            host: "dirac00".to_owned(),
            epoch: 0.0,
            records: vec![
                call("cudaMalloc", 0.0, 0.5),
                launch.clone(),
                call("cudaMemcpy(D2H)", 2.2, 2.3),
            ],
            prof: Vec::new(),
        };
        let mut with_exec = rank.clone();
        with_exec.records.push(exec.clone());
        let json = chrome_trace(&[with_exec]);
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.processes, 1);
        assert_eq!(stats.lanes, 2, "host lane + one stream lane");
        assert_eq!(stats.slices, 4);
        assert_eq!(stats.flow_pairs, 1);

        // prof records take precedence for device lanes when present
        exec.corr = 0;
        launch.corr = 7;
        let prof_rank = TraceRank {
            rank: 1,
            host: String::new(),
            epoch: 0.0,
            records: vec![launch],
            prof: vec![ProfRecord {
                method: "square".to_owned(),
                kind: ProfKind::Kernel,
                stream: StreamId::DEFAULT,
                start: 1.0002,
                gputime: 1.15,
                cputime: 1e-5,
                corr: 7,
            }],
        };
        let json = chrome_trace(&[prof_rank]);
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.flow_pairs, 1);
    }

    #[test]
    fn nested_and_adjacent_slices_emit_proper_b_e() {
        // outer call wrapping an inner call, then an adjacent one
        let rank = TraceRank {
            rank: 0,
            host: String::new(),
            epoch: 0.0,
            records: vec![
                call("cublasDgemm", 0.0, 1.0),
                call("cudaLaunch", 0.2, 0.4),
                call("cudaFree", 1.0, 1.1),
            ],
            prof: Vec::new(),
        };
        let json = chrome_trace(&[rank]);
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.slices, 3);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        // unmatched B
        let bad = r#"{"traceEvents":[{"ph":"B","name":"x","pid":0,"tid":0,"ts":1}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("unclosed"));
        // regressed timestamps
        let bad = r#"{"traceEvents":[
            {"ph":"B","name":"x","pid":0,"tid":0,"ts":5},
            {"ph":"E","name":"x","pid":0,"tid":0,"ts":1}]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("regressed"));
        // flow start without finish
        let bad = r#"{"traceEvents":[{"ph":"s","id":3,"pid":0,"tid":0,"ts":1}]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("flow id 3"));
    }

    #[test]
    fn json_parser_roundtrips_basics() {
        let doc = parse_json(r#"{"a":[1,2.5,-3e2],"b":"q\"uote","c":null,"d":true}"#).unwrap();
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("q\"uote"));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
        assert!(parse_json("{\"a\":1,}").is_err() || parse_json("{\"a\":1,}").is_ok());
        assert!(parse_json("[1,2] trailing").is_err());
    }
}
