//! Timeline rendering (the Fig. 7 schematic, as ASCII).
//!
//! Fig. 7 of the paper illustrates the monitoring approach on a time axis:
//! the host launches `square`, IPM brackets it with events, the blocking
//! `cudaMemcpy` waits while the kernel runs, and the kernel timing table is
//! updated afterwards. Given the ground-truth device trace (the simulated
//! `CUDA_PROFILE` records), this module renders that picture: one lane per
//! stream, boxes proportional to duration.

use ipm_gpu_sim::{ProfKind, ProfRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render device records as an ASCII timeline of `width` columns.
/// Returns an empty string for an empty trace. Widths below one column are
/// clamped to one, so every record still gets a visible cell.
pub fn render_timeline(records: &[ProfRecord], width: usize) -> String {
    if records.is_empty() {
        return String::new();
    }
    let width = width.max(1);
    let t0 = records
        .iter()
        .map(|r| r.start)
        .fold(f64::INFINITY, f64::min);
    let t1 = records
        .iter()
        .map(|r| r.start + r.gputime)
        .fold(0.0f64, f64::max);
    let span = (t1 - t0).max(1e-12);
    let col = |t: f64| -> usize {
        (((t - t0) / span) * (width.saturating_sub(1)) as f64).round() as usize
    };

    // group by stream, keep submission order
    let mut lanes: BTreeMap<u32, Vec<&ProfRecord>> = BTreeMap::new();
    for r in records {
        lanes.entry(r.stream.0).or_default().push(r);
    }

    let mut out = String::new();
    let _ = writeln!(out, "time: {:.6}s .. {:.6}s  (span {:.6}s)", t0, t1, span);
    for (stream, recs) in &lanes {
        let mut lane = vec![b' '; width];
        for r in recs {
            let a = col(r.start).min(width - 1);
            let b = col(r.start + r.gputime).min(width - 1);
            let glyph = match r.kind {
                ProfKind::Kernel => b'#',
                ProfKind::MemcpyH2D => b'>',
                ProfKind::MemcpyD2H => b'<',
                ProfKind::MemcpyD2D | ProfKind::MemcpyToSymbol => b'=',
                ProfKind::Memset => b'0',
            };
            for cell in lane.iter_mut().take(b + 1).skip(a) {
                *cell = glyph;
            }
        }
        let _ = writeln!(
            out,
            "STRM{stream:02} |{}|",
            String::from_utf8(lane).expect("ascii lane")
        );
    }
    out.push_str("legend: # kernel   > H2D   < D2H   = D2D/symbol   0 memset\n");
    // event log below the lanes, in start order
    let mut ordered: Vec<&ProfRecord> = records.iter().collect();
    ordered.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite starts"));
    for (i, r) in ordered.iter().enumerate() {
        let _ = writeln!(
            out,
            "  ({}) t={:<12.6} {:<24} stream={} dur={:.6}s",
            (b'a' + (i % 26) as u8) as char,
            r.start,
            r.method,
            r.stream.0,
            r.gputime,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_gpu_sim::StreamId;

    fn rec(method: &str, kind: ProfKind, stream: u32, start: f64, dur: f64) -> ProfRecord {
        ProfRecord {
            method: method.to_owned(),
            kind,
            stream: StreamId(stream),
            start,
            gputime: dur,
            cputime: 0.0,
            corr: 0,
        }
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert_eq!(render_timeline(&[], 60), "");
    }

    #[test]
    fn fig7_shape_kernel_then_d2h() {
        let records = vec![
            rec("memcpyHtoD", ProfKind::MemcpyH2D, 0, 0.0, 0.01),
            rec("square", ProfKind::Kernel, 0, 0.01, 1.15),
            rec("memcpyDtoH", ProfKind::MemcpyD2H, 0, 1.16, 0.01),
        ];
        let text = render_timeline(&records, 72);
        assert!(text.contains("STRM00"));
        // the kernel dominates the lane
        let lane = text.lines().find(|l| l.starts_with("STRM00")).unwrap();
        let hashes = lane.matches('#').count();
        assert!(hashes > 50, "kernel box too small: {lane}");
        assert!(lane.contains('>') && lane.contains('<'));
        // event log lists all three in order
        assert!(text.contains("(a)") && text.contains("(c)"));
        let pos = |s: &str| text.find(s).unwrap();
        assert!(pos("memcpyHtoD") < pos("square"));
        assert!(pos("square") < pos("memcpyDtoH"));
    }

    #[test]
    fn zero_width_is_clamped_not_panicking() {
        let records = vec![rec("k", ProfKind::Kernel, 0, 0.0, 1.0)];
        let text = render_timeline(&records, 0);
        let lane = text.lines().find(|l| l.starts_with("STRM00")).unwrap();
        assert!(lane.contains("|#|"), "one clamped column: {lane}");
    }

    #[test]
    fn width_one_renders_single_column_lanes() {
        let records = vec![
            rec("k", ProfKind::Kernel, 0, 0.0, 1.0),
            rec("memcpyDtoH", ProfKind::MemcpyD2H, 1, 1.0, 0.5),
        ];
        let text = render_timeline(&records, 1);
        assert!(text.lines().any(|l| l.starts_with("STRM00 |#|")));
        assert!(text.lines().any(|l| l.starts_with("STRM01 |<|")));
    }

    #[test]
    fn single_record_fills_its_lane() {
        let records = vec![rec("solo", ProfKind::Kernel, 0, 2.0, 0.0)];
        let text = render_timeline(&records, 10);
        // zero-duration record: span clamps, record still visible
        let lane = text.lines().find(|l| l.starts_with("STRM00")).unwrap();
        assert!(lane.contains('#'), "record invisible: {lane}");
        assert!(text.contains("solo"));
    }

    #[test]
    fn streams_get_separate_lanes() {
        let records = vec![
            rec("a", ProfKind::Kernel, 0, 0.0, 1.0),
            rec("b", ProfKind::Kernel, 3, 0.0, 1.0),
        ];
        let text = render_timeline(&records, 40);
        assert!(text.contains("STRM00"));
        assert!(text.contains("STRM03"));
    }
}
