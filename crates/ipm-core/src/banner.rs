//! The IPM banner report.
//!
//! Immediately after program termination IPM writes a banner to stdout
//! summarizing the run (paper §II, shown in Figs. 4–6 and 11). Two
//! flavors:
//!
//! * [`render_banner`] — single-rank banner, the Fig. 4/5/6 format: a
//!   header block plus the function table sorted by total time with
//!   `[time] [count] <%wall>` columns.
//! * [`render_cluster_banner`] — the multi-rank format of Fig. 11:
//!   `[total] <avg> min max` rows for wallclock and each subsystem,
//!   `%wall` and `#calls` sections, then the aggregated function table.

use crate::aggregate::ClusterReport;
use crate::profile::RankProfile;
use ipm_sim_core::units::{fmt_pct, fmt_secs};
use ipm_sim_core::RunningStats;
use std::collections::HashMap;

const RULE: &str = "##IPMv2.0########################################################\n";

/// Render a single-rank banner (Figs. 4–6). `max_rows` limits the function
/// table (0 = unlimited).
pub(crate) fn render_banner(profile: &RankProfile, max_rows: usize) -> String {
    let mut out = String::new();
    out.push_str(RULE);
    out.push_str("#\n");
    out.push_str(&format!("# command   : {}\n", profile.command));
    out.push_str(&format!("# host      : {}\n", profile.host));
    out.push_str(&format!("# wallclock : {}\n", fmt_secs(profile.wallclock)));
    out.push_str("#\n");
    out.push_str(&format!(
        "# {:<24} {:>8} {:>9} {:>9}\n",
        "", "[time]", "[count]", "<%wall>"
    ));
    let totals = profile.totals_by_name();
    let rows = if max_rows == 0 {
        totals.len()
    } else {
        max_rows.min(totals.len())
    };
    for (name, stats) in totals.into_iter().take(rows) {
        let pct = if profile.wallclock > 0.0 {
            stats.total / profile.wallclock
        } else {
            0.0
        };
        out.push_str(&format!(
            "# {:<24} {:>8} {:>9} {:>9}\n",
            name,
            fmt_secs(stats.total),
            stats.count,
            fmt_pct(pct),
        ));
    }
    out.push_str("#\n");
    out.push_str(&render_monitor_section(profile));
    out.push_str(RULE);
    out
}

/// Format wall-clock nanoseconds of monitor bookkeeping for the banner.
fn fmt_wall_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The "monitor the monitor" banner section: what IPM itself cost, on the
/// wall clock, plus trace-ring capture/drop accounting and memory.
fn render_monitor_section(profile: &RankProfile) -> String {
    let m = &profile.monitor;
    let mut out = String::new();
    out.push_str(&format!(
        "# monitor   : self {} wall-clock\n",
        fmt_wall_ns(m.self_wall_ns)
    ));
    out.push_str(&format!(
        "#             trace {} captured / {} dropped / {} compacted / {} emitted\n",
        m.trace_captured, m.trace_dropped, m.trace_compacted, m.trace_emitted
    ));
    out.push_str(&format!(
        "#             ring hwm {} bytes\n",
        m.ring_hwm_bytes
    ));
    out.push_str("#\n");
    out
}

/// Render the cluster banner (Fig. 11 format) from an aggregated report.
pub(crate) fn render_cluster_banner(report: &ClusterReport, max_rows: usize) -> String {
    let mut out = String::new();
    out.push_str(RULE);
    out.push_str("#\n");
    out.push_str(&format!("# command   : {}\n", report.command));
    out.push_str(&format!(
        "# mpi_tasks : {} on {} nodes{:>24}: {}\n",
        report.nranks,
        report.nodes,
        "%comm ",
        fmt_pct(report.comm_fraction()),
    ));
    out.push_str(&format!(
        "# wallclock : {} (max over tasks)\n",
        fmt_secs(report.wallclock_max)
    ));
    out.push_str("#\n");
    out.push_str(&format!(
        "# {:<12}: {:>10} {:>10} {:>10} {:>10}\n",
        "", "[total]", "<avg>", "min", "max"
    ));
    out.push_str(&format!(
        "# {:<12}: {:>10} {:>10} {:>10} {:>10}\n",
        "wallclock",
        fmt_secs(report.wallclock_total),
        fmt_secs(report.wallclock_total / report.nranks as f64),
        fmt_secs(report.wallclock_min),
        fmt_secs(report.wallclock_max),
    ));
    for (label, agg) in report.subsystem_rows() {
        out.push_str(&format!(
            "# {:<12}: {:>10} {:>10} {:>10} {:>10}\n",
            label,
            fmt_secs(agg.total),
            fmt_secs(agg.total / report.nranks as f64),
            fmt_secs(agg.min),
            fmt_secs(agg.max),
        ));
    }
    out.push_str("#\n");
    out.push_str(&format!(
        "# {:<36} {:>10} {:>10} {:>9}\n",
        "", "[time]", "[count]", "<%wall>"
    ));
    let totals = report.totals_by_name();
    let wall = report.wallclock_total;
    let rows = if max_rows == 0 {
        totals.len()
    } else {
        max_rows.min(totals.len())
    };
    for (name, stats) in totals.into_iter().take(rows) {
        let pct = if wall > 0.0 { stats.total / wall } else { 0.0 };
        out.push_str(&format!(
            "# {:<36} {:>10} {:>10} {:>9}\n",
            name,
            fmt_secs(stats.total),
            stats.count,
            fmt_pct(pct),
        ));
    }
    out.push_str("#\n");
    out.push_str(RULE);
    out
}

/// Render the per-region breakdown (IPM's `MPI_Pcontrol` regions): one
/// section per user region, each with its own function table.
pub(crate) fn render_region_report(profile: &RankProfile, max_rows: usize) -> String {
    let mut out = String::new();
    for (region_id, region_name) in profile.regions.iter().enumerate() {
        let mut map: HashMap<&str, RunningStats> = HashMap::new();
        for e in profile
            .entries
            .iter()
            .filter(|e| e.region as usize == region_id)
        {
            map.entry(&e.name).or_default().merge(&e.stats);
        }
        if map.is_empty() {
            continue;
        }
        let mut rows: Vec<_> = map.into_iter().collect();
        rows.sort_by(|a, b| {
            b.1.total
                .partial_cmp(&a.1.total)
                .expect("finite totals")
                .then_with(|| a.0.cmp(b.0))
        });
        let region_total: f64 = rows.iter().map(|(_, s)| s.total).sum();
        out.push_str(&format!(
            "# region {:<24} [events: {:.2} s]
",
            region_name, region_total
        ));
        let limit = if max_rows == 0 {
            rows.len()
        } else {
            max_rows.min(rows.len())
        };
        for (name, stats) in rows.into_iter().take(limit) {
            out.push_str(&format!(
                "#   {:<24} {:>8} {:>9}
",
                name,
                fmt_secs(stats.total),
                stats.count,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileEntry;
    use ipm_sim_core::RunningStats;

    fn sample_profile() -> RankProfile {
        let mk = |name: &str, total: f64, count: u64| {
            let mut stats = RunningStats::new();
            for _ in 0..count {
                stats.record(total / count as f64);
            }
            ProfileEntry {
                name: name.to_owned(),
                detail: None,
                bytes: 0,
                region: 0,
                stats,
            }
        };
        RankProfile {
            rank: 0,
            nranks: 1,
            host: "dirac15".to_owned(),
            command: "./cuda.ipm".to_owned(),
            wallclock: 3.59,
            regions: vec!["<program>".to_owned()],
            entries: vec![
                mk("cudaMalloc", 2.43, 1),
                mk("cudaMemcpy(D2H)", 1.16, 1),
                mk("cudaMemcpy(H2D)", 0.01, 1),
                mk("cudaSetupArgument", 0.0, 2),
                mk("cudaLaunch", 0.0, 1),
            ],
            dropped_events: 0,
            monitor: crate::profile::MonitorInfo {
                self_wall_ns: 12_500,
                trace_emitted: 6,
                trace_captured: 6,
                trace_dropped: 0,
                trace_compacted: 0,
                ring_hwm_bytes: 768,
            },
        }
    }

    #[test]
    fn banner_matches_fig4_structure() {
        let banner = render_banner(&sample_profile(), 0);
        assert!(banner.starts_with("##IPMv2.0"));
        assert!(banner.contains("# command   : ./cuda.ipm"));
        assert!(banner.contains("# host      : dirac15"));
        assert!(banner.contains("# wallclock : 3.59"));
        assert!(banner.contains("[time]"));
        assert!(banner.contains("<%wall>"));
        // sorted: cudaMalloc first with ~67.7% of wall
        let malloc_line = banner
            .lines()
            .find(|l| l.contains("cudaMalloc"))
            .expect("cudaMalloc row");
        assert!(malloc_line.contains("2.43"));
        assert!(
            malloc_line.contains("67.69") || malloc_line.contains("67.7"),
            "{malloc_line}"
        );
        // ordering: Malloc before D2H before H2D
        let pos = |s: &str| banner.find(s).unwrap();
        assert!(pos("cudaMalloc") < pos("cudaMemcpy(D2H)"));
        assert!(pos("cudaMemcpy(D2H)") < pos("cudaMemcpy(H2D)"));
    }

    #[test]
    fn monitor_section_is_golden() {
        let banner = render_banner(&sample_profile(), 0);
        let expected = "\
# monitor   : self 12.5 us wall-clock
#             trace 6 captured / 0 dropped / 0 compacted / 6 emitted
#             ring hwm 768 bytes
";
        assert!(
            banner.contains(expected),
            "monitor section drifted:\n{banner}"
        );
    }

    #[test]
    fn wall_ns_formatting_picks_sane_units() {
        assert_eq!(fmt_wall_ns(999), "999 ns");
        assert_eq!(fmt_wall_ns(12_500), "12.5 us");
        assert_eq!(fmt_wall_ns(3_400_000), "3.4 ms");
        assert_eq!(fmt_wall_ns(2_150_000_000), "2.15 s");
    }

    #[test]
    fn max_rows_truncates_table() {
        let banner = render_banner(&sample_profile(), 2);
        assert!(banner.contains("cudaMalloc"));
        assert!(banner.contains("cudaMemcpy(D2H)"));
        assert!(!banner.contains("cudaSetupArgument"));
    }

    #[test]
    fn region_report_sections_follow_regions() {
        let mut p = sample_profile();
        p.regions.push("solver".to_owned());
        let mut stats = RunningStats::new();
        stats.record(7.0);
        p.entries.push(crate::profile::ProfileEntry {
            name: "MPI_Allreduce".to_owned(),
            detail: None,
            bytes: 64,
            region: 1,
            stats,
        });
        let report = render_region_report(&p, 0);
        assert!(report.contains("region <program>"));
        assert!(report.contains("region solver"));
        // the solver section contains the allreduce, the program section
        // contains cudaMalloc
        let solver_pos = report.find("region solver").unwrap();
        let allreduce_pos = report.find("MPI_Allreduce").unwrap();
        assert!(allreduce_pos > solver_pos);
    }

    #[test]
    fn zero_wallclock_renders_without_panicking() {
        let mut p = sample_profile();
        p.wallclock = 0.0;
        let banner = render_banner(&p, 0);
        assert!(banner.contains("0.00"));
    }
}
