//! The monitored file-I/O API.
//!
//! IPM's original domains are MPI and file I/O (paper §II); the hash-table
//! example in Fig. 1 even uses `fopen` as an event. [`IpmIo`] wraps an
//! [`IoApi`] implementation so every stdio-like call is timed and its byte
//! count recorded — completing the "whole event inventory" picture next to
//! the CUDA and MPI monitors.

use crate::facade::FacadeCore;
use crate::monitor::Ipm;
use ipm_interpose::{site, CallHandle};
use ipm_sim_core::fsio::{FileHandle, FsResult, IoApi, OpenMode};
use std::sync::Arc;

/// The monitored file-I/O facade.
pub struct IpmIo<F: IoApi> {
    core: FacadeCore,
    inner: F,
}

impl<F: IoApi> IpmIo<F> {
    /// Install monitoring around `inner`.
    pub fn new(ipm: Arc<Ipm>, inner: F) -> Self {
        Self {
            core: FacadeCore::new(ipm, None),
            inner,
        }
    }

    /// The wrapped API.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// The monitoring context.
    pub fn ipm(&self) -> &Arc<Ipm> {
        self.core.ipm()
    }

    fn wrapped<R>(&self, call: CallHandle, bytes: u64, real: impl FnOnce() -> R) -> R {
        self.core.wrapped(call, bytes, real)
    }
}

impl<F: IoApi> IoApi for IpmIo<F> {
    fn fopen(&self, path: &str, mode: OpenMode) -> FsResult<FileHandle> {
        self.wrapped(site!("fopen"), 0, || self.inner.fopen(path, mode))
    }

    fn fread(&self, h: FileHandle, buf: &mut [u8]) -> FsResult<usize> {
        let cap = buf.len() as u64;
        self.wrapped(site!("fread"), cap, || self.inner.fread(h, buf))
    }

    fn fwrite(&self, h: FileHandle, data: &[u8]) -> FsResult<usize> {
        self.wrapped(site!("fwrite"), data.len() as u64, || {
            self.inner.fwrite(h, data)
        })
    }

    fn fclose(&self, h: FileHandle) -> FsResult<()> {
        self.wrapped(site!("fclose"), 0, || self.inner.fclose(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::IpmConfig;
    use ipm_sim_core::fsio::{FsConfig, RankFs, SimFs};
    use ipm_sim_core::SimClock;

    fn stack() -> (Arc<Ipm>, IpmIo<RankFs>) {
        let clock = SimClock::new();
        let ipm = Ipm::new(clock.clone(), IpmConfig::default());
        let fs = SimFs::new(FsConfig::default());
        (ipm.clone(), IpmIo::new(ipm, RankFs { fs, clock }))
    }

    #[test]
    fn io_calls_land_in_the_hash_table_with_bytes() {
        let (ipm, io) = stack();
        let h = io.fopen("/scratch/out.dat", OpenMode::Write).unwrap();
        io.fwrite(h, &vec![7u8; 1 << 20]).unwrap();
        io.fclose(h).unwrap();
        let h = io.fopen("/scratch/out.dat", OpenMode::Read).unwrap();
        let mut buf = vec![0u8; 4096];
        io.fread(h, &mut buf).unwrap();
        io.fclose(h).unwrap();

        let p = ipm.profile();
        assert_eq!(p.count_of("fopen"), 2);
        assert_eq!(p.count_of("fclose"), 2);
        let fwrite = p.entries.iter().find(|e| e.name == "fwrite").unwrap();
        assert_eq!(fwrite.bytes, 1 << 20);
        // the 1 MiB write at 250 MB/s dominates this little profile
        assert!(p.time_of("fwrite") > p.time_of("fopen"));
        // and the data is really there
        assert_eq!(buf[0], 7);
    }

    #[test]
    fn errors_pass_through_and_are_still_timed() {
        let (ipm, io) = stack();
        assert!(io.fopen("missing", OpenMode::Read).is_err());
        assert_eq!(ipm.profile().count_of("fopen"), 1);
    }

    #[test]
    fn io_is_classified_as_its_own_family() {
        use crate::profile::{classify, EventFamily};
        assert_eq!(classify("fopen"), EventFamily::Other);
        assert_eq!(classify("fwrite"), EventFamily::Other);
        // (IPM groups I/O under its own section; our banner shows them in
        // the flat table — family "Other" keeps them out of %comm/GPU math)
    }
}
