//! Hand-rolled JSON writing and parsing, shared by the export backends.
//!
//! The repo has no serde (no external deps are available), so every JSON
//! producer writes strings by hand and every validator parses them with
//! the minimal recursive-descent parser below. This module is the single
//! home for both halves: [`esc`]/[`quote`] are the writer primitives used
//! by the Chrome and OTLP exporters, and [`parse_json`]/[`Json`] are the
//! reader used by [`crate::export::chrome::validate_chrome_trace`] and
//! `validate_otlp`.

/// Escape a string for embedding inside a JSON string literal (without the
/// surrounding quotes).
pub fn esc(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A complete JSON string literal: `quote("a\"b")` is `"a\"b"` with quotes.
pub fn quote(s: &str) -> String {
    format!("\"{}\"", esc(s))
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // advance one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Parse a JSON document (strict enough for validation; rejects trailing
/// garbage).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_roundtrips_basics() {
        let doc = parse_json(r#"{"a":[1,2.5,-3e2],"b":"q\"uote","c":null,"d":true}"#).unwrap();
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("q\"uote"));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
        assert!(parse_json("{\"a\":1,}").is_err() || parse_json("{\"a\":1,}").is_ok());
        assert!(parse_json("[1,2] trailing").is_err());
    }

    #[test]
    fn escaper_and_parser_agree() {
        let nasty = "a\"b\\c\nd\te\r\u{1}end";
        let doc = parse_json(&format!("{{\"k\":{}}}", quote(nasty))).unwrap();
        assert_eq!(doc.get("k").and_then(Json::as_str), Some(nasty));
    }
}
