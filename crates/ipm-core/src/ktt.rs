//! The kernel timing table (KTT, paper §III-B).
//!
//! A statically sized table of in-flight kernel timings. IPM's
//! `cudaLaunch` wrapper enqueues a start event before and a stop event
//! after the launch, storing `(start, stop, stream, kernel)` in a free
//! slot. Because kernels run asynchronously, completion is checked
//! *lazily* — by default only inside device-to-host transfer wrappers
//! ("since any data used by the host has to be requested explicitly by a
//! later D2H transfer, it is safe to assume at least one such transfer
//! occurs after the launch"). When a `cudaEventQuery` on the stop event
//! succeeds, the duration is read with `cudaEventElapsedTime`, the slot is
//! freed, and a `@CUDA_EXEC_STRMxx` entry lands in the hash table.

use ipm_gpu_sim::{CudaApi, EventId, StreamId};
use std::sync::Arc;

/// When the wrapper layer sweeps the KTT for completed kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KttCheckPolicy {
    /// Only in device-to-host memory transfer wrappers — the paper's
    /// choice, minimizing query overhead.
    D2hOnly,
    /// In every CUDA runtime wrapper — the eager alternative the paper
    /// rejects as potentially costly (benchmarked as an ablation).
    EveryCall,
}

/// One in-flight kernel timing.
#[derive(Clone, Debug)]
struct Slot {
    start: EventId,
    stop: EventId,
    stream: StreamId,
    kernel: Arc<str>,
    /// Correlation id of the bracketed launch (0 if the backend does not
    /// track launches), linking this timing to the submitting host call.
    corr: u64,
}

/// A completed kernel timing, ready for the hash table.
#[derive(Clone, Debug, PartialEq)]
pub struct CompletedKernel {
    pub kernel: Arc<str>,
    pub stream: StreamId,
    /// Event-bracketed duration in seconds (true kernel time plus roughly
    /// one event-record overhead — the bias Table I quantifies).
    pub duration: f64,
    /// Correlation id of the launch (0 when untracked).
    pub corr: u64,
    /// Absolute `(start, stop)` event timestamps on the device timeline,
    /// when the backend exposes them — what places this kernel in a trace.
    pub interval: Option<(f64, f64)>,
}

/// The statically allocated kernel timing table.
pub struct Ktt {
    slots: Vec<Option<Slot>>,
    /// Recycled event pairs, so steady-state monitoring does not keep
    /// creating CUDA events.
    free_events: Vec<(EventId, EventId)>,
    /// Launches not timed because every slot was busy.
    dropped: u64,
}

impl Ktt {
    /// Table with `capacity` slots (IPM uses a fixed compile-time size).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            slots: vec![None; capacity],
            free_events: Vec::new(),
            dropped: 0,
        }
    }

    /// Number of occupied slots.
    pub fn in_flight(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Launches that could not be timed (table full).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Bracket `launch` with start/stop events on `stream` and store the
    /// timing slot. Called by the `cudaLaunch` wrapper. If the table is
    /// full the launch still proceeds, just untimed.
    pub fn time_launch<R>(
        &mut self,
        api: &dyn CudaApi,
        kernel: Arc<str>,
        stream: StreamId,
        launch: impl FnOnce() -> R,
    ) -> R {
        let free_idx = self.slots.iter().position(|s| s.is_none());
        let Some(idx) = free_idx else {
            self.dropped += 1;
            return launch();
        };
        let events = self.free_events.pop().map(Ok).unwrap_or_else(|| {
            Ok::<_, ipm_gpu_sim::CudaError>((api.cuda_event_create()?, api.cuda_event_create()?))
        });
        let Ok((start, stop)) = events else {
            self.dropped += 1;
            return launch();
        };
        if api.cuda_event_record(start, stream).is_err() {
            self.free_events.push((start, stop));
            self.dropped += 1;
            return launch();
        }
        let ret = launch();
        if api.cuda_event_record(stop, stream).is_err() {
            self.free_events.push((start, stop));
            self.dropped += 1;
            return ret;
        }
        let corr = api.cuda_last_launch_correlation_id();
        self.slots[idx] = Some(Slot {
            start,
            stop,
            stream,
            kernel,
            corr,
        });
        ret
    }

    /// Sweep for completed kernels: query each occupied slot's stop event;
    /// on success, read the elapsed time and free the slot.
    pub fn collect_completed(&mut self, api: &dyn CudaApi) -> Vec<CompletedKernel> {
        let mut done = Vec::new();
        for slot in self.slots.iter_mut() {
            let Some(s) = slot else { continue };
            if api.cuda_event_query(s.stop).is_err() {
                continue; // still running
            }
            if let Ok(duration) = api.cuda_event_elapsed_time(s.start, s.stop) {
                let interval = match (
                    api.cuda_event_timestamp(s.start),
                    api.cuda_event_timestamp(s.stop),
                ) {
                    (Ok(t0), Ok(t1)) => Some((t0, t1)),
                    _ => None,
                };
                done.push(CompletedKernel {
                    kernel: s.kernel.clone(),
                    stream: s.stream,
                    duration,
                    corr: s.corr,
                    interval,
                });
            }
            self.free_events.push((s.start, s.stop));
            *slot = None;
        }
        done
    }

    /// Force-complete everything (used at finalize time): synchronizes each
    /// remaining stop event, then collects.
    pub fn drain(&mut self, api: &dyn CudaApi) -> Vec<CompletedKernel> {
        for slot in self.slots.iter().flatten() {
            let _ = api.cuda_event_synchronize(slot.stop);
        }
        self.collect_completed(api)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_gpu_sim::{launch_kernel, GpuConfig, GpuRuntime, Kernel, KernelCost, LaunchConfig};

    fn rt() -> GpuRuntime {
        GpuRuntime::single(GpuConfig::dirac_node().with_context_init(0.0))
    }

    fn timed_launch(ktt: &mut Ktt, rt: &GpuRuntime, name: &str, dur: f64) {
        let k = Kernel::timed(name, KernelCost::Fixed(dur));
        ktt.time_launch(rt, Arc::from(name), StreamId::DEFAULT, || {
            launch_kernel(rt, &k, LaunchConfig::simple(1u32, 1u32), &[]).unwrap();
        });
    }

    #[test]
    fn kernel_timing_roundtrip() {
        let rt = rt();
        let mut ktt = Ktt::new(8);
        timed_launch(&mut ktt, &rt, "square", 0.5);
        assert_eq!(ktt.in_flight(), 1);
        // kernel still running: nothing completes
        assert!(ktt.collect_completed(&rt).is_empty());
        assert_eq!(ktt.in_flight(), 1);
        // after the device drains, collection succeeds
        rt.thread_synchronize().unwrap();
        let done = ktt.collect_completed(&rt);
        assert_eq!(done.len(), 1);
        assert_eq!(&*done[0].kernel, "square");
        assert!(done[0].duration >= 0.5, "measured {}", done[0].duration);
        assert!(done[0].duration < 0.5 + 1e-3);
        assert_eq!(ktt.in_flight(), 0);
    }

    #[test]
    fn full_table_drops_but_launch_proceeds() {
        let rt = rt();
        let mut ktt = Ktt::new(2);
        for i in 0..4 {
            timed_launch(&mut ktt, &rt, &format!("k{i}"), 0.1);
        }
        assert_eq!(ktt.in_flight(), 2);
        assert_eq!(ktt.dropped(), 2);
        // all four kernels really ran
        rt.thread_synchronize().unwrap();
        assert!(rt.clock().now() >= 0.4);
    }

    #[test]
    fn event_pairs_are_recycled() {
        let rt = rt();
        let mut ktt = Ktt::new(4);
        for round in 0..5 {
            timed_launch(&mut ktt, &rt, "k", 0.01);
            rt.thread_synchronize().unwrap();
            let done = ktt.collect_completed(&rt);
            assert_eq!(done.len(), 1, "round {round}");
        }
        // after the first round the same event pair is reused
        assert_eq!(ktt.free_events.len(), 1);
    }

    #[test]
    fn drain_collects_in_flight_kernels() {
        let rt = rt();
        let mut ktt = Ktt::new(4);
        timed_launch(&mut ktt, &rt, "a", 1.0);
        timed_launch(&mut ktt, &rt, "b", 1.0);
        let done = ktt.drain(&rt);
        assert_eq!(done.len(), 2);
        let names: Vec<&str> = done.iter().map(|c| &*c.kernel).collect();
        assert!(names.contains(&"a") && names.contains(&"b"));
    }

    #[test]
    fn per_stream_attribution() {
        let rt = rt();
        let s1 = rt.stream_create().unwrap();
        let mut ktt = Ktt::new(4);
        let k = Kernel::timed("k", KernelCost::Fixed(0.2));
        ktt.time_launch(&rt, Arc::from("k"), s1, || {
            launch_kernel(&rt, &k, LaunchConfig::simple(1u32, 1u32).on_stream(s1), &[]).unwrap();
        });
        let done = ktt.drain(&rt);
        assert_eq!(done[0].stream, s1);
    }
}
