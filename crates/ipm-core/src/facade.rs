//! The shared wrapper core — **one** anatomy for all five monitor facades.
//!
//! Every monitored facade (`cuda_mon`, `driver_mon`, `mpi_mon`,
//! `numlib_mon`, `io_mon`) used to carry its own copy of the Fig. 2
//! plumbing: clock/sink/overhead lookup, host-idle probing, KTT sweeping,
//! completion booking. [`FacadeCore`] is that plumbing factored into one
//! place; facades hold a core and delegate, so timing, byte attribution,
//! host-idle probing, and self-overhead accounting cannot drift apart
//! between API families.
//!
//! The core is steered by the interned [`CallHandle`]: a call whose spec
//! row is in the implicit blocking set (§III-C) is probed for accumulated
//! device work before being timed, and everything else passes straight to
//! [`wrap_call`]. Facades with no device behind them (MPI, I/O, and the
//! numerical libraries, whose device traffic is already monitored through
//! the CUDA facade they sit on) construct the core with `device: None`,
//! which turns probing and sweeping into no-ops.

use crate::ktt::{CompletedKernel, KttCheckPolicy};
use crate::monitor::Ipm;
use crate::sig::EventSignature;
use ipm_gpu_sim::CudaApi;
use ipm_interpose::{site, wrap_call, wrap_call_sized, CallHandle, CallId, NameTable};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The state every monitored facade shares: the monitoring context, the
/// *real* device API used for IPM-internal probing (invisible to the
/// profile), the cached per-call overhead charge, and the interned
/// `@CUDA_EXEC_STRMxx` ids.
pub(crate) struct FacadeCore {
    ipm: Arc<Ipm>,
    /// The bare (unmonitored) device API for host-idle probes and KTT
    /// sweeps; `None` for facades that never touch the device directly.
    device: Option<Arc<dyn CudaApi>>,
    /// `IpmConfig::wrapper_overhead`, cached so the record path does not
    /// re-read the config per call.
    overhead: f64,
    /// Interned `@CUDA_EXEC_STRMxx` ids, one per stream seen.
    exec_ids: Mutex<HashMap<u32, CallId>>,
}

impl FacadeCore {
    pub(crate) fn new(ipm: Arc<Ipm>, device: Option<Arc<dyn CudaApi>>) -> Self {
        let overhead = ipm.config().wrapper_overhead;
        Self {
            ipm,
            device,
            overhead,
            exec_ids: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn ipm(&self) -> &Arc<Ipm> {
        &self.ipm
    }

    /// The Fig. 2 anatomy without any KTT sweep — safe to call while the
    /// KTT lock is held (launch wrappers do exactly that). Calls in the
    /// implicit blocking set are probed for host idle first.
    pub(crate) fn wrapped_no_sweep<R>(
        &self,
        call: CallHandle,
        bytes: u64,
        real: impl FnOnce() -> R,
    ) -> R {
        if call.implicit_sync {
            self.absorb_host_idle();
        }
        wrap_call(
            self.ipm.clock(),
            self.ipm.as_ref(),
            call,
            bytes,
            self.overhead,
            real,
        )
    }

    /// The full anatomy: probe (if blocking), time, then sweep the KTT when
    /// the policy asks for a check on every call.
    pub(crate) fn wrapped<R>(&self, call: CallHandle, bytes: u64, real: impl FnOnce() -> R) -> R {
        let out = self.wrapped_no_sweep(call, bytes, real);
        self.sweep_if_every_call();
        out
    }

    /// [`Self::wrapped`] for calls sized by their *result* (`MPI_Recv`,
    /// `MPI_Wait`): the byte attribute is measured after the real call
    /// completes, before the sink sees the event.
    pub(crate) fn wrapped_sized<R>(
        &self,
        call: CallHandle,
        real: impl FnOnce() -> R,
        bytes_of: impl FnOnce(&R) -> u64,
    ) -> R {
        if call.implicit_sync {
            self.absorb_host_idle();
        }
        let out = wrap_call_sized(
            self.ipm.clock(),
            self.ipm.as_ref(),
            call,
            self.overhead,
            real,
            bytes_of,
        );
        self.sweep_if_every_call();
        out
    }

    /// Measure implicit host blocking before a call in the blocking set:
    /// synchronize with all outstanding device work (through the *real*
    /// API — IPM-internal calls are invisible to the profile) and book the
    /// wait as `@CUDA_HOST_IDLE`.
    fn absorb_host_idle(&self) {
        let Some(device) = &self.device else { return };
        if !self.ipm.config().host_idle {
            return;
        }
        let before = self.ipm.clock().now();
        let _ = device.cuda_thread_synchronize();
        let after = self.ipm.clock().now();
        let idle = after - before;
        if idle > 0.0 {
            self.ipm
                .update_pseudo(site!("@CUDA_HOST_IDLE").id, None, idle);
            self.ipm.trace_host_idle(before, after);
        }
    }

    /// Sweep the KTT for completed kernels and book `@CUDA_EXEC_STRMxx`
    /// entries (paper: done in D2H transfer wrappers).
    pub(crate) fn sweep_ktt(&self) {
        let Some(device) = &self.device else { return };
        if !self.ipm.config().gpu_timing {
            return;
        }
        let completed = self.ipm.ktt().lock().collect_completed(device.as_ref());
        self.book_completed(completed);
    }

    /// Sweep only under `KttCheckPolicy::EveryCall` — the tail of the full
    /// anatomy, also called by launch wrappers after the KTT lock drops.
    pub(crate) fn sweep_if_every_call(&self) {
        if self.ipm.config().ktt_policy == KttCheckPolicy::EveryCall {
            self.sweep_ktt();
        }
    }

    fn book_completed(&self, completed: Vec<CompletedKernel>) {
        let correction = self.ipm.config().exec_time_correction.unwrap_or(0.0);
        for c in completed {
            let exec = self.exec_stream_id(c.stream.0);
            let duration = (c.duration - correction).max(0.0);
            if let Some(interval) = c.interval {
                self.ipm.trace_kernel_exec(
                    NameTable::global().name(exec),
                    c.kernel.clone(),
                    c.stream.0,
                    interval,
                    c.corr,
                );
            }
            self.ipm
                .update_pseudo(exec, Some(CallHandle::of(&c.kernel).id), duration);
        }
    }

    /// The interned `@CUDA_EXEC_STRMxx` id for a stream (cached: the format
    /// + intern cost is paid once per stream, not per completion).
    fn exec_stream_id(&self, stream: u32) -> CallId {
        *self
            .exec_ids
            .lock()
            .entry(stream)
            .or_insert_with(|| CallHandle::of(&EventSignature::exec_stream_name(stream)).id)
    }

    /// Drain any in-flight kernel timings (call before producing the
    /// profile). Safe to call multiple times; no-op without a device.
    pub(crate) fn finalize(&self) {
        let Some(device) = &self.device else { return };
        if !self.ipm.config().gpu_timing {
            return;
        }
        let completed = self.ipm.ktt().lock().drain(device.as_ref());
        self.book_completed(completed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::IpmConfig;
    use ipm_gpu_sim::{GpuConfig, GpuRuntime};
    use ipm_sim_core::SimClock;

    #[test]
    fn deviceless_cores_never_probe_or_sweep() {
        let ipm = Ipm::new(SimClock::new(), IpmConfig::default());
        let core = FacadeCore::new(ipm.clone(), None);
        // cublasSetMatrix is ImplicitSync in the spec, but with no device
        // there is nothing to probe — status quo for the numlib facade
        core.wrapped(CallHandle::of("cublasSetMatrix"), 128, || ());
        core.sweep_ktt();
        core.finalize();
        let p = ipm.profile();
        assert_eq!(p.count_of("cublasSetMatrix"), 1);
        assert_eq!(p.host_idle_time(), 0.0);
    }

    #[test]
    fn blocking_set_probes_are_driven_by_the_interned_flag() {
        let rt = Arc::new(GpuRuntime::single(
            GpuConfig::dirac_node().with_context_init(0.0),
        ));
        let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
        let core = FacadeCore::new(ipm.clone(), Some(rt.clone()));
        // enqueue 0.2 s of kernel work, then issue an ImplicitSync call:
        // the wait must land in @CUDA_HOST_IDLE, not in the call
        let k = ipm_gpu_sim::Kernel::timed("busy", ipm_gpu_sim::KernelCost::Fixed(0.2));
        ipm_gpu_sim::launch_kernel(
            rt.as_ref(),
            &k,
            ipm_gpu_sim::LaunchConfig::simple(1u32, 1u32),
            &[],
        )
        .unwrap();
        core.wrapped(CallHandle::of("cudaMemcpy(D2H)"), 64, || {
            rt.clock().advance(1e-3)
        });
        let p = ipm.profile();
        assert!((p.host_idle_time() - 0.2).abs() < 0.01);
        assert!(p.time_of("cudaMemcpy(D2H)") < 0.01);
        // a NonBlocking call never probes
        core.wrapped(CallHandle::of("cudaMemset"), 64, || ());
        assert!((ipm.profile().host_idle_time() - 0.2).abs() < 0.01);
    }
}
