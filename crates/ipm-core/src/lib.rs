//! # ipm-core
//!
//! IPM — Integrated Performance Monitoring — as described in
//! *"Comprehensive Performance Monitoring for GPU Cluster Systems"*
//! (Fürlinger, Wright, Skinner; IPPS/IPDPS 2011). A scalable, low-overhead
//! profiling layer interposed between an application and its runtimes
//! (CUDA runtime + driver, CUBLAS, CUFFT, MPI), producing banner reports,
//! XML logs, HTML pages, and CUBE conversions.
//!
//! ## Architecture (paper section → module)
//!
//! | Paper | Module | What it is |
//! |---|---|---|
//! | §II Fig. 1 | [`sig`], [`table`] | event signatures + the performance data hash table |
//! | §III-A Fig. 2 | [`cuda_mon`] | the wrapped CUDA runtime (host-side timing) |
//! | §III-B | [`ktt`] | kernel timing table, `@CUDA_EXEC_STRMxx` entries |
//! | §III-C | [`hostidle`], [`cuda_mon`] | blocking-set discovery, `@CUDA_HOST_IDLE` |
//! | §III-D | [`numlib_mon`] | CUBLAS/CUFFT wrappers with operand sizes |
//! | §II | [`banner`], [`xml`], [`parse`], [`cube`] | reports: banner, XML log, `ipm_parse`, CUBE |
//! | §V | [`aggregate`] | cross-rank integration (the cluster view) |
//! | Fig. 7 | [`timeline`] | the monitoring-timeline rendering |
//!
//! ## Monitoring deployment model
//!
//! A rank builds its stack like this (the analogue of `LD_PRELOAD`ing
//! `libipm.so` — application code is identical monitored or not):
//!
//! ```
//! use std::sync::Arc;
//! use ipm_core::{Ipm, IpmConfig, IpmCuda};
//! use ipm_gpu_sim::{CudaApi, GpuConfig, GpuRuntime};
//!
//! let rt = Arc::new(GpuRuntime::single(GpuConfig::dirac_node()));
//! let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
//! let cuda: Arc<dyn CudaApi> = Arc::new(IpmCuda::new(ipm.clone(), rt));
//! // hand `cuda` to the application (and to CUBLAS/CUFFT constructors, so
//! // library-internal launches are monitored too) ...
//! let dev = cuda.cuda_malloc(1024).unwrap();
//! cuda.cuda_free(dev).unwrap();
//! let profile = ipm.profile();
//! assert_eq!(profile.count_of("cudaMalloc"), 1);
//! ```

pub mod aggregate;
pub mod banner;
pub mod compact;
pub mod compat;
pub mod cube;
pub mod cuda_mon;
pub mod driver_mon;
pub mod export;
pub(crate) mod facade;
pub mod hostidle;
pub mod io_mon;
pub mod jsonw;
pub mod ktt;
pub mod monitor;
pub mod mpi_mon;
pub mod numlib_mon;
pub mod papi;
pub mod parse;
pub mod profile;
pub mod sig;
pub mod table;
pub mod timeline;
pub mod trace;
pub mod xml;

pub use aggregate::{ClusterReport, ClusterSnapshot, RankSpread};
pub use compact::{compact_records, merge_runs, same_signature, CompactPolicy, TraceAgg};
pub use compat::LegacyMirror;
pub use cube::{build_cube, cube_to_xml, render_cube_text, CubeMetric};
pub use cuda_mon::IpmCuda;
pub use driver_mon::IpmDriver;
pub use export::{
    validate_chrome_trace, Banner, ChromeTrace, Export, ExportError, ExportRank, ExportSource,
    Exporter, Html, RegionReport, TraceStats, Xml,
};
#[cfg(feature = "otlp")]
pub use export::{validate_otlp, Otlp, OtlpStats};
pub use hostidle::{discover_blocking_set, render_probe_table, BlockingProbe};
pub use io_mon::IpmIo;
pub use ktt::{CompletedKernel, Ktt, KttCheckPolicy};
pub use monitor::{FamilyDelta, Ipm, IpmConfig, Snapshot, TraceDelta};
pub use mpi_mon::IpmMpi;
pub use numlib_mon::{IpmBlas, IpmFft};
pub use papi::{BoundResource, CounterRow, GpuCounterReport};
#[cfg(feature = "otlp")]
pub use parse::otlp_from_xml;
pub use parse::{banner_from_xml, chrome_trace_from_xml, cluster_banner_from_xml};
pub use profile::{classify, EventFamily, MonitorInfo, ProfileEntry, RankProfile};
pub use sig::{EventSignature, SigKey};
pub use table::PerfTable;
pub use timeline::render_timeline;
pub use trace::{TraceCounters, TraceKind, TraceRank, TraceRecord, TraceRing};
pub use xml::{from_xml, to_xml, trace_epoch_from_xml, trace_from_xml, XmlError};

// Pre-pipeline names, kept for external compatibility only (every one is a
// deprecated shim over the `export` builder).
#[allow(deprecated)]
pub use compat::{
    chrome_trace, html_report, render_banner, render_cluster_banner, render_region_report,
    to_xml_with_trace, to_xml_with_trace_at,
};
