//! `ipm_parse` — the offline report tool, as a CLI (paper §II).
//!
//! Reads one or more per-rank IPM XML logs and regenerates reports:
//!
//! ```text
//! ipm_parse profile.xml                    # single-rank banner
//! ipm_parse -b rank*.xml                   # cluster banner
//! ipm_parse -html out.html rank*.xml       # HTML page
//! ipm_parse -cube rank*.xml                # CUBE text view
//! ipm_parse -cubexml rank*.xml             # CUBE XML document
//! ipm_parse trace rank*.xml                # Chrome/Perfetto trace JSON
//! ```

use ipm_core::{
    build_cube, chrome_trace_from_xml, cube_to_xml, from_xml, html_report, render_banner,
    render_cluster_banner, render_cube_text, validate_chrome_trace, ClusterReport,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ipm_parse [-b | -html <out.html> | -cube | -cubexml | trace] <profile.xml>..."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let (mode, html_out, files): (&str, Option<String>, &[String]) = match args[0].as_str() {
        "-b" => ("banner", None, &args[1..]),
        "-html" => {
            if args.len() < 3 {
                return usage();
            }
            ("html", Some(args[1].clone()), &args[2..])
        }
        "-cube" => ("cube", None, &args[1..]),
        "-cubexml" => ("cubexml", None, &args[1..]),
        "trace" | "-trace" => ("trace", None, &args[1..]),
        _ => ("banner", None, &args[..]),
    };
    if files.is_empty() {
        return usage();
    }

    if mode == "trace" {
        let mut xmls = Vec::new();
        for path in files {
            match std::fs::read_to_string(path) {
                Ok(s) => xmls.push(s),
                Err(e) => {
                    eprintln!("ipm_parse: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let json = match chrome_trace_from_xml(&xmls) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("ipm_parse: {e}");
                return ExitCode::FAILURE;
            }
        };
        match validate_chrome_trace(&json) {
            Ok(stats) => eprintln!(
                "ipm_parse: trace ok — {} slices, {} ranks, {} lanes, {} flows",
                stats.slices, stats.processes, stats.lanes, stats.flow_pairs
            ),
            Err(e) => {
                eprintln!("ipm_parse: internal error, produced invalid trace: {e}");
                return ExitCode::FAILURE;
            }
        }
        print!("{json}");
        return ExitCode::SUCCESS;
    }

    let mut profiles = Vec::new();
    for path in files {
        let xml = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ipm_parse: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match from_xml(&xml) {
            Ok(p) => profiles.push(p),
            Err(e) => {
                eprintln!("ipm_parse: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // nodes: infer from distinct hosts
    let nodes = {
        let mut hosts: Vec<&str> = profiles.iter().map(|p| p.host.as_str()).collect();
        hosts.sort_unstable();
        hosts.dedup();
        hosts.len().max(1)
    };

    match mode {
        "banner" if profiles.len() == 1 => print!("{}", render_banner(&profiles[0], 0)),
        "banner" => {
            let report = ClusterReport::from_profiles(profiles, nodes);
            print!("{}", render_cluster_banner(&report, 0));
        }
        "html" => {
            let html = html_report(&profiles, nodes);
            let out = html_out.expect("checked");
            if let Err(e) = std::fs::write(&out, html) {
                eprintln!("ipm_parse: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("ipm_parse: wrote {out}");
        }
        "cube" | "cubexml" => {
            let report = ClusterReport::from_profiles(profiles, nodes);
            let cube = build_cube(&report);
            if mode == "cube" {
                print!("{}", render_cube_text(&cube));
            } else {
                print!("{}", cube_to_xml(&cube, &report));
            }
        }
        _ => unreachable!(),
    }
    ExitCode::SUCCESS
}
