//! `ipm_parse` — the offline report tool, as a CLI (paper §II).
//!
//! Reads one or more per-rank IPM XML logs and regenerates reports:
//!
//! ```text
//! ipm_parse profile.xml                    # single-rank banner
//! ipm_parse -b rank*.xml                   # cluster banner
//! ipm_parse -html out.html rank*.xml       # HTML page
//! ipm_parse -cube rank*.xml                # CUBE text view
//! ipm_parse -cubexml rank*.xml             # CUBE XML document
//! ipm_parse trace rank*.xml                # Chrome/Perfetto trace JSON
//! ipm_parse otlp rank*.xml                 # OTLP resourceSpans JSON
//! ```

use ipm_core::export::{Banner, Export, Html};
use ipm_core::parse::export_from_xml;
use ipm_core::{
    build_cube, cube_to_xml, from_xml, render_cube_text, validate_chrome_trace, ChromeTrace,
    ClusterReport,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ipm_parse [-b | -html <out.html> | -cube | -cubexml | trace | otlp] <profile.xml>..."
    );
    ExitCode::FAILURE
}

fn read_all(files: &[String]) -> Result<Vec<String>, ExitCode> {
    let mut xmls = Vec::new();
    for path in files {
        match std::fs::read_to_string(path) {
            Ok(s) => xmls.push(s),
            Err(e) => {
                eprintln!("ipm_parse: cannot read {path}: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    Ok(xmls)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let (mode, html_out, files): (&str, Option<String>, &[String]) = match args[0].as_str() {
        "-b" => ("banner", None, &args[1..]),
        "-html" => {
            if args.len() < 3 {
                return usage();
            }
            ("html", Some(args[1].clone()), &args[2..])
        }
        "-cube" => ("cube", None, &args[1..]),
        "-cubexml" => ("cubexml", None, &args[1..]),
        "trace" | "-trace" => ("trace", None, &args[1..]),
        "otlp" | "-otlp" => ("otlp", None, &args[1..]),
        _ => ("banner", None, &args[..]),
    };
    if files.is_empty() {
        return usage();
    }

    if mode == "trace" || mode == "otlp" {
        let xmls = match read_all(files) {
            Ok(x) => x,
            Err(code) => return code,
        };
        let export = match export_from_xml(&xmls) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("ipm_parse: {e}");
                return ExitCode::FAILURE;
            }
        };
        let json = if mode == "trace" {
            let json = export.to(ChromeTrace).expect("ranks present");
            match validate_chrome_trace(&json) {
                Ok(stats) => eprintln!(
                    "ipm_parse: trace ok — {} slices, {} ranks, {} lanes, {} flows",
                    stats.slices, stats.processes, stats.lanes, stats.flow_pairs
                ),
                Err(e) => {
                    eprintln!("ipm_parse: internal error, produced invalid trace: {e}");
                    return ExitCode::FAILURE;
                }
            }
            json
        } else {
            #[cfg(feature = "otlp")]
            {
                let json = export.to(ipm_core::export::Otlp).expect("ranks present");
                match ipm_core::export::validate_otlp(&json) {
                    Ok(stats) => eprintln!(
                        "ipm_parse: otlp ok — {} spans, {} ranks, {} links, {} summaries",
                        stats.spans, stats.resources, stats.links, stats.summary_spans
                    ),
                    Err(e) => {
                        eprintln!("ipm_parse: internal error, produced invalid OTLP: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                json
            }
            #[cfg(not(feature = "otlp"))]
            {
                eprintln!("ipm_parse: built without the `otlp` feature");
                return ExitCode::FAILURE;
            }
        };
        print!("{json}");
        return ExitCode::SUCCESS;
    }

    let mut profiles = Vec::new();
    for path in files {
        let xml = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ipm_parse: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match from_xml(&xml) {
            Ok(p) => profiles.push(p),
            Err(e) => {
                eprintln!("ipm_parse: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match mode {
        "banner" => {
            // node count is inferred from the distinct hosts by the builder
            let banner = Export::from_profiles(profiles)
                .to(Banner)
                .expect("profiles present");
            print!("{banner}");
        }
        "html" => {
            let html = Export::from_profiles(profiles)
                .to(Html)
                .expect("profiles present");
            let out = html_out.expect("checked");
            if let Err(e) = std::fs::write(&out, html) {
                eprintln!("ipm_parse: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("ipm_parse: wrote {out}");
        }
        "cube" | "cubexml" => {
            let nodes = {
                let mut hosts: Vec<&str> = profiles.iter().map(|p| p.host.as_str()).collect();
                hosts.sort_unstable();
                hosts.dedup();
                hosts.len().max(1)
            };
            let report = ClusterReport::from_profiles(profiles, nodes);
            let cube = build_cube(&report);
            if mode == "cube" {
                print!("{}", render_cube_text(&cube));
            } else {
                print!("{}", cube_to_xml(&cube, &report));
            }
        }
        _ => unreachable!(),
    }
    ExitCode::SUCCESS
}
