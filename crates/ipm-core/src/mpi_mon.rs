//! The monitored MPI API — IPM's PMPI-style interposition layer.
//!
//! IPM predates this paper as an MPI profiler; the CUDA work of the paper
//! plugs into the same hash table. [`IpmMpi`] wraps a bare [`Rank`] (or any
//! other [`MpiApi`]) so each call is timed and its message size recorded.

use crate::facade::FacadeCore;
use crate::monitor::Ipm;
use ipm_interpose::{site, CallHandle};
use ipm_mpi_sim::{MpiApi, MpiResult, ReduceOp, Request};
use std::sync::Arc;

/// The monitored MPI facade.
pub struct IpmMpi<M: MpiApi> {
    core: FacadeCore,
    inner: M,
}

impl<M: MpiApi> IpmMpi<M> {
    /// Install monitoring around `inner`. Attaching to the world is the
    /// rank's `MPI_Init` return: the first instant every rank has passed
    /// through, so it pins the cluster clock-alignment epoch trace
    /// exporters line lanes up on (first call wins if the context is
    /// shared by several facades).
    pub fn new(ipm: Arc<Ipm>, inner: M) -> Self {
        ipm.mark_epoch();
        Self {
            core: FacadeCore::new(ipm, None),
            inner,
        }
    }

    /// The wrapped API.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The monitoring context.
    pub fn ipm(&self) -> &Arc<Ipm> {
        self.core.ipm()
    }

    fn wrapped<R>(&self, call: CallHandle, bytes: u64, real: impl FnOnce() -> R) -> R {
        self.core.wrapped(call, bytes, real)
    }

    /// Variant for calls sized by their *result* (`MPI_Recv`: the payload
    /// arrives as the return value, so the byte attribute is measured after
    /// the real call completes).
    fn wrapped_sized<R>(
        &self,
        call: CallHandle,
        real: impl FnOnce() -> R,
        bytes_of: impl FnOnce(&R) -> u64,
    ) -> R {
        self.core.wrapped_sized(call, real, bytes_of)
    }
}

impl<M: MpiApi> MpiApi for IpmMpi<M> {
    fn mpi_comm_rank(&self) -> usize {
        // rank/size queries are not timed by IPM (no useful signal)
        self.inner.mpi_comm_rank()
    }

    fn mpi_comm_size(&self) -> usize {
        self.inner.mpi_comm_size()
    }

    fn mpi_send(&self, dest: usize, tag: i32, data: &[u8]) -> MpiResult<()> {
        self.wrapped(site!("MPI_Send"), data.len() as u64, || {
            self.inner.mpi_send(dest, tag, data)
        })
    }

    fn mpi_recv(&self, src: Option<usize>, tag: i32) -> MpiResult<(usize, Vec<u8>)> {
        self.wrapped_sized(
            site!("MPI_Recv"),
            || self.inner.mpi_recv(src, tag),
            |r| r.as_ref().map_or(0, |(_, data)| data.len() as u64),
        )
    }

    fn mpi_isend(&self, dest: usize, tag: i32, data: &[u8]) -> MpiResult<Request> {
        self.wrapped(site!("MPI_Isend"), data.len() as u64, || {
            self.inner.mpi_isend(dest, tag, data)
        })
    }

    fn mpi_irecv(&self, src: Option<usize>, tag: i32) -> MpiResult<Request> {
        self.wrapped(site!("MPI_Irecv"), 0, || self.inner.mpi_irecv(src, tag))
    }

    fn mpi_wait(&self, req: &mut Request) -> MpiResult<Option<(usize, Vec<u8>)>> {
        // completing a posted receive delivers the payload here, so this is
        // where the bytes MPI_Irecv could not know get attributed
        self.wrapped_sized(
            site!("MPI_Wait"),
            || self.inner.mpi_wait(req),
            |r| match r {
                Ok(Some((_, data))) => data.len() as u64,
                _ => 0,
            },
        )
    }

    fn mpi_barrier(&self) -> MpiResult<()> {
        self.wrapped(site!("MPI_Barrier"), 0, || self.inner.mpi_barrier())
    }

    fn mpi_bcast(&self, root: usize, data: Vec<u8>) -> MpiResult<Vec<u8>> {
        let bytes = data.len() as u64;
        self.wrapped(site!("MPI_Bcast"), bytes, || {
            self.inner.mpi_bcast(root, data)
        })
    }

    fn mpi_reduce_f64(
        &self,
        root: usize,
        data: &[f64],
        op: ReduceOp,
    ) -> MpiResult<Option<Vec<f64>>> {
        self.wrapped(site!("MPI_Reduce"), 8 * data.len() as u64, || {
            self.inner.mpi_reduce_f64(root, data, op)
        })
    }

    fn mpi_allreduce_f64(&self, data: &[f64], op: ReduceOp) -> MpiResult<Vec<f64>> {
        self.wrapped(site!("MPI_Allreduce"), 8 * data.len() as u64, || {
            self.inner.mpi_allreduce_f64(data, op)
        })
    }

    fn mpi_gather(&self, root: usize, data: &[u8]) -> MpiResult<Option<Vec<Vec<u8>>>> {
        self.wrapped(site!("MPI_Gather"), data.len() as u64, || {
            self.inner.mpi_gather(root, data)
        })
    }

    fn mpi_allgather(&self, data: &[u8]) -> MpiResult<Vec<Vec<u8>>> {
        self.wrapped(site!("MPI_Allgather"), data.len() as u64, || {
            self.inner.mpi_allgather(data)
        })
    }

    fn mpi_alltoall(&self, data: &[u8]) -> MpiResult<Vec<u8>> {
        self.wrapped(site!("MPI_Alltoall"), data.len() as u64, || {
            self.inner.mpi_alltoall(data)
        })
    }

    fn mpi_wtime(&self) -> f64 {
        self.inner.mpi_wtime()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::IpmConfig;
    use ipm_mpi_sim::World;

    #[test]
    fn mpi_calls_are_timed_and_sized() {
        let profiles = World::run(2, |rank| {
            let ipm = Ipm::new(rank.clock().clone(), IpmConfig::default());
            ipm.set_metadata(rank.rank(), rank.size(), "dirac00", "test");
            let mpi = IpmMpi::new(ipm.clone(), rank);
            if mpi.mpi_comm_rank() == 0 {
                mpi.mpi_send(1, 0, &vec![0u8; 4096]).unwrap();
            } else {
                mpi.mpi_recv(Some(0), 0).unwrap();
            }
            mpi.mpi_barrier().unwrap();
            ipm.profile()
        });
        let p0 = &profiles[0];
        assert_eq!(p0.count_of("MPI_Send"), 1);
        let send = p0.entries.iter().find(|e| e.name == "MPI_Send").unwrap();
        assert_eq!(send.bytes, 4096);
        assert_eq!(profiles[1].count_of("MPI_Recv"), 1);
        let recv = profiles[1]
            .entries
            .iter()
            .find(|e| e.name == "MPI_Recv")
            .unwrap();
        assert_eq!(recv.bytes, 4096, "recv payload size measured from result");
        for p in &profiles {
            assert_eq!(p.count_of("MPI_Barrier"), 1);
            assert!(p.comm_fraction() > 0.0);
        }
    }

    #[test]
    fn recv_wait_time_is_attributed_to_recv() {
        let profiles = World::run(2, |rank| {
            let ipm = Ipm::new(rank.clock().clone(), IpmConfig::default());
            let mpi = IpmMpi::new(ipm.clone(), rank);
            if mpi.mpi_comm_rank() == 0 {
                mpi.inner().compute(0.5); // sender is late
                mpi.mpi_send(1, 0, b"late").unwrap();
            } else {
                mpi.mpi_recv(Some(0), 0).unwrap();
            }
            ipm.profile()
        });
        let recv = profiles[1].time_of("MPI_Recv");
        assert!(recv >= 0.5, "recv wait not captured: {recv}");
    }

    #[test]
    fn collectives_record_payload_bytes() {
        let profiles = World::run(3, |rank| {
            let ipm = Ipm::new(rank.clock().clone(), IpmConfig::default());
            let mpi = IpmMpi::new(ipm.clone(), rank);
            mpi.mpi_allreduce_f64(&[0.0; 128], ReduceOp::Sum).unwrap();
            mpi.mpi_gather(0, &[0u8; 64]).unwrap();
            ipm.profile()
        });
        for p in &profiles {
            let ar = p
                .entries
                .iter()
                .find(|e| e.name == "MPI_Allreduce")
                .unwrap();
            assert_eq!(ar.bytes, 1024);
            let g = p.entries.iter().find(|e| e.name == "MPI_Gather").unwrap();
            assert_eq!(g.bytes, 64);
        }
    }

    #[test]
    fn nonblocking_pair_roundtrips_through_monitor() {
        let ok = World::run(2, |rank| {
            let ipm = Ipm::new(rank.clock().clone(), IpmConfig::default());
            let mpi = IpmMpi::new(ipm.clone(), rank);
            if mpi.mpi_comm_rank() == 0 {
                let mut req = mpi.mpi_isend(1, 9, b"x").unwrap();
                mpi.mpi_wait(&mut req).unwrap();
                ipm.profile().count_of("MPI_Isend") == 1
            } else {
                let mut req = mpi.mpi_irecv(Some(0), 9).unwrap();
                let got = mpi.mpi_wait(&mut req).unwrap();
                got.unwrap().1 == b"x" && ipm.profile().count_of("MPI_Wait") == 1
            }
        });
        assert!(ok.iter().all(|&b| b));
    }
}
