//! Chrome trace-event backend of the export pipeline.
//!
//! Merges host-side trace records with the device ground truth (`gpu-sim`
//! [`ProfRecord`]s) into Chrome trace-event JSON loadable in Perfetto /
//! `chrome://tracing`: one process per rank, a host lane plus one lane per
//! stream, and flow arrows linking each `cudaLaunch` to the kernel
//! execution it submitted (via the correlation id the runtime assigns at
//! enqueue). [`validate_chrome_trace`] is the matching structural
//! validator (matched `B`/`E` pairs, per-lane timestamp monotonicity,
//! resolved flow bindings) shared by tests and the `ipm_parse trace`
//! subcommand.

use crate::jsonw::{esc, parse_json, Json};
use crate::trace::{TraceKind, TraceRank, TraceRecord};
use ipm_gpu_sim::ProfKind;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Microseconds for the `ts` field (Chrome's unit).
fn us(t: f64) -> f64 {
    t * 1e6
}

/// An interval destined for one lane.
struct LaneSlice {
    name: String,
    begin: f64,
    end: f64,
    args: Vec<(&'static str, String)>,
    /// Flow id to terminate at this slice's begin (0 = none).
    flow_in: u64,
    /// Flow id to originate at this slice's begin (0 = none).
    flow_out: u64,
    /// Compaction summary: emitted as a Chrome `X` (complete) event rather
    /// than a `B`/`E` pair. Summaries span `first_begin..last_end` of an
    /// interleaved subsequence (writers rotate ring stripes, each stripe
    /// compacts its own subsequence), so two stripes' summaries can
    /// *partially* overlap — something `B`/`E` nesting cannot express. An
    /// `X` event carries its own `dur` and takes no part in the nesting
    /// stack, so overlap is harmless.
    summary: bool,
}

/// Emit one lane's slices: raw records as properly nested `B`/`E` pairs,
/// summaries as self-contained `X` events (JSON object strings). Events
/// are produced in `(begin, -end)` order and every event's `ts` is either
/// the current slice's begin or a pending end ≤ it, so timestamps are
/// non-decreasing even when summary spans partially overlap raw slices or
/// each other.
fn emit_lane(pid: usize, tid: u32, mut slices: Vec<LaneSlice>, out: &mut Vec<String>) {
    slices.sort_by(|a, b| {
        a.begin
            .partial_cmp(&b.begin)
            .expect("finite timestamps")
            .then(b.end.partial_cmp(&a.end).expect("finite timestamps"))
    });
    // stack of pending end timestamps with their slice names
    let mut stack: Vec<(f64, String)> = Vec::new();
    let close = |stack: &mut Vec<(f64, String)>, upto: f64, out: &mut Vec<String>| {
        while let Some((end, _)) = stack.last() {
            if *end <= upto {
                let (end, name) = stack.pop().expect("checked non-empty");
                out.push(format!(
                    "{{\"ph\":\"E\",\"name\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{}}}",
                    esc(&name),
                    pid,
                    tid,
                    us(end)
                ));
            } else {
                break;
            }
        }
    };
    for s in slices {
        close(&mut stack, s.begin, out);
        if s.flow_in != 0 {
            out.push(format!(
                "{{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"launch\",\"name\":\"launch\",\"id\":{},\"pid\":{},\"tid\":{},\"ts\":{}}}",
                s.flow_in, pid, tid, us(s.begin)
            ));
        }
        if s.flow_out != 0 {
            out.push(format!(
                "{{\"ph\":\"s\",\"cat\":\"launch\",\"name\":\"launch\",\"id\":{},\"pid\":{},\"tid\":{},\"ts\":{}}}",
                s.flow_out, pid, tid, us(s.begin)
            ));
        }
        let mut args = String::new();
        for (i, (k, v)) in s.args.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            let _ = write!(args, "\"{}\":{}", k, v);
        }
        if s.summary {
            out.push(format!(
                "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
                esc(&s.name),
                pid,
                tid,
                us(s.begin),
                us(s.end - s.begin),
                args
            ));
        } else {
            out.push(format!(
                "{{\"ph\":\"B\",\"name\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{},\"args\":{{{}}}}}",
                esc(&s.name),
                pid,
                tid,
                us(s.begin),
                args
            ));
            stack.push((s.end, s.name));
        }
    }
    close(&mut stack, f64::INFINITY, out);
}

/// Append the aggregate fields of a summary record to a slice's args, so
/// Perfetto shows how many events a compacted slice stands for.
fn summary_args(t: &TraceRecord, args: &mut Vec<(&'static str, String)>) {
    if let Some(a) = t.agg {
        args.push(("count", a.count.to_string()));
        args.push(("total_us", format!("{}", us(a.total))));
        args.push(("min_us", format!("{}", us(a.min))));
        args.push(("max_us", format!("{}", us(a.max))));
    }
}

fn meta_event(pid: usize, tid: Option<u32>, which: &str, label: &str) -> String {
    match tid {
        Some(tid) => format!(
            "{{\"ph\":\"M\",\"name\":\"{}\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            which,
            pid,
            tid,
            esc(label)
        ),
        None => format!(
            "{{\"ph\":\"M\",\"name\":\"{}\",\"pid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            which,
            pid,
            esc(label)
        ),
    }
}

/// Render ranks into Chrome trace-event JSON (the `{"traceEvents": [...]}`
/// object form). One process per rank; `tid 0` is the host lane and
/// `tid 1 + s` is device stream `s`. `cudaLaunch` slices originate flow
/// arrows (`ph:"s"`) that terminate (`ph:"f"`) at the kernel slice with the
/// same correlation id. Raw records render as `B`/`E` pairs; compaction
/// summaries render as `X` (complete) events carrying their aggregate in
/// `args`, since summaries from different ring stripes may partially
/// overlap in time.
pub(crate) fn chrome_trace_json(ranks: &[TraceRank]) -> String {
    let mut events: Vec<String> = Vec::new();
    for r in ranks {
        let pid = r.rank;
        let label = if r.host.is_empty() {
            format!("rank {}", r.rank)
        } else {
            format!("rank {} ({})", r.rank, r.host)
        };
        events.push(meta_event(pid, None, "process_name", &label));
        events.push(meta_event(pid, Some(0), "thread_name", "host"));

        // Which correlation ids have a device-side slice to land on?
        let use_prof = !r.prof.is_empty();
        let mut device_corrs: std::collections::HashSet<u64> = std::collections::HashSet::new();
        if use_prof {
            device_corrs.extend(r.prof.iter().filter(|p| p.corr != 0).map(|p| p.corr));
        } else {
            device_corrs.extend(
                r.records
                    .iter()
                    .filter(|t| t.kind == TraceKind::KernelExec && t.corr != 0)
                    .map(|t| t.corr),
            );
        }

        // Host lane: wrapped calls + host-idle intervals.
        let host_slices: Vec<LaneSlice> = r
            .records
            .iter()
            .filter(|t| t.kind != TraceKind::KernelExec)
            .map(|t| {
                let mut args: Vec<(&'static str, String)> = Vec::new();
                if t.bytes > 0 {
                    args.push(("bytes", t.bytes.to_string()));
                }
                args.push(("region", t.region.to_string()));
                summary_args(t, &mut args);
                LaneSlice {
                    name: t.name.to_string(),
                    begin: t.begin - r.epoch,
                    end: t.end - r.epoch,
                    args,
                    flow_in: 0,
                    flow_out: if t.corr != 0 && device_corrs.contains(&t.corr) {
                        t.corr
                    } else {
                        0
                    },
                    summary: t.is_summary(),
                }
            })
            .collect();
        emit_lane(pid, 0, host_slices, &mut events);

        // Device lanes: one per stream, from the profiler ground truth when
        // available, otherwise from KTT KernelExec records.
        let mut lanes: HashMap<u32, Vec<LaneSlice>> = HashMap::new();
        if use_prof {
            for p in &r.prof {
                let args = vec![("gputime_us", format!("{}", p.gputime * 1e6))];
                lanes.entry(p.stream.0).or_default().push(LaneSlice {
                    name: p.method.clone(),
                    begin: p.start - r.epoch,
                    end: p.start + p.gputime - r.epoch,
                    args,
                    flow_in: if p.kind == ProfKind::Kernel {
                        p.corr
                    } else {
                        0
                    },
                    flow_out: 0,
                    summary: false,
                });
            }
        } else {
            for t in r.records.iter().filter(|t| t.kind == TraceKind::KernelExec) {
                let stream = t.stream.unwrap_or(0);
                let name = t
                    .detail
                    .as_deref()
                    .map(str::to_owned)
                    .unwrap_or_else(|| t.name.to_string());
                let mut args = vec![("region", t.region.to_string())];
                summary_args(t, &mut args);
                lanes.entry(stream).or_default().push(LaneSlice {
                    name,
                    begin: t.begin - r.epoch,
                    end: t.end - r.epoch,
                    args,
                    flow_in: t.corr,
                    flow_out: 0,
                    summary: t.is_summary(),
                });
            }
        }
        let mut stream_ids: Vec<u32> = lanes.keys().copied().collect();
        stream_ids.sort_unstable();
        for s in stream_ids {
            let tid = 1 + s;
            events.push(meta_event(
                pid,
                Some(tid),
                "thread_name",
                &format!("stream {s}"),
            ));
            emit_lane(
                pid,
                tid,
                lanes.remove(&s).expect("key present"),
                &mut events,
            );
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Structural facts about a validated trace, for assertions and the CLI
/// summary line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Completed `B`/`E` slice pairs.
    pub slices: usize,
    /// Distinct processes (ranks).
    pub processes: usize,
    /// Distinct `(pid, tid)` lanes carrying at least one slice.
    pub lanes: usize,
    /// Flow arrows with both a start (`s`) and a finish (`f`) binding.
    pub flow_pairs: usize,
}

/// Validate Chrome trace-event JSON structurally: the document parses, every
/// `B` has a matching `E` (same lane, same name, LIFO order), every `X`
/// carries a name and a finite non-negative `dur`, timestamps are monotone
/// non-decreasing per lane, and every flow start resolves to a flow finish
/// (and vice versa). Returns summary stats on success (`X` events count as
/// completed slices).
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;

    let mut stacks: HashMap<(u64, u64), Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut lanes_with_slices: std::collections::HashSet<(u64, u64)> =
        std::collections::HashSet::new();
    let mut processes: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut flow_starts: HashMap<u64, usize> = HashMap::new();
    let mut flow_finishes: HashMap<u64, usize> = HashMap::new();
    let mut slices = 0usize;

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing pid"))? as u64;
        processes.insert(pid);
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let tid = ev
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing tid"))? as u64;
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing ts"))?;
        if !ts.is_finite() {
            return Err(format!("event {i}: non-finite ts"));
        }
        let lane = (pid, tid);
        if let Some(prev) = last_ts.get(&lane) {
            if ts < *prev {
                return Err(format!(
                    "event {i}: lane ({pid},{tid}) timestamp regressed {prev} -> {ts}"
                ));
            }
        }
        last_ts.insert(lane, ts);
        match ph {
            "B" => {
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("event {i}: B without name"))?;
                stacks.entry(lane).or_default().push(name.to_owned());
                lanes_with_slices.insert(lane);
            }
            "E" => {
                let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
                let stack = stacks.entry(lane).or_default();
                match stack.pop() {
                    Some(open) if name.is_empty() || open == name => slices += 1,
                    Some(open) => {
                        return Err(format!(
                            "event {i}: E '{name}' does not match open B '{open}' on lane ({pid},{tid})"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "event {i}: E '{name}' with no open B on lane ({pid},{tid})"
                        ))
                    }
                }
            }
            "s" => {
                let id = ev
                    .get("id")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: flow start without id"))?
                    as u64;
                *flow_starts.entry(id).or_default() += 1;
            }
            "f" => {
                let id = ev
                    .get("id")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: flow finish without id"))?
                    as u64;
                *flow_finishes.entry(id).or_default() += 1;
            }
            "X" => {
                ev.get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("event {i}: X without name"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or(format!("event {i}: X without dur"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i}: X with bad dur {dur}"));
                }
                slices += 1;
                lanes_with_slices.insert(lane);
            }
            "i" | "C" => {} // tolerated, unused by our exporter
            other => return Err(format!("event {i}: unknown phase '{other}'")),
        }
    }

    for (lane, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "lane ({},{}) has {} unclosed B events (first: '{}')",
                lane.0,
                lane.1,
                stack.len(),
                stack[0]
            ));
        }
    }
    let mut flow_pairs = 0usize;
    for (id, n) in &flow_starts {
        match flow_finishes.get(id) {
            Some(m) if m == n => flow_pairs += n,
            _ => {
                return Err(format!(
                    "flow id {id}: {n} starts without matching finishes"
                ))
            }
        }
    }
    for id in flow_finishes.keys() {
        if !flow_starts.contains_key(id) {
            return Err(format!("flow id {id}: finish without start"));
        }
    }

    Ok(TraceStats {
        slices,
        processes: processes.len(),
        lanes: lanes_with_slices.len(),
        flow_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::{CompactPolicy, TraceAgg};
    use crate::export::{ChromeTrace, Export};
    use crate::trace::{TraceRing, DEFAULT_TRACE_SHARDS};
    use ipm_gpu_sim::{ProfRecord, StreamId};
    use std::sync::Arc;

    fn call(name: &str, begin: f64, end: f64) -> TraceRecord {
        TraceRecord {
            kind: TraceKind::Call,
            name: Arc::from(name),
            detail: None,
            begin,
            end,
            bytes: 0,
            region: 0,
            stream: None,
            corr: 0,
            agg: None,
        }
    }

    fn export(ranks: Vec<TraceRank>) -> String {
        let mut e = Export::new();
        for r in ranks {
            e = e.with_trace_rank(r);
        }
        e.to(ChromeTrace).expect("chrome export")
    }

    #[test]
    fn multi_stripe_compacted_burst_exports_valid_chrome_trace() {
        // Writers rotate stripes, so with the default 8 stripes a
        // same-signature burst lands as interleaved subsequences; each
        // stripe compacts its own subsequence into summaries whose time
        // spans partially overlap across stripes. The exporter must render
        // those as X events — B/E nesting cannot express partial overlap
        // (regression: E timestamps regressed and the validator rejected
        // the exporter's own output).
        let ring = TraceRing::with_policy(
            1 << 12,
            DEFAULT_TRACE_SHARDS,
            CompactPolicy::with_high_water(16),
        );
        for i in 0..2000 {
            let t = i as f64 * 1e-3;
            assert!(ring.push(call("cudaLaunch", t, t + 5e-4)));
        }
        assert!(ring.compacted_away() > 0, "burst must compact");
        let records = ring.drain();
        let summaries: Vec<&TraceRecord> = records.iter().filter(|r| r.is_summary()).collect();
        assert!(
            summaries
                .windows(2)
                .any(|w| w[1].begin < w[0].end && w[0].begin < w[1].end),
            "want partially overlapping summaries from several stripes"
        );
        let rank = TraceRank {
            rank: 0,
            host: String::new(),
            epoch: 0.0,
            records,
            prof: Vec::new(),
        };
        let json = export(vec![rank]);
        let stats = validate_chrome_trace(&json).expect("multi-stripe compacted export invalid");
        assert!(stats.slices > 0);
    }

    #[test]
    fn epoch_shifts_exported_timestamps() {
        let rank = TraceRank {
            rank: 0,
            host: String::new(),
            epoch: 10.0,
            records: vec![call("cudaMalloc", 10.5, 11.0)],
            prof: Vec::new(),
        };
        let json = export(vec![rank]);
        validate_chrome_trace(&json).expect("valid trace");
        // 10.5s on the rank clock is 0.5s after the epoch -> ts 500000 us
        assert!(json.contains("\"ts\":500000"), "{json}");
        assert!(!json.contains("\"ts\":10500000"), "{json}");
    }

    #[test]
    fn summary_slices_carry_count_args() {
        let mut rec = call("cudaLaunch", 1.0, 3.0);
        rec.agg = Some(TraceAgg {
            count: 17,
            total: 1.25,
            min: 0.05,
            max: 0.2,
            exemplar: (1.4, 1.6),
        });
        let rank = TraceRank {
            rank: 0,
            host: String::new(),
            epoch: 0.0,
            records: vec![rec],
            prof: Vec::new(),
        };
        let json = export(vec![rank]);
        validate_chrome_trace(&json).expect("valid trace");
        assert!(json.contains("\"count\":17"), "{json}");
        assert!(json.contains("\"total_us\":1250000"), "{json}");
    }

    #[test]
    fn chrome_trace_is_valid_and_has_flows() {
        let mut launch = call("cudaLaunch", 1.0, 1.00001);
        launch.corr = 42;
        let mut exec = TraceRecord {
            kind: TraceKind::KernelExec,
            name: Arc::from("@CUDA_EXEC_STRM00"),
            detail: Some(Arc::from("square")),
            begin: 1.0001,
            end: 2.15,
            bytes: 0,
            region: 0,
            stream: Some(0),
            corr: 42,
            agg: None,
        };
        let rank = TraceRank {
            rank: 0,
            host: "dirac00".to_owned(),
            epoch: 0.0,
            records: vec![
                call("cudaMalloc", 0.0, 0.5),
                launch.clone(),
                call("cudaMemcpy(D2H)", 2.2, 2.3),
            ],
            prof: Vec::new(),
        };
        let mut with_exec = rank.clone();
        with_exec.records.push(exec.clone());
        let json = export(vec![with_exec]);
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.processes, 1);
        assert_eq!(stats.lanes, 2, "host lane + one stream lane");
        assert_eq!(stats.slices, 4);
        assert_eq!(stats.flow_pairs, 1);

        // prof records take precedence for device lanes when present
        exec.corr = 0;
        launch.corr = 7;
        let prof_rank = TraceRank {
            rank: 1,
            host: String::new(),
            epoch: 0.0,
            records: vec![launch],
            prof: vec![ProfRecord {
                method: "square".to_owned(),
                kind: ProfKind::Kernel,
                stream: StreamId::DEFAULT,
                start: 1.0002,
                gputime: 1.15,
                cputime: 1e-5,
                corr: 7,
            }],
        };
        let json = export(vec![prof_rank]);
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.flow_pairs, 1);
    }

    #[test]
    fn nested_and_adjacent_slices_emit_proper_b_e() {
        // outer call wrapping an inner call, then an adjacent one
        let rank = TraceRank {
            rank: 0,
            host: String::new(),
            epoch: 0.0,
            records: vec![
                call("cublasDgemm", 0.0, 1.0),
                call("cudaLaunch", 0.2, 0.4),
                call("cudaFree", 1.0, 1.1),
            ],
            prof: Vec::new(),
        };
        let json = export(vec![rank]);
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.slices, 3);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        // unmatched B
        let bad = r#"{"traceEvents":[{"ph":"B","name":"x","pid":0,"tid":0,"ts":1}]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("unclosed"));
        // regressed timestamps
        let bad = r#"{"traceEvents":[
            {"ph":"B","name":"x","pid":0,"tid":0,"ts":5},
            {"ph":"E","name":"x","pid":0,"tid":0,"ts":1}]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("regressed"));
        // flow start without finish
        let bad = r#"{"traceEvents":[{"ph":"s","id":3,"pid":0,"tid":0,"ts":1}]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("flow id 3"));
    }
}
