//! The unified export pipeline: one canonical view of a run, many renderings.
//!
//! The paper's §II reporting layer emits one profile through several
//! renderings (banner, XML log, `ipm_parse` HTML/CUBE). This module is the
//! single entry point for all of them: an [`ExportSource`] holds the
//! canonical per-rank view (profile + trace records + device ground truth +
//! clock epoch), an [`Exporter`] turns that view into one output format,
//! and the [`Export`] builder assembles the source from whatever the caller
//! has on hand — a live [`Ipm`] context, parsed XML logs, or raw pieces.
//!
//! ```text
//!   Ipm ──┐
//!   XML ──┼─► Export (builder) ─► ExportSource ─► Exporter::render ─► String
//!   raw ──┘        .rank(..)        per-rank:        Banner
//!                  .with_trace(..)   profile          RegionReport
//!                  .with_epoch(..)   records          Xml
//!                  .nodes(..)        prof             Html
//!                  .to(backend) ──►  epoch            ChromeTrace
//!                                                     Otlp  (feature "otlp")
//! ```
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ipm_core::export::{Banner, ChromeTrace, Export, Xml};
//! use ipm_core::{Ipm, IpmConfig, IpmCuda};
//! use ipm_gpu_sim::{CudaApi, GpuConfig, GpuRuntime};
//!
//! let rt = Arc::new(GpuRuntime::single(GpuConfig::dirac_node()));
//! let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
//! let cuda = IpmCuda::new(ipm.clone(), rt);
//! let dev = cuda.cuda_malloc(1024).unwrap();
//! cuda.cuda_free(dev).unwrap();
//!
//! let banner = Export::from(&ipm).max_rows(10).to(Banner).unwrap();
//! assert!(banner.contains("cudaMalloc"));
//! let xml = Export::from(&ipm).to(Xml).unwrap();
//! let trace = Export::from(&ipm).to(ChromeTrace).unwrap();
//! ```

pub mod chrome;
#[cfg(feature = "otlp")]
pub mod otlp;

pub use chrome::{validate_chrome_trace, TraceStats};
#[cfg(feature = "otlp")]
pub use otlp::{validate_otlp, OtlpStats};

use crate::aggregate::ClusterReport;
use crate::monitor::Ipm;
use crate::profile::RankProfile;
use crate::trace::{TraceRank, TraceRecord};
use ipm_gpu_sim::ProfRecord;
use std::sync::Arc;

/// One rank's slice of the canonical export view.
#[derive(Clone, Debug, Default)]
pub struct ExportRank {
    pub rank: usize,
    /// Host name (Perfetto process label, OTLP `host.name`).
    pub host: String,
    /// Clock-alignment epoch, virtual seconds (see [`TraceRank::epoch`]).
    pub epoch: f64,
    /// Host-side trace records (drained or snapshotted from the ring).
    pub records: Vec<TraceRecord>,
    /// Device-side ground truth from the simulator profiler, when captured.
    pub prof: Vec<ProfRecord>,
    /// The aggregated profile (hash-table contents + monitor
    /// self-accounting). Absent for trace-only sources.
    pub profile: Option<RankProfile>,
}

impl ExportRank {
    fn from_profile(p: RankProfile) -> Self {
        ExportRank {
            rank: p.rank,
            host: p.host.clone(),
            epoch: 0.0,
            records: Vec::new(),
            prof: Vec::new(),
            profile: Some(p),
        }
    }

    fn from_trace_rank(t: TraceRank) -> Self {
        ExportRank {
            rank: t.rank,
            host: t.host,
            epoch: t.epoch,
            records: t.records,
            prof: t.prof,
            profile: None,
        }
    }

    fn trace_rank(&self) -> TraceRank {
        TraceRank {
            rank: self.rank,
            host: self.host.clone(),
            epoch: self.epoch,
            records: self.records.clone(),
            prof: self.prof.clone(),
        }
    }
}

/// The canonical view every exporter renders: per-rank data plus the few
/// presentation knobs the text renderings take.
#[derive(Clone, Debug, Default)]
pub struct ExportSource {
    pub ranks: Vec<ExportRank>,
    /// Node count for cluster renderings; `None` means "infer from the
    /// distinct host names".
    pub nodes: Option<usize>,
    /// Row cap for the banner/region tables (0 = renderer default).
    pub max_rows: usize,
}

impl ExportSource {
    /// Node count: the explicit override, else the number of distinct
    /// non-empty host names (at least 1).
    pub fn node_count(&self) -> usize {
        self.nodes.unwrap_or_else(|| {
            let hosts: std::collections::HashSet<&str> = self
                .ranks
                .iter()
                .map(|r| r.host.as_str())
                .filter(|h| !h.is_empty())
                .collect();
            hosts.len().max(1)
        })
    }

    /// The profiles present, in rank order.
    pub fn profiles(&self) -> Vec<RankProfile> {
        self.ranks
            .iter()
            .filter_map(|r| r.profile.clone())
            .collect()
    }

    /// Every rank as exporter trace input.
    pub fn trace_ranks(&self) -> Vec<TraceRank> {
        self.ranks.iter().map(ExportRank::trace_rank).collect()
    }

    fn require_profiles(&self) -> Result<Vec<RankProfile>, ExportError> {
        if self.ranks.is_empty() {
            return Err(ExportError::NoRanks);
        }
        if let Some(r) = self.ranks.iter().find(|r| r.profile.is_none()) {
            return Err(ExportError::MissingProfile { rank: r.rank });
        }
        Ok(self.profiles())
    }
}

/// Why an export could not be rendered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExportError {
    /// The source holds no ranks at all.
    NoRanks,
    /// The requested rendering needs a profile this rank does not carry
    /// (trace-only source fed to a profile rendering).
    MissingProfile { rank: usize },
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::NoRanks => write!(f, "export source holds no ranks"),
            ExportError::MissingProfile { rank } => {
                write!(f, "rank {rank} carries no profile for this rendering")
            }
        }
    }
}

impl std::error::Error for ExportError {}

/// One output format of the pipeline. Implementations render the whole
/// canonical view; they never see the raw `(profile, trace, epoch)` tuples
/// the pre-pipeline free functions used to take.
pub trait Exporter {
    fn render(&self, src: &ExportSource) -> Result<String, ExportError>;
}

/// The banner rendering: the single-rank banner (paper Fig. 6) for one
/// profile, the cluster banner (Fig. 11) when several ranks are present.
pub struct Banner;

impl Exporter for Banner {
    fn render(&self, src: &ExportSource) -> Result<String, ExportError> {
        let profiles = src.require_profiles()?;
        if profiles.len() == 1 {
            Ok(crate::banner::render_banner(&profiles[0], src.max_rows))
        } else {
            let report = ClusterReport::from_profiles(profiles, src.node_count());
            Ok(crate::banner::render_cluster_banner(&report, src.max_rows))
        }
    }
}

/// The per-region breakdown report for a single rank.
pub struct RegionReport;

impl Exporter for RegionReport {
    fn render(&self, src: &ExportSource) -> Result<String, ExportError> {
        let profiles = src.require_profiles()?;
        Ok(crate::banner::render_region_report(
            &profiles[0],
            src.max_rows,
        ))
    }
}

/// The XML profiling log: one `<task>` document per rank (the on-disk
/// format `ipm_parse` consumes), embedded trace section included.
pub struct Xml;

impl Exporter for Xml {
    fn render(&self, src: &ExportSource) -> Result<String, ExportError> {
        if src.ranks.is_empty() {
            return Err(ExportError::NoRanks);
        }
        let mut out = String::new();
        for r in &src.ranks {
            let p = r
                .profile
                .as_ref()
                .ok_or(ExportError::MissingProfile { rank: r.rank })?;
            out.push_str(&crate::xml::to_xml_with_trace_at(p, &r.records, r.epoch));
        }
        Ok(out)
    }
}

/// The `ipm_parse -html`-style report page.
pub struct Html;

impl Exporter for Html {
    fn render(&self, src: &ExportSource) -> Result<String, ExportError> {
        let profiles = src.require_profiles()?;
        Ok(crate::parse::html_report(&profiles, src.node_count()))
    }
}

/// Chrome trace-event JSON (Perfetto / `chrome://tracing`).
pub struct ChromeTrace;

impl Exporter for ChromeTrace {
    fn render(&self, src: &ExportSource) -> Result<String, ExportError> {
        if src.ranks.is_empty() {
            return Err(ExportError::NoRanks);
        }
        Ok(chrome::chrome_trace_json(&src.trace_ranks()))
    }
}

/// OTLP-shaped trace JSON (`resourceSpans`), for feeding standard
/// OpenTelemetry collectors. Only present with the `otlp` feature.
#[cfg(feature = "otlp")]
pub struct Otlp;

#[cfg(feature = "otlp")]
impl Exporter for Otlp {
    fn render(&self, src: &ExportSource) -> Result<String, ExportError> {
        if src.ranks.is_empty() {
            return Err(ExportError::NoRanks);
        }
        Ok(otlp::otlp_trace_json(src))
    }
}

/// Builder assembling an [`ExportSource`] and handing it to an exporter.
///
/// Rank-scoped setters (`with_trace`, `with_prof`, `with_epoch`) apply to
/// the most recently added rank, so a multi-rank source reads as a flat
/// chain: `.rank(p0).with_trace(t0).rank(p1).with_trace(t1)`.
#[derive(Clone, Debug, Default)]
pub struct Export {
    src: ExportSource,
}

impl Export {
    /// An empty source; add ranks with [`Export::rank`] /
    /// [`Export::with_trace_rank`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A source with one profiled rank.
    pub fn from_profile(p: RankProfile) -> Self {
        Export::new().rank(p)
    }

    /// A source with one profiled rank per element, in iteration order.
    pub fn from_profiles(ps: impl IntoIterator<Item = RankProfile>) -> Self {
        Export::new().ranks(ps)
    }

    /// Append one rank from its profile.
    pub fn rank(mut self, p: RankProfile) -> Self {
        self.src.ranks.push(ExportRank::from_profile(p));
        self
    }

    /// Append one rank per profile.
    pub fn ranks(mut self, ps: impl IntoIterator<Item = RankProfile>) -> Self {
        for p in ps {
            self.src.ranks.push(ExportRank::from_profile(p));
        }
        self
    }

    /// Append a trace-only rank (no profile attached).
    pub fn with_trace_rank(mut self, t: TraceRank) -> Self {
        self.src.ranks.push(ExportRank::from_trace_rank(t));
        self
    }

    /// Attach trace records to the last added rank (creates a bare rank 0
    /// if none exists yet).
    pub fn with_trace(mut self, records: Vec<TraceRecord>) -> Self {
        self.last_rank().records = records;
        self
    }

    /// Attach device profiler ground truth to the last added rank.
    pub fn with_prof(mut self, prof: Vec<ProfRecord>) -> Self {
        self.last_rank().prof = prof;
        self
    }

    /// Set the clock-alignment epoch of the last added rank.
    pub fn with_epoch(mut self, epoch: f64) -> Self {
        self.last_rank().epoch = epoch;
        self
    }

    /// Override the node count used by cluster renderings.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.src.nodes = Some(nodes);
        self
    }

    /// Cap table rows in the banner/region renderings (0 = no cap).
    pub fn max_rows(mut self, rows: usize) -> Self {
        self.src.max_rows = rows;
        self
    }

    /// The assembled canonical view.
    pub fn source(&self) -> &ExportSource {
        &self.src
    }

    /// Render through the given backend.
    pub fn to<E: Exporter>(&self, exporter: E) -> Result<String, ExportError> {
        exporter.render(&self.src)
    }

    fn last_rank(&mut self) -> &mut ExportRank {
        if self.src.ranks.is_empty() {
            self.src.ranks.push(ExportRank::default());
        }
        self.src.ranks.last_mut().expect("non-empty")
    }
}

/// Capture a live context: its profile, a trace snapshot (the ring is left
/// intact — use [`Ipm::drain_trace`] + [`Export::with_trace`] to consume
/// instead), and its clock epoch.
impl From<&Ipm> for Export {
    fn from(ipm: &Ipm) -> Self {
        let profile = ipm.profile();
        let records = ipm.trace_snapshot();
        let epoch = ipm.epoch();
        Export::from_profile(profile)
            .with_trace(records)
            .with_epoch(epoch)
    }
}

impl From<&Arc<Ipm>> for Export {
    fn from(ipm: &Arc<Ipm>) -> Self {
        Export::from(ipm.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::IpmConfig;
    use ipm_gpu_sim::{CudaApi, GpuConfig, GpuRuntime};

    fn live_ipm() -> Arc<Ipm> {
        let rt = Arc::new(GpuRuntime::single(GpuConfig::dirac_node()));
        let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
        ipm.set_metadata(0, 1, "dirac00", "./cuda.ipm");
        let cuda = crate::cuda_mon::IpmCuda::new(ipm.clone(), rt);
        let dev = cuda.cuda_malloc(4096).unwrap();
        cuda.cuda_free(dev).unwrap();
        ipm
    }

    #[test]
    fn builder_from_live_context_feeds_every_backend() {
        let ipm = live_ipm();
        let banner = Export::from(&ipm).max_rows(10).to(Banner).unwrap();
        assert!(banner.contains("cudaMalloc"), "{banner}");

        let xml = Export::from(&ipm).to(Xml).unwrap();
        let parsed = crate::xml::from_xml(&xml).expect("roundtrip");
        assert_eq!(parsed.host, "dirac00");

        let chrome = Export::from(&ipm).to(ChromeTrace).unwrap();
        validate_chrome_trace(&chrome).expect("valid chrome trace");

        let html = Export::from(&ipm).to(Html).unwrap();
        assert!(html.contains("<html"), "{html}");

        let regions = Export::from(&ipm).to(RegionReport).unwrap();
        assert!(!regions.is_empty());
    }

    #[test]
    fn snapshot_capture_leaves_the_ring_intact() {
        let ipm = live_ipm();
        let before = ipm.monitor_info().trace_captured;
        let _ = Export::from(&ipm).to(ChromeTrace).unwrap();
        assert_eq!(ipm.monitor_info().trace_captured, before);
    }

    #[test]
    fn multi_rank_source_renders_the_cluster_banner() {
        let mut p0 = live_ipm().profile();
        p0.rank = 0;
        p0.nranks = 2;
        let mut p1 = p0.clone();
        p1.rank = 1;
        p1.host = "dirac01".to_owned();
        let banner = Export::from_profiles([p0, p1]).to(Banner).unwrap();
        assert!(banner.contains("# mpi_tasks : 2 on"), "{banner}");
    }

    #[test]
    fn profile_renderings_reject_trace_only_sources() {
        let t = TraceRank {
            rank: 3,
            ..TraceRank::default()
        };
        let e = Export::new().with_trace_rank(t);
        assert_eq!(
            e.to(Banner).unwrap_err(),
            ExportError::MissingProfile { rank: 3 }
        );
        assert_eq!(Export::new().to(Banner).unwrap_err(), ExportError::NoRanks);
        assert_eq!(
            Export::new().to(ChromeTrace).unwrap_err(),
            ExportError::NoRanks
        );
    }

    #[test]
    fn node_count_is_inferred_from_distinct_hosts() {
        let mk = |rank: usize, host: &str| {
            let mut p = live_ipm().profile();
            p.rank = rank;
            p.host = host.to_owned();
            p
        };
        let e = Export::from_profiles([mk(0, "a"), mk(1, "a"), mk(2, "b")]);
        assert_eq!(e.source().node_count(), 2);
        assert_eq!(e.nodes(3).source().node_count(), 3);
    }
}
