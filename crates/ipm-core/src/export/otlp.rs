//! OTLP-shaped trace backend (`resourceSpans` JSON), so the telemetry the
//! wrappers capture can feed standard OpenTelemetry collectors.
//!
//! The shape follows the OTLP/JSON trace encoding: one `resourceSpans`
//! entry per rank whose resource attributes identify it (`ipm.rank`,
//! `host.name`, and `ipm.command` when a profile is attached), one scope
//! (`ipm.trace`), and one span per trace record. As in the proto3 JSON
//! mapping, 64-bit integers — `intValue` attributes and the
//! `startTimeUnixNano`/`endTimeUnixNano` fields — are encoded as strings.
//! Timestamps are nanoseconds relative to the rank's clock-alignment
//! epoch (signed: records captured before the epoch legitimately go
//! negative). Span **links** are the OTLP analogue of the Chrome-trace
//! flow arrows: each `cudaLaunch` host span links to the kernel span that
//! carries the same correlation id. Compaction summaries carry their
//! aggregate as `count`/`total_us`/`min_us`/`max_us` attributes, exactly
//! like the Chrome `X` events.
//!
//! Everything is hand-rolled over [`crate::jsonw`] — no serde, no
//! OpenTelemetry SDK — and [`validate_otlp`] is the structural checker
//! mirroring [`super::validate_chrome_trace`].

use super::{ExportRank, ExportSource};
use crate::jsonw::{parse_json, quote, Json};
use crate::trace::{TraceKind, TraceRecord};
use ipm_gpu_sim::ProfKind;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Signed nanoseconds relative to the epoch, rounded to the nearest tick.
fn ns(t: f64, epoch: f64) -> i64 {
    ((t - epoch) * 1e9).round() as i64
}

fn attr_str(key: &str, val: &str) -> String {
    format!(
        "{{\"key\":{},\"value\":{{\"stringValue\":{}}}}}",
        quote(key),
        quote(val)
    )
}

fn attr_int(key: &str, val: u64) -> String {
    format!(
        "{{\"key\":{},\"value\":{{\"intValue\":\"{}\"}}}}",
        quote(key),
        val
    )
}

fn attr_f64(key: &str, val: f64) -> String {
    format!(
        "{{\"key\":{},\"value\":{{\"doubleValue\":{}}}}}",
        quote(key),
        val
    )
}

/// Compaction aggregate attributes, mirroring the Chrome `X` event args.
fn summary_attrs(t: &TraceRecord, attrs: &mut Vec<String>) {
    if let Some(a) = t.agg {
        attrs.push(attr_int("count", a.count));
        attrs.push(attr_f64("total_us", a.total * 1e6));
        attrs.push(attr_f64("min_us", a.min * 1e6));
        attrs.push(attr_f64("max_us", a.max * 1e6));
    }
}

struct Span {
    name: String,
    kind: u32,
    start: i64,
    end: i64,
    attrs: Vec<String>,
    /// `(trace_id, span_id)` of the linked span, if any.
    link: Option<(String, String)>,
}

impl Span {
    fn render(&self, trace_id: &str, span_id: &str) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"traceId\":\"{}\",\"spanId\":\"{}\",\"name\":{},\"kind\":{},\
             \"startTimeUnixNano\":\"{}\",\"endTimeUnixNano\":\"{}\"",
            trace_id,
            span_id,
            quote(&self.name),
            self.kind,
            self.start,
            self.end
        );
        if !self.attrs.is_empty() {
            let _ = write!(out, ",\"attributes\":[{}]", self.attrs.join(","));
        }
        if let Some((lt, ls)) = &self.link {
            let _ = write!(
                out,
                ",\"links\":[{{\"traceId\":\"{lt}\",\"spanId\":\"{ls}\"}}]"
            );
        }
        out.push('}');
        out
    }
}

/// OTLP span kinds used here: host-side wrapped calls and idle intervals
/// are `INTERNAL`, device-side executions are `CONSUMER` (they consume the
/// launch the host span produced).
const KIND_INTERNAL: u32 = 1;
const KIND_CONSUMER: u32 = 5;

/// All of one rank's spans, device side first so host `cudaLaunch` spans
/// can link to the kernel span their correlation id resolves to.
fn rank_spans(r: &ExportRank, trace_id: &str) -> Vec<String> {
    let mut spans: Vec<Span> = Vec::new();

    // Device spans (profiler ground truth wins, as in the Chrome backend),
    // recording where each correlation id landed.
    let mut corr_span: HashMap<u64, String> = HashMap::new();
    let use_prof = !r.prof.is_empty();
    if use_prof {
        for p in &r.prof {
            let mut attrs = vec![
                attr_int("ipm.stream", p.stream.0 as u64),
                attr_f64("gputime_us", p.gputime * 1e6),
            ];
            if p.kind == ProfKind::Kernel && p.corr != 0 {
                attrs.push(attr_int("ipm.corr", p.corr));
                corr_span.insert(p.corr, format!("{:016x}", spans.len() + 1));
            }
            spans.push(Span {
                name: p.method.clone(),
                kind: KIND_CONSUMER,
                start: ns(p.start, r.epoch),
                end: ns(p.start + p.gputime, r.epoch),
                attrs,
                link: None,
            });
        }
    } else {
        for t in r.records.iter().filter(|t| t.kind == TraceKind::KernelExec) {
            let mut attrs = vec![
                attr_int("ipm.stream", u64::from(t.stream.unwrap_or(0))),
                attr_int("ipm.region", u64::from(t.region)),
            ];
            if let Some(detail) = t.detail.as_deref() {
                attrs.push(attr_str("ipm.kernel", detail));
            }
            if t.corr != 0 {
                attrs.push(attr_int("ipm.corr", t.corr));
                corr_span.insert(t.corr, format!("{:016x}", spans.len() + 1));
            }
            summary_attrs(t, &mut attrs);
            spans.push(Span {
                name: t.name.to_string(),
                kind: KIND_CONSUMER,
                start: ns(t.begin, r.epoch),
                end: ns(t.end, r.epoch),
                attrs,
                link: None,
            });
        }
    }

    // Host spans: wrapped calls + host-idle intervals.
    for t in r.records.iter().filter(|t| t.kind != TraceKind::KernelExec) {
        let mut attrs = Vec::new();
        if t.bytes > 0 {
            attrs.push(attr_int("ipm.bytes", t.bytes));
        }
        attrs.push(attr_int("ipm.region", u64::from(t.region)));
        summary_attrs(t, &mut attrs);
        let link = if t.corr != 0 {
            corr_span
                .get(&t.corr)
                .map(|span_id| (trace_id.to_owned(), span_id.clone()))
        } else {
            None
        };
        if link.is_some() {
            attrs.push(attr_int("ipm.corr", t.corr));
        }
        spans.push(Span {
            name: t.name.to_string(),
            kind: KIND_INTERNAL,
            start: ns(t.begin, r.epoch),
            end: ns(t.end, r.epoch),
            attrs,
            link,
        });
    }

    spans
        .iter()
        .enumerate()
        .map(|(i, s)| s.render(trace_id, &format!("{:016x}", i + 1)))
        .collect()
}

/// Render the source as OTLP/JSON: `{"resourceSpans":[...]}`, one entry
/// per rank, one span per trace record, one line per span.
pub(crate) fn otlp_trace_json(src: &ExportSource) -> String {
    let mut out = String::from("{\"resourceSpans\":[\n");
    for (i, r) in src.ranks.iter().enumerate() {
        let trace_id = format!("{:032x}", r.rank as u128 + 1);
        let mut res_attrs = vec![
            attr_int("ipm.rank", r.rank as u64),
            attr_str("host.name", &r.host),
        ];
        if let Some(p) = &r.profile {
            if !p.command.is_empty() {
                res_attrs.push(attr_str("ipm.command", &p.command));
            }
        }
        let _ = write!(
            out,
            "{{\"resource\":{{\"attributes\":[{}]}},\"scopeSpans\":[{{\
             \"scope\":{{\"name\":\"ipm.trace\",\"version\":\"2.0\"}},\"spans\":[",
            res_attrs.join(",")
        );
        out.push('\n');
        let spans = rank_spans(r, &trace_id);
        for (j, s) in spans.iter().enumerate() {
            out.push_str(s);
            if j + 1 < spans.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}]}");
        if i + 1 < src.ranks.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Structural facts about a validated OTLP document.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OtlpStats {
    /// `resourceSpans` entries (ranks).
    pub resources: usize,
    /// Total spans across all scopes.
    pub spans: usize,
    /// Span links, all resolved.
    pub links: usize,
    /// Spans carrying a compaction aggregate (`count` attribute).
    pub summary_spans: usize,
}

fn attr_map(node: &Json) -> Result<HashMap<&str, &Json>, String> {
    let mut map = HashMap::new();
    if let Some(attrs) = node.get("attributes") {
        let attrs = attrs.as_arr().ok_or("attributes is not an array")?;
        for a in attrs {
            let key = a
                .get("key")
                .and_then(Json::as_str)
                .ok_or("attribute without key")?;
            let value = a.get("value").ok_or("attribute without value")?;
            map.insert(key, value);
        }
    }
    Ok(map)
}

fn span_time(span: &Json, field: &str, i: usize) -> Result<i64, String> {
    span.get(field)
        .and_then(Json::as_str)
        .ok_or(format!("span {i}: missing {field}"))?
        .parse::<i64>()
        .map_err(|_| format!("span {i}: {field} is not an integer nanosecond string"))
}

fn hex_id(span: &Json, field: &str, len: usize, i: usize) -> Result<String, String> {
    let id = span
        .get(field)
        .and_then(Json::as_str)
        .ok_or(format!("span {i}: missing {field}"))?;
    if id.len() != len || !id.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("span {i}: {field} '{id}' is not {len} hex digits"));
    }
    if id.bytes().all(|b| b == b'0') {
        return Err(format!("span {i}: {field} is all-zero"));
    }
    Ok(id.to_owned())
}

/// Validate OTLP/JSON structurally: the document parses, `resourceSpans`
/// is present, every resource identifies its rank (`ipm.rank` int attr +
/// `host.name` string attr), every span carries well-formed ids
/// (non-zero 32/16 hex digits, `spanId` unique per trace), a name, and
/// integer nano timestamps with `start <= end`, summary spans carry the
/// full aggregate, and every span link resolves to an existing span.
pub fn validate_otlp(text: &str) -> Result<OtlpStats, String> {
    let doc = parse_json(text)?;
    let resources = doc
        .get("resourceSpans")
        .and_then(Json::as_arr)
        .ok_or("missing resourceSpans array")?;

    let mut stats = OtlpStats {
        resources: resources.len(),
        ..OtlpStats::default()
    };
    let mut ids: HashSet<(String, String)> = HashSet::new();
    let mut links: Vec<(String, String)> = Vec::new();

    for (ri, rs) in resources.iter().enumerate() {
        let resource = rs
            .get("resource")
            .ok_or(format!("resourceSpans {ri}: missing resource"))?;
        let rattrs = attr_map(resource)?;
        let rank = rattrs
            .get("ipm.rank")
            .and_then(|v| v.get("intValue"))
            .and_then(Json::as_str)
            .ok_or(format!(
                "resourceSpans {ri}: missing ipm.rank int attribute"
            ))?;
        rank.parse::<u64>()
            .map_err(|_| format!("resourceSpans {ri}: ipm.rank '{rank}' is not an integer"))?;
        rattrs
            .get("host.name")
            .and_then(|v| v.get("stringValue"))
            .and_then(Json::as_str)
            .ok_or(format!(
                "resourceSpans {ri}: missing host.name string attribute"
            ))?;

        let scopes = rs
            .get("scopeSpans")
            .and_then(Json::as_arr)
            .ok_or(format!("resourceSpans {ri}: missing scopeSpans array"))?;
        for scope in scopes {
            scope
                .get("scope")
                .and_then(|s| s.get("name"))
                .and_then(Json::as_str)
                .ok_or(format!("resourceSpans {ri}: scope without name"))?;
            let spans = scope
                .get("spans")
                .and_then(Json::as_arr)
                .ok_or(format!("resourceSpans {ri}: missing spans array"))?;
            for (i, span) in spans.iter().enumerate() {
                let trace_id = hex_id(span, "traceId", 32, i)?;
                let span_id = hex_id(span, "spanId", 16, i)?;
                if !ids.insert((trace_id.clone(), span_id.clone())) {
                    return Err(format!(
                        "span {i}: duplicate spanId {span_id} in trace {trace_id}"
                    ));
                }
                let name = span
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("span {i}: missing name"))?;
                if name.is_empty() {
                    return Err(format!("span {i}: empty name"));
                }
                let start = span_time(span, "startTimeUnixNano", i)?;
                let end = span_time(span, "endTimeUnixNano", i)?;
                if start > end {
                    return Err(format!("span {i} '{name}': start {start} after end {end}"));
                }
                let sattrs = attr_map(span)?;
                if sattrs.contains_key("count") {
                    for key in ["total_us", "min_us", "max_us"] {
                        if !sattrs.contains_key(key) {
                            return Err(format!(
                                "span {i} '{name}': summary span missing {key} attribute"
                            ));
                        }
                    }
                    stats.summary_spans += 1;
                }
                if let Some(span_links) = span.get("links") {
                    let span_links = span_links
                        .as_arr()
                        .ok_or(format!("span {i}: links is not an array"))?;
                    for l in span_links {
                        let lt = l
                            .get("traceId")
                            .and_then(Json::as_str)
                            .ok_or(format!("span {i}: link without traceId"))?;
                        let ls = l
                            .get("spanId")
                            .and_then(Json::as_str)
                            .ok_or(format!("span {i}: link without spanId"))?;
                        links.push((lt.to_owned(), ls.to_owned()));
                    }
                }
                stats.spans += 1;
            }
        }
    }

    for (lt, ls) in &links {
        if !ids.contains(&(lt.clone(), ls.clone())) {
            return Err(format!("link to {lt}/{ls} does not resolve to any span"));
        }
    }
    stats.links = links.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::TraceAgg;
    use crate::export::{Export, Otlp};
    use crate::trace::TraceRank;
    use std::sync::Arc;

    fn rec(kind: TraceKind, name: &str, begin: f64, end: f64, corr: u64) -> TraceRecord {
        TraceRecord {
            kind,
            name: Arc::from(name),
            detail: None,
            begin,
            end,
            bytes: 0,
            region: 0,
            stream: if kind == TraceKind::KernelExec {
                Some(0)
            } else {
                None
            },
            corr,
            agg: None,
        }
    }

    fn export(rank: TraceRank) -> String {
        Export::new().with_trace_rank(rank).to(Otlp).unwrap()
    }

    #[test]
    fn launch_and_kernel_produce_a_resolved_link() {
        let rank = TraceRank {
            rank: 0,
            host: "dirac00".to_owned(),
            epoch: 0.0,
            records: vec![
                rec(TraceKind::Call, "cudaLaunch", 1.0, 1.1, 42),
                rec(TraceKind::KernelExec, "@CUDA_EXEC_STRM00", 1.2, 2.0, 42),
            ],
            prof: Vec::new(),
        };
        let json = export(rank);
        let stats = validate_otlp(&json).expect("valid OTLP");
        assert_eq!(stats.resources, 1);
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.links, 1);
    }

    #[test]
    fn pre_epoch_records_get_negative_nanos_and_still_validate() {
        let rank = TraceRank {
            rank: 0,
            host: String::new(),
            epoch: 10.0,
            records: vec![rec(TraceKind::Call, "cudaMalloc", 9.5, 9.75, 0)],
            prof: Vec::new(),
        };
        let json = export(rank);
        validate_otlp(&json).expect("valid OTLP");
        assert!(
            json.contains("\"startTimeUnixNano\":\"-500000000\""),
            "{json}"
        );
    }

    #[test]
    fn summary_spans_carry_the_full_aggregate() {
        let mut r = rec(TraceKind::Call, "cudaLaunch", 1.0, 3.0, 0);
        r.agg = Some(TraceAgg {
            count: 9,
            total: 1.5,
            min: 0.1,
            max: 0.3,
            exemplar: (1.2, 1.5),
        });
        let rank = TraceRank {
            rank: 2,
            host: "dirac02".to_owned(),
            epoch: 0.0,
            records: vec![r],
            prof: Vec::new(),
        };
        let json = export(rank);
        let stats = validate_otlp(&json).expect("valid OTLP");
        assert_eq!(stats.summary_spans, 1);
        assert!(json.contains("\"intValue\":\"9\""), "{json}");
    }

    #[test]
    fn names_with_escapes_survive() {
        let rank = TraceRank {
            rank: 0,
            host: "h\"x\\y".to_owned(),
            epoch: 0.0,
            records: vec![rec(TraceKind::Call, "weird\"\\\nname", 0.0, 1.0, 0)],
            prof: Vec::new(),
        };
        let json = export(rank);
        validate_otlp(&json).expect("valid OTLP");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_otlp("not json").is_err());
        assert!(validate_otlp("{}").unwrap_err().contains("resourceSpans"));
        // dangling link
        let bad = r#"{"resourceSpans":[{"resource":{"attributes":[
            {"key":"ipm.rank","value":{"intValue":"0"}},
            {"key":"host.name","value":{"stringValue":"h"}}]},
            "scopeSpans":[{"scope":{"name":"ipm.trace"},"spans":[
            {"traceId":"00000000000000000000000000000001","spanId":"0000000000000001",
             "name":"x","kind":1,"startTimeUnixNano":"0","endTimeUnixNano":"1",
             "links":[{"traceId":"00000000000000000000000000000001","spanId":"00000000000000ff"}]}
            ]}]}]}"#;
        assert!(validate_otlp(bad).unwrap_err().contains("does not resolve"));
        // start after end
        let bad = r#"{"resourceSpans":[{"resource":{"attributes":[
            {"key":"ipm.rank","value":{"intValue":"0"}},
            {"key":"host.name","value":{"stringValue":"h"}}]},
            "scopeSpans":[{"scope":{"name":"ipm.trace"},"spans":[
            {"traceId":"00000000000000000000000000000001","spanId":"0000000000000001",
             "name":"x","kind":1,"startTimeUnixNano":"5","endTimeUnixNano":"1"}
            ]}]}]}"#;
        assert!(validate_otlp(bad).unwrap_err().contains("after end"));
    }
}
