//! Blocking-set discovery microbenchmark (paper §III-C).
//!
//! "We identified the set of CUDA operations that exhibit the implicit
//! blocking behavior using a microbenchmark which exercises each call and
//! compares the timing with a version in which we first execute a
//! `cudaStreamSynchronize`."
//!
//! [`discover_blocking_set`] runs exactly that experiment against the
//! simulated runtime: for each candidate operation, launch a long
//! asynchronous kernel, then (a) call the operation directly, and (b) call
//! `cudaStreamSynchronize` first and then the operation. If variant (a)
//! is much slower than variant (b), the call blocked implicitly. The test
//! suite checks the discovered set against the specification's
//! classification — including the paper's surprise, `cudaMemset` *not*
//! blocking.

use ipm_gpu_sim::{
    launch_kernel, CudaApi, GpuConfig, GpuRuntime, Kernel, KernelCost, LaunchConfig, StreamId,
};

/// Result of probing one call.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockingProbe {
    pub name: &'static str,
    /// Duration with a kernel in flight (no preceding synchronize).
    pub unsynced: f64,
    /// Duration after an explicit `cudaStreamSynchronize`.
    pub synced: f64,
    /// Classified as implicitly blocking?
    pub blocks: bool,
}

/// The operations the microbenchmark exercises.
const CANDIDATES: &[&str] = &[
    "cudaMemcpy(H2D)",
    "cudaMemcpy(D2H)",
    "cudaMemcpy(D2D)",
    "cudaMemcpyToSymbol",
    "cudaMemset",
    "cudaMemcpyAsync(H2D)",
    "cudaMemcpyAsync(D2H)",
];

fn run_candidate(rt: &GpuRuntime, name: &str, presync: bool) -> f64 {
    const N: usize = 64 * 1024;
    let kernel = Kernel::timed("busy_spin", KernelCost::Fixed(0.050));
    let dev = rt.cuda_malloc(N).expect("probe buffer");
    let dev2 = rt.cuda_malloc(N).expect("probe buffer 2");
    let host = vec![0u8; N];
    let mut host_out = vec![0u8; N];
    let stream = rt.cuda_stream_create().expect("probe stream");

    // put a long kernel in flight on the default stream
    launch_kernel(rt, &kernel, LaunchConfig::simple(1u32, 1u32), &[]).expect("probe launch");
    if presync {
        rt.cuda_stream_synchronize(StreamId::DEFAULT)
            .expect("presync");
    }
    let before = rt.clock().now();
    match name {
        "cudaMemcpy(H2D)" => rt.cuda_memcpy_h2d(dev, &host).expect("h2d"),
        "cudaMemcpy(D2H)" => rt.cuda_memcpy_d2h(&mut host_out, dev).expect("d2h"),
        "cudaMemcpy(D2D)" => rt.cuda_memcpy_d2d(dev2, dev, N).expect("d2d"),
        "cudaMemcpyToSymbol" => rt.cuda_memcpy_to_symbol("probe_sym", &host).expect("tosym"),
        "cudaMemset" => rt.cuda_memset(dev, 0, N).expect("memset"),
        "cudaMemcpyAsync(H2D)" => rt.cuda_memcpy_h2d_async(dev, &host, stream).expect("ah2d"),
        "cudaMemcpyAsync(D2H)" => rt
            .cuda_memcpy_d2h_async(&mut host_out, dev, stream)
            .expect("ad2h"),
        other => panic!("unknown candidate {other}"),
    }
    let elapsed = rt.clock().now() - before;
    // clean up so repeated probes don't leak device memory
    rt.cuda_thread_synchronize().expect("drain");
    rt.cuda_free(dev).expect("free");
    rt.cuda_free(dev2).expect("free2");
    rt.cuda_stream_destroy(stream).expect("destroy stream");
    elapsed
}

/// Run the discovery microbenchmark on a fresh simulated device.
pub fn discover_blocking_set() -> Vec<BlockingProbe> {
    CANDIDATES
        .iter()
        .map(|&name| {
            // fresh runtime per candidate: no cross-contamination
            let rt = GpuRuntime::single(GpuConfig::dirac_node().with_context_init(0.0));
            let unsynced = run_candidate(&rt, name, false);
            let rt2 = GpuRuntime::single(GpuConfig::dirac_node().with_context_init(0.0));
            let synced = run_candidate(&rt2, name, true);
            // "much slower without the sync" — use a 5x threshold, robust
            // against transfer-size noise
            let blocks = unsynced > 5.0 * synced.max(1e-9);
            BlockingProbe {
                name,
                unsynced,
                synced,
                blocks,
            }
        })
        .collect()
}

/// Render the probe results as a table (used by the experiment binaries).
pub fn render_probe_table(probes: &[BlockingProbe]) -> String {
    let mut out = String::from(
        "call                        unsynced [ms]   synced [ms]   implicit blocking\n",
    );
    for p in probes {
        out.push_str(&format!(
            "{:<28}{:>12.4}{:>14.4}   {}\n",
            p.name,
            p.unsynced * 1e3,
            p.synced * 1e3,
            if p.blocks { "YES" } else { "no" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_interpose::{BlockingClass, Registry};

    #[test]
    fn sync_memory_ops_block_memset_does_not() {
        let probes = discover_blocking_set();
        let blocking: Vec<&str> = probes.iter().filter(|p| p.blocks).map(|p| p.name).collect();
        // the paper's finding: all sync memory ops block implicitly...
        assert!(blocking.contains(&"cudaMemcpy(H2D)"));
        assert!(blocking.contains(&"cudaMemcpy(D2H)"));
        assert!(blocking.contains(&"cudaMemcpy(D2D)"));
        assert!(blocking.contains(&"cudaMemcpyToSymbol"));
        // ...with the notable exception of cudaMemset
        assert!(!blocking.contains(&"cudaMemset"), "memset misclassified");
        // async copies submit and return
        assert!(!blocking.contains(&"cudaMemcpyAsync(H2D)"));
        assert!(!blocking.contains(&"cudaMemcpyAsync(D2H)"));
    }

    #[test]
    fn discovered_set_matches_the_specification() {
        // the empirical microbenchmark agrees with interpose's static spec
        let probes = discover_blocking_set();
        let reg = Registry::global();
        for p in &probes {
            // map probe names (with direction) back to spec entry names
            let spec_name = match p.name {
                "cudaMemcpy(H2D)" | "cudaMemcpy(D2H)" | "cudaMemcpy(D2D)" => "cudaMemcpy",
                "cudaMemcpyAsync(H2D)" | "cudaMemcpyAsync(D2H)" => "cudaMemcpyAsync",
                other => other,
            };
            let id = reg
                .id(spec_name)
                .unwrap_or_else(|| panic!("{spec_name} not in spec"));
            let expected = reg.spec(id).blocking == BlockingClass::ImplicitSync;
            assert_eq!(p.blocks, expected, "{} spec/probe mismatch", p.name);
        }
    }

    /// Golden cross-validation of the *whole* probe set: the dynamically
    /// discovered blocking set, mapped back to spec rows, must equal the
    /// spec's `ImplicitSync` classification of the same candidates —
    /// call by call, with the memset exception and async controls intact.
    #[test]
    fn golden_discovered_set_equals_spec_implicit_sync_subset() {
        use std::collections::BTreeSet;
        fn spec_name(probe: &str) -> &str {
            match probe {
                "cudaMemcpy(H2D)" | "cudaMemcpy(D2H)" | "cudaMemcpy(D2D)" => "cudaMemcpy",
                "cudaMemcpyAsync(H2D)" | "cudaMemcpyAsync(D2H)" => "cudaMemcpyAsync",
                other => other,
            }
        }
        // the probe list covers every direction split the monitor books
        // for the implicit-sync copies, plus the two negative controls
        for required in [
            "cudaMemcpy(H2D)",
            "cudaMemcpy(D2H)",
            "cudaMemcpy(D2D)",
            "cudaMemcpyToSymbol",
            "cudaMemset",
            "cudaMemcpyAsync(H2D)",
        ] {
            assert!(CANDIDATES.contains(&required), "{required} not probed");
        }
        let probes = discover_blocking_set();
        let reg = Registry::global();
        let discovered: BTreeSet<&str> = probes
            .iter()
            .filter(|p| p.blocks)
            .map(|p| spec_name(p.name))
            .collect();
        let expected: BTreeSet<&str> = CANDIDATES
            .iter()
            .map(|&c| spec_name(c))
            .filter(|n| {
                let id = reg.id(n).expect("candidate in spec");
                reg.spec(id).blocking == BlockingClass::ImplicitSync
            })
            .collect();
        assert_eq!(discovered, expected, "spec/probe golden set diverged");
        assert!(!discovered.contains("cudaMemset"), "memset must stay out");
        assert!(
            !discovered.contains("cudaMemcpyAsync"),
            "async copies must stay out"
        );
    }

    #[test]
    fn probe_table_renders_all_candidates() {
        let probes = discover_blocking_set();
        let table = render_probe_table(&probes);
        for p in &probes {
            assert!(table.contains(p.name));
        }
        assert!(table.contains("YES"));
        assert!(table.contains("no"));
    }
}
