//! Event signatures — the hash keys of IPM's performance data table.
//!
//! Fig. 1 of the paper: the hash key ("event signature") is derived from
//! the monitored event's **name** (e.g. `MPI_Send`, `cudaMemcpy(D2H)`, or a
//! pseudo-event like `@CUDA_EXEC_STRM00`), plus attributes — the **byte
//! count** involved, the active user **region**, and for pseudo-events a
//! **detail** string (the kernel symbol for GPU-execution entries, so the
//! XML log can break kernel time down per kernel and per stream).

use ipm_interpose::{CallHandle, CallId, NameTable};
use std::fmt;
use std::sync::Arc;

/// Pseudo-event prefix: entries that do not correspond to a host function
/// (paper §III-B uses `@` for this).
pub const PSEUDO_PREFIX: char = '@';

/// The key of one performance-table entry.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct EventSignature {
    /// Call or pseudo-event name.
    pub name: Arc<str>,
    /// Byte-count attribute (0 when the event carries none).
    pub bytes: u64,
    /// User region id (0 = whole program).
    pub region: u16,
    /// Extra attribute: kernel symbol for `@CUDA_EXEC_*` entries.
    pub detail: Option<Arc<str>>,
}

impl EventSignature {
    /// Signature for a plain call in the global region.
    pub fn call(name: impl Into<Arc<str>>, bytes: u64) -> Self {
        Self {
            name: name.into(),
            bytes,
            region: 0,
            detail: None,
        }
    }

    /// Signature in an explicit region.
    pub fn in_region(mut self, region: u16) -> Self {
        self.region = region;
        self
    }

    /// Attach a detail attribute.
    pub fn with_detail(mut self, detail: impl Into<Arc<str>>) -> Self {
        self.detail = Some(detail.into());
        self
    }

    /// Is this a pseudo-event (`@`-prefixed)?
    pub fn is_pseudo(&self) -> bool {
        self.name.starts_with(PSEUDO_PREFIX)
    }

    /// The `@CUDA_EXEC_STRMxx` name for kernel execution time on a stream
    /// (paper §III-B).
    pub fn exec_stream_name(stream: u32) -> String {
        format!("@CUDA_EXEC_STRM{stream:02}")
    }

    /// The `@CUDA_HOST_IDLE` pseudo-event (paper §III-C).
    pub const HOST_IDLE: &'static str = "@CUDA_HOST_IDLE";

    /// Intern this signature into its hot-path [`SigKey`] form.
    pub fn key(&self) -> SigKey {
        SigKey {
            id: CallHandle::of(&self.name).id,
            bytes: self.bytes,
            region: self.region,
            detail: self.detail.as_deref().map(|d| CallHandle::of(d).id),
        }
    }
}

/// The hot-path form of an event signature: the interned name id plus the
/// value attributes, all `Copy`. This is what the performance table hashes
/// on the record path — no string hashing, no `Arc` traffic. The string
/// form comes back at report time via [`SigKey::resolve`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SigKey {
    /// Interned call or pseudo-event name.
    pub id: CallId,
    /// Byte-count attribute (0 when the event carries none).
    pub bytes: u64,
    /// User region id (0 = whole program).
    pub region: u16,
    /// Interned detail attribute (kernel symbol for `@CUDA_EXEC_*`).
    pub detail: Option<CallId>,
}

impl SigKey {
    /// Key for a plain call in the global region.
    pub fn call(id: CallId, bytes: u64) -> Self {
        Self {
            id,
            bytes,
            region: 0,
            detail: None,
        }
    }

    /// Resolve back to the string-keyed form through the global interner
    /// (report/export time only).
    pub fn resolve(&self) -> EventSignature {
        let names = NameTable::global();
        EventSignature {
            name: names.name(self.id),
            bytes: self.bytes,
            region: self.region,
            detail: self.detail.map(|d| names.name(d)),
        }
    }
}

impl fmt::Debug for EventSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if self.bytes > 0 {
            write!(f, "[{}B]", self.bytes)?;
        }
        if self.region != 0 {
            write!(f, "@r{}", self.region)?;
        }
        if let Some(d) = &self.detail {
            write!(f, "<{d}>")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn signatures_distinguish_all_attributes() {
        let mut set = HashSet::new();
        set.insert(EventSignature::call("cudaMemcpy(D2H)", 1024));
        set.insert(EventSignature::call("cudaMemcpy(D2H)", 2048)); // other size
        set.insert(EventSignature::call("cudaMemcpy(H2D)", 1024)); // other dir
        set.insert(EventSignature::call("cudaMemcpy(D2H)", 1024).in_region(1));
        set.insert(EventSignature::call("@CUDA_EXEC_STRM00", 0).with_detail("square"));
        set.insert(EventSignature::call("@CUDA_EXEC_STRM00", 0).with_detail("other"));
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn identical_signatures_collide() {
        let a = EventSignature::call("MPI_Send", 64).in_region(2);
        let b = EventSignature::call("MPI_Send", 64).in_region(2);
        assert_eq!(a, b);
    }

    #[test]
    fn pseudo_detection() {
        assert!(EventSignature::call("@CUDA_HOST_IDLE", 0).is_pseudo());
        assert!(!EventSignature::call("cudaMalloc", 0).is_pseudo());
    }

    #[test]
    fn stream_names_match_the_paper_format() {
        assert_eq!(EventSignature::exec_stream_name(0), "@CUDA_EXEC_STRM00");
        assert_eq!(EventSignature::exec_stream_name(7), "@CUDA_EXEC_STRM07");
        assert_eq!(EventSignature::exec_stream_name(12), "@CUDA_EXEC_STRM12");
    }

    #[test]
    fn signatures_are_injective_over_the_whole_registry() {
        // every spec row must hash to its own table slot: build one
        // signature per registered call and demand zero collisions
        use ipm_interpose::{CallId, Registry};
        let reg = Registry::global();
        let mut set = HashSet::new();
        for i in 0..reg.len() {
            let spec = reg.spec(CallId(i as u32));
            set.insert(EventSignature::call(spec.name, 0));
        }
        assert_eq!(
            set.len(),
            reg.len(),
            "two registry rows collapsed to one signature"
        );
        // per-family counts pin the paper's interface inventory
        use ipm_interpose::ApiFamily;
        assert_eq!(reg.family(ApiFamily::CudaRuntime).count(), 65);
        assert_eq!(reg.family(ApiFamily::CudaDriver).count(), 99);
        assert_eq!(reg.family(ApiFamily::Cublas).count(), 167);
        assert_eq!(reg.family(ApiFamily::Cufft).count(), 13);
        assert_eq!(reg.family(ApiFamily::Mpi).count(), 17);
        assert_eq!(reg.family(ApiFamily::Io).count(), 4);
    }

    #[test]
    fn keys_roundtrip_through_the_interner() {
        let sig = EventSignature::call("cudaMemcpy(D2H)", 800_000)
            .in_region(3)
            .with_detail("square");
        let key = sig.key();
        assert_eq!(key.resolve(), sig);
        // interning is stable, so equal signatures make equal keys
        assert_eq!(sig.key(), key);
        // and distinct attributes stay distinct in key space
        assert_ne!(
            EventSignature::call("cudaMemcpy(D2H)", 1).key(),
            EventSignature::call("cudaMemcpy(D2H)", 2).key()
        );
        assert_ne!(
            EventSignature::call("cudaMemcpy(D2H)", 1).key(),
            EventSignature::call("cudaMemcpy(H2D)", 1).key()
        );
    }

    #[test]
    fn debug_format_is_compact() {
        let sig = EventSignature::call("cudaMemcpy(D2H)", 800_000)
            .in_region(3)
            .with_detail("k");
        let s = format!("{sig:?}");
        assert!(s.contains("cudaMemcpy(D2H)"));
        assert!(s.contains("800000B"));
        assert!(s.contains("@r3"));
        assert!(s.contains("<k>"));
    }
}
