//! Compatibility layer: deprecated export entry points, plus the legacy
//! string-keyed record path kept alive as a differential-test oracle.
//!
//! Before the unified [`crate::export`] pipeline, each rendering was a free
//! function with its own `(profile, trace, epoch)` plumbing. Those names
//! live on here as thin forwarding shims so external code keeps compiling;
//! everything in-repo uses the [`crate::export::Export`] builder (the
//! workspace denies `deprecated`, so a stray in-repo caller of these is a
//! build error). See DESIGN.md for the old-name → new-call migration table.
//!
//! [`LegacyMirror`] reconstructs the pre-interning record path — an
//! [`EventSignature`] built with a fresh `Arc<str>` per recorded call,
//! hashed on the name string — so tests can run both paths against the
//! same event stream and demand byte-identical reports.

use crate::aggregate::ClusterReport;
use crate::profile::{ProfileEntry, RankProfile};
use crate::sig::EventSignature;
use crate::trace::{TraceRank, TraceRecord};
use ipm_interpose::{CallHandle, CallId, NameTable};
use ipm_sim_core::RunningStats;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The pre-refactor record path, replayed next to the interned one.
///
/// Installed on an [`crate::Ipm`] via `install_mirror`, it receives every
/// event the primary [`crate::PerfTable`] receives and records it the way
/// the pre-[`crate::sig::SigKey`] monitor did: resolve the name *per call*,
/// allocate a fresh `Arc<str>` for the signature (the duplication the
/// refactor removed), and key a single string-hashed map with it. The
/// differential test swaps its entries into a cloned profile and demands
/// the rendered banner / region report / XML match the primary byte for
/// byte.
#[derive(Default)]
pub struct LegacyMirror {
    table: Mutex<HashMap<EventSignature, RunningStats>>,
}

impl LegacyMirror {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Legacy form of [`ipm_interpose::MonitorSink::update`]: per-call
    /// name resolution and `Arc` allocation, string-keyed insert.
    pub fn update(&self, call: CallHandle, bytes: u64, region: u16, duration: f64) {
        let sig = EventSignature {
            name: Arc::from(&*call.name()),
            bytes,
            region,
            detail: None,
        };
        self.table.lock().entry(sig).or_default().record(duration);
    }

    /// Legacy form of [`crate::Ipm::update_pseudo`].
    pub fn pseudo(&self, name: CallId, detail: Option<CallId>, region: u16, duration: f64) {
        let names = NameTable::global();
        let sig = EventSignature {
            name: Arc::from(&*names.name(name)),
            bytes: 0,
            region,
            detail: detail.map(|d| Arc::from(&*names.name(d))),
        };
        self.table.lock().entry(sig).or_default().record(duration);
    }

    /// The mirror's accumulated table, in [`crate::PerfTable::snapshot`]
    /// order, so the two paths compare positionally.
    pub fn snapshot(&self) -> Vec<(EventSignature, RunningStats)> {
        let mut out: Vec<(EventSignature, RunningStats)> = self
            .table
            .lock()
            .iter()
            .map(|(sig, stats)| (sig.clone(), *stats))
            .collect();
        out.sort_by(|(a, _), (b, _)| {
            (&a.name, a.bytes, a.region, &a.detail).cmp(&(&b.name, b.bytes, b.region, &b.detail))
        });
        out
    }

    /// The mirror's table as profile entries — drop-in replacement for a
    /// [`RankProfile::entries`] built from the primary table.
    pub fn profile_entries(&self) -> Vec<ProfileEntry> {
        self.snapshot()
            .into_iter()
            .map(|(sig, stats)| ProfileEntry {
                name: sig.name.to_string(),
                detail: sig.detail.as_ref().map(|d| d.to_string()),
                bytes: sig.bytes,
                region: sig.region,
                stats,
            })
            .collect()
    }
}

/// The banner report for one rank.
#[deprecated(
    since = "0.1.0",
    note = "use Export::from_profile(p).max_rows(n).to(Banner)"
)]
pub fn render_banner(profile: &RankProfile, max_rows: usize) -> String {
    crate::banner::render_banner(profile, max_rows)
}

/// The cross-rank cluster banner.
#[deprecated(
    since = "0.1.0",
    note = "use Export::from_profiles(ps).nodes(n).max_rows(r).to(Banner)"
)]
pub fn render_cluster_banner(report: &ClusterReport, max_rows: usize) -> String {
    crate::banner::render_cluster_banner(report, max_rows)
}

/// The per-region breakdown report.
#[deprecated(
    since = "0.1.0",
    note = "use Export::from_profile(p).max_rows(n).to(RegionReport)"
)]
pub fn render_region_report(profile: &RankProfile, max_rows: usize) -> String {
    crate::banner::render_region_report(profile, max_rows)
}

/// XML log with an embedded (epoch-0) trace section.
#[deprecated(
    since = "0.1.0",
    note = "use Export::from_profile(p).with_trace(t).to(Xml)"
)]
pub fn to_xml_with_trace(p: &RankProfile, trace: &[TraceRecord]) -> String {
    crate::xml::to_xml_with_trace_at(p, trace, 0.0)
}

/// XML log with an embedded trace section and explicit epoch.
#[deprecated(
    since = "0.1.0",
    note = "use Export::from_profile(p).with_trace(t).with_epoch(e).to(Xml)"
)]
pub fn to_xml_with_trace_at(p: &RankProfile, trace: &[TraceRecord], epoch: f64) -> String {
    crate::xml::to_xml_with_trace_at(p, trace, epoch)
}

/// Chrome trace-event JSON for a set of ranks.
#[deprecated(
    since = "0.1.0",
    note = "use Export::new().with_trace_rank(r).to(ChromeTrace)"
)]
pub fn chrome_trace(ranks: &[TraceRank]) -> String {
    crate::export::chrome::chrome_trace_json(ranks)
}

/// The `ipm_parse -html` report page.
#[deprecated(
    since = "0.1.0",
    note = "use Export::from_profiles(ps).nodes(n).to(Html)"
)]
pub fn html_report(profiles: &[RankProfile], nodes: usize) -> String {
    crate::parse::html_report(profiles, nodes)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::export::{Banner, ChromeTrace, Export, Html, RegionReport, Xml};
    use crate::monitor::{Ipm, IpmConfig};
    use crate::trace::TraceKind;
    use ipm_gpu_sim::{CudaApi, GpuConfig, GpuRuntime};
    use std::sync::Arc;

    fn profiled_run() -> (RankProfile, Vec<TraceRecord>) {
        let rt = Arc::new(GpuRuntime::single(GpuConfig::dirac_node()));
        let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
        ipm.set_metadata(0, 1, "dirac00", "./cuda.ipm");
        let cuda = crate::cuda_mon::IpmCuda::new(ipm.clone(), rt);
        let dev = cuda.cuda_malloc(4096).unwrap();
        cuda.cuda_free(dev).unwrap();
        (ipm.profile(), ipm.drain_trace())
    }

    #[test]
    fn shims_match_the_builder_output_exactly() {
        let (profile, trace) = profiled_run();

        assert_eq!(
            render_banner(&profile, 10),
            Export::from_profile(profile.clone())
                .max_rows(10)
                .to(Banner)
                .unwrap()
        );
        assert_eq!(
            render_region_report(&profile, 5),
            Export::from_profile(profile.clone())
                .max_rows(5)
                .to(RegionReport)
                .unwrap()
        );
        assert_eq!(
            to_xml_with_trace(&profile, &trace),
            Export::from_profile(profile.clone())
                .with_trace(trace.clone())
                .to(Xml)
                .unwrap()
        );
        assert_eq!(
            to_xml_with_trace_at(&profile, &trace, 1.5),
            Export::from_profile(profile.clone())
                .with_trace(trace.clone())
                .with_epoch(1.5)
                .to(Xml)
                .unwrap()
        );
        assert_eq!(
            html_report(std::slice::from_ref(&profile), 1),
            Export::from_profile(profile.clone())
                .nodes(1)
                .to(Html)
                .unwrap()
        );

        // the builder renders the cluster banner once >1 rank is present
        let mut p1 = profile.clone();
        p1.rank = 1;
        let report = ClusterReport::from_profiles(vec![profile.clone(), p1.clone()], 1);
        assert_eq!(
            render_cluster_banner(&report, 8),
            Export::from_profiles([profile.clone(), p1])
                .nodes(1)
                .max_rows(8)
                .to(Banner)
                .unwrap()
        );

        let rank = TraceRank {
            rank: 0,
            host: "dirac00".to_owned(),
            epoch: 0.0,
            records: trace
                .iter()
                .filter(|t| t.kind != TraceKind::KernelExec)
                .cloned()
                .collect(),
            prof: Vec::new(),
        };
        assert_eq!(
            chrome_trace(std::slice::from_ref(&rank)),
            Export::new().with_trace_rank(rank).to(ChromeTrace).unwrap()
        );
    }
}
