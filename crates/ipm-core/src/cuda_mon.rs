//! The monitored CUDA API — IPM's interposition layer for `cuda*` calls.
//!
//! [`IpmCuda`] implements [`CudaApi`] by wrapping another implementation
//! (normally the bare [`ipm_gpu_sim::GpuRuntime`]), with the paper's three
//! measurement mechanisms layered in:
//!
//! 1. **Host-side timing** (§III-A): every call runs inside the Fig. 2
//!    wrapper anatomy; synchronous memcpys are split by direction
//!    (`cudaMemcpy(D2H)` / `cudaMemcpy(H2D)`) as IPM optionally does.
//! 2. **GPU kernel timing** (§III-B): `cudaLaunch` is bracketed with
//!    events recorded into the kernel timing table; completion is swept
//!    lazily in D2H transfer wrappers, producing `@CUDA_EXEC_STRMxx`
//!    entries tagged with the kernel symbol.
//! 3. **Host-idle identification** (§III-C): before each call in the
//!    implicit-blocking set, the wrapper synchronizes with the device and
//!    books the wait separately as `@CUDA_HOST_IDLE`, leaving the call
//!    itself with just its own transfer time.
//!
//! All of that plumbing lives in the shared [`FacadeCore`]; this facade is
//! just the `CudaApi` surface naming each call via [`site!`] — the probe
//! for implicit blocking is steered by the interned spec flags, so e.g.
//! `cudaMemcpy(H2D)` probes while `cudaMemset` (the paper's noted
//! exception) does not.

use crate::facade::FacadeCore;
use crate::monitor::Ipm;
use ipm_gpu_sim::{
    CudaApi, CudaResult, DeviceProperties, DevicePtr, EventId, Kernel, KernelArg, LaunchConfig,
    StreamId,
};
use ipm_interpose::{site, CallHandle};
use parking_lot::Mutex;
use std::sync::Arc;

/// The monitored CUDA runtime facade.
pub struct IpmCuda {
    core: FacadeCore,
    inner: Arc<dyn CudaApi>,
    /// Stream of the most recent `cudaConfigureCall`, needed by the
    /// `cudaLaunch` wrapper for KTT attribution (the launch itself does
    /// not carry the stream).
    pending_stream: Mutex<Vec<StreamId>>,
}

impl IpmCuda {
    /// Install monitoring around `inner`.
    pub fn new(ipm: Arc<Ipm>, inner: Arc<dyn CudaApi>) -> Self {
        Self {
            core: FacadeCore::new(ipm, Some(inner.clone())),
            inner,
            pending_stream: Mutex::new(Vec::new()),
        }
    }

    fn wrapped_no_sweep<R>(&self, call: CallHandle, bytes: u64, real: impl FnOnce() -> R) -> R {
        self.core.wrapped_no_sweep(call, bytes, real)
    }

    fn wrapped<R>(&self, call: CallHandle, bytes: u64, real: impl FnOnce() -> R) -> R {
        self.core.wrapped(call, bytes, real)
    }

    /// Sweep the KTT for completed kernels and book `@CUDA_EXEC_STRMxx`
    /// entries (paper: done in D2H transfer wrappers).
    fn sweep_ktt(&self) {
        self.core.sweep_ktt()
    }

    /// Drain any in-flight kernel timings (call before producing the
    /// profile). Safe to call multiple times.
    pub fn finalize(&self) {
        self.core.finalize()
    }

    /// The monitoring context this facade reports into.
    pub fn ipm(&self) -> &Arc<Ipm> {
        self.core.ipm()
    }

    /// The wrapped (real) API.
    pub fn inner(&self) -> &Arc<dyn CudaApi> {
        &self.inner
    }
}

impl CudaApi for IpmCuda {
    fn cuda_malloc(&self, size: usize) -> CudaResult<DevicePtr> {
        self.wrapped(site!("cudaMalloc"), size as u64, || {
            self.inner.cuda_malloc(size)
        })
    }

    fn cuda_free(&self, ptr: DevicePtr) -> CudaResult<()> {
        self.wrapped(site!("cudaFree"), 0, || self.inner.cuda_free(ptr))
    }

    fn cuda_memcpy_h2d(&self, dst: DevicePtr, src: &[u8]) -> CudaResult<()> {
        self.wrapped(site!("cudaMemcpy(H2D)"), src.len() as u64, || {
            self.inner.cuda_memcpy_h2d(dst, src)
        })
    }

    fn cuda_memcpy_d2h(&self, dst: &mut [u8], src: DevicePtr) -> CudaResult<()> {
        let ret = self.wrapped(site!("cudaMemcpy(D2H)"), dst.len() as u64, || {
            self.inner.cuda_memcpy_d2h(dst, src)
        });
        // the paper's lazy completion check: D2H transfers are the sweep point
        self.sweep_ktt();
        ret
    }

    fn cuda_memcpy_h2d_sized(
        &self,
        dst: DevicePtr,
        src: &[u8],
        total_bytes: u64,
    ) -> CudaResult<()> {
        self.wrapped(site!("cudaMemcpy(H2D)"), total_bytes, || {
            self.inner.cuda_memcpy_h2d_sized(dst, src, total_bytes)
        })
    }

    fn cuda_memcpy_d2h_sized(
        &self,
        dst: &mut [u8],
        src: DevicePtr,
        total_bytes: u64,
    ) -> CudaResult<()> {
        let ret = self.wrapped(site!("cudaMemcpy(D2H)"), total_bytes, || {
            self.inner.cuda_memcpy_d2h_sized(dst, src, total_bytes)
        });
        self.sweep_ktt();
        ret
    }

    fn cuda_memcpy_d2d(&self, dst: DevicePtr, src: DevicePtr, len: usize) -> CudaResult<()> {
        self.wrapped(site!("cudaMemcpy(D2D)"), len as u64, || {
            self.inner.cuda_memcpy_d2d(dst, src, len)
        })
    }

    fn cuda_memcpy_h2d_async(
        &self,
        dst: DevicePtr,
        src: &[u8],
        stream: StreamId,
    ) -> CudaResult<()> {
        self.wrapped(site!("cudaMemcpyAsync(H2D)"), src.len() as u64, || {
            self.inner.cuda_memcpy_h2d_async(dst, src, stream)
        })
    }

    fn cuda_memcpy_d2h_async(
        &self,
        dst: &mut [u8],
        src: DevicePtr,
        stream: StreamId,
    ) -> CudaResult<()> {
        let ret = self.wrapped(site!("cudaMemcpyAsync(D2H)"), dst.len() as u64, || {
            self.inner.cuda_memcpy_d2h_async(dst, src, stream)
        });
        // async D2H is also a reasonable sweep point (it signals the host
        // will soon consume results); cheap because queries are lazy
        self.sweep_ktt();
        ret
    }

    fn cuda_memcpy_to_symbol(&self, symbol: &str, src: &[u8]) -> CudaResult<()> {
        self.wrapped(site!("cudaMemcpyToSymbol"), src.len() as u64, || {
            self.inner.cuda_memcpy_to_symbol(symbol, src)
        })
    }

    fn cuda_memset(&self, dst: DevicePtr, value: u8, len: usize) -> CudaResult<()> {
        // NOT in the implicit-blocking set (§III-C): no host-idle probe
        self.wrapped(site!("cudaMemset"), len as u64, || {
            self.inner.cuda_memset(dst, value, len)
        })
    }

    fn cuda_configure_call(&self, config: LaunchConfig) -> CudaResult<()> {
        self.pending_stream.lock().push(config.stream);
        self.wrapped(site!("cudaConfigureCall"), 0, || {
            self.inner.cuda_configure_call(config)
        })
    }

    fn cuda_setup_argument(&self, arg: KernelArg) -> CudaResult<()> {
        self.wrapped(site!("cudaSetupArgument"), arg.size() as u64, || {
            self.inner.cuda_setup_argument(arg)
        })
    }

    fn cuda_launch(&self, kernel: &Kernel) -> CudaResult<()> {
        let stream = self
            .pending_stream
            .lock()
            .pop()
            .unwrap_or(StreamId::DEFAULT);
        if self.ipm().config().gpu_timing {
            let name: Arc<str> = Arc::from(kernel.name());
            // the KTT lock is held across the bracketed launch, so the
            // wrapper inside must not sweep (EveryCall would self-deadlock);
            // sweep after the lock is released instead
            // speccheck: allow(lock-across-call) — KTT bracketing requires it
            let ret = {
                let mut ktt = self.ipm().ktt().lock();
                ktt.time_launch(self.inner.as_ref(), name, stream, || {
                    self.wrapped_no_sweep(site!("cudaLaunch"), 0, || self.inner.cuda_launch(kernel))
                })
            };
            self.core.sweep_if_every_call();
            ret
        } else {
            // speccheck: allow(wrap-once) — one site per mutually-exclusive branch
            self.wrapped(site!("cudaLaunch"), 0, || self.inner.cuda_launch(kernel))
        }
    }

    fn cuda_stream_create(&self) -> CudaResult<StreamId> {
        self.wrapped(site!("cudaStreamCreate"), 0, || {
            self.inner.cuda_stream_create()
        })
    }

    fn cuda_stream_destroy(&self, stream: StreamId) -> CudaResult<()> {
        self.wrapped(site!("cudaStreamDestroy"), 0, || {
            self.inner.cuda_stream_destroy(stream)
        })
    }

    fn cuda_stream_synchronize(&self, stream: StreamId) -> CudaResult<()> {
        let ret = self.wrapped(site!("cudaStreamSynchronize"), 0, || {
            self.inner.cuda_stream_synchronize(stream)
        });
        self.sweep_ktt();
        ret
    }

    fn cuda_stream_query(&self, stream: StreamId) -> CudaResult<()> {
        self.wrapped(site!("cudaStreamQuery"), 0, || {
            self.inner.cuda_stream_query(stream)
        })
    }

    fn cuda_event_create(&self) -> CudaResult<EventId> {
        self.wrapped(site!("cudaEventCreate"), 0, || {
            self.inner.cuda_event_create()
        })
    }

    fn cuda_event_destroy(&self, event: EventId) -> CudaResult<()> {
        self.wrapped(site!("cudaEventDestroy"), 0, || {
            self.inner.cuda_event_destroy(event)
        })
    }

    fn cuda_event_record(&self, event: EventId, stream: StreamId) -> CudaResult<()> {
        self.wrapped(site!("cudaEventRecord"), 0, || {
            self.inner.cuda_event_record(event, stream)
        })
    }

    fn cuda_event_query(&self, event: EventId) -> CudaResult<()> {
        self.wrapped(site!("cudaEventQuery"), 0, || {
            self.inner.cuda_event_query(event)
        })
    }

    fn cuda_event_synchronize(&self, event: EventId) -> CudaResult<()> {
        let ret = self.wrapped(site!("cudaEventSynchronize"), 0, || {
            self.inner.cuda_event_synchronize(event)
        });
        self.sweep_ktt();
        ret
    }

    fn cuda_event_elapsed_time(&self, start: EventId, stop: EventId) -> CudaResult<f64> {
        self.wrapped(site!("cudaEventElapsedTime"), 0, || {
            self.inner.cuda_event_elapsed_time(start, stop)
        })
    }

    fn cuda_thread_synchronize(&self) -> CudaResult<()> {
        let ret = self.wrapped(site!("cudaThreadSynchronize"), 0, || {
            self.inner.cuda_thread_synchronize()
        });
        self.sweep_ktt();
        ret
    }

    fn cuda_get_device_count(&self) -> CudaResult<i32> {
        self.wrapped(site!("cudaGetDeviceCount"), 0, || {
            self.inner.cuda_get_device_count()
        })
    }

    fn cuda_set_device(&self, ordinal: i32) -> CudaResult<()> {
        self.wrapped(site!("cudaSetDevice"), 0, || {
            self.inner.cuda_set_device(ordinal)
        })
    }

    fn cuda_get_device_properties(&self) -> CudaResult<DeviceProperties> {
        self.wrapped(site!("cudaGetDeviceProperties"), 0, || {
            self.inner.cuda_get_device_properties()
        })
    }

    fn cuda_get_last_error(&self) -> Option<ipm_gpu_sim::CudaError> {
        self.wrapped(site!("cudaGetLastError"), 0, || {
            self.inner.cuda_get_last_error()
        })
    }

    // Introspection used by IPM itself (KTT correlation, trace placement):
    // unwrapped, so the monitor's own probing stays invisible to the profile.
    fn cuda_last_launch_correlation_id(&self) -> u64 {
        self.inner.cuda_last_launch_correlation_id()
    }

    fn cuda_event_timestamp(&self, event: EventId) -> CudaResult<f64> {
        self.inner.cuda_event_timestamp(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::IpmConfig;
    use crate::sig::EventSignature;
    use ipm_gpu_sim::{launch_kernel, GpuConfig, GpuRuntime, Kernel, KernelCost};

    /// The Fig. 3 `square` scenario under monitoring.
    fn square_run(cfg: IpmConfig) -> (Arc<Ipm>, IpmCuda) {
        let rt = Arc::new(GpuRuntime::single(GpuConfig::dirac_node()));
        let ipm = Ipm::new(rt.clock().clone(), cfg);
        let cuda = IpmCuda::new(ipm.clone(), rt);
        let n = 100_000usize;
        let size = n * 8;
        let host: Vec<u8> = vec![1u8; size];
        let dev = cuda.cuda_malloc(size).unwrap();
        cuda.cuda_memcpy_h2d(dev, &host).unwrap();
        let k = Kernel::timed("square", KernelCost::Fixed(1.15));
        launch_kernel(
            &cuda,
            &k,
            LaunchConfig::simple(n as u32, 1u32),
            &[KernelArg::I32(0)],
        )
        .unwrap();
        let mut out = vec![0u8; size];
        cuda.cuda_memcpy_d2h(&mut out, dev).unwrap();
        cuda.cuda_free(dev).unwrap();
        cuda.finalize();
        (ipm, cuda)
    }

    #[test]
    fn fig4_host_only_profile_shape() {
        let (ipm, _cuda) = square_run(IpmConfig::host_timing_only());
        let p = ipm.profile();
        // first call (cudaMalloc) absorbs context init: dominates
        let malloc = p.time_of("cudaMalloc");
        assert!(malloc > 1.0, "cudaMalloc = {malloc}");
        // D2H blocks on the kernel: ~1.15 s; H2D is fast
        let d2h = p.time_of("cudaMemcpy(D2H)");
        let h2d = p.time_of("cudaMemcpy(H2D)");
        assert!(d2h > 1.0, "d2h = {d2h}");
        assert!(h2d < 0.05, "h2d = {h2d}");
        // launch is asynchronous: tiny
        assert!(p.time_of("cudaLaunch") < 1e-3);
        // no pseudo entries in host-only mode
        assert_eq!(p.time_of("@CUDA_EXEC_STRM00"), 0.0);
        assert_eq!(p.host_idle_time(), 0.0);
    }

    #[test]
    fn fig5_gpu_timing_adds_exec_entry() {
        let (ipm, _cuda) = square_run(IpmConfig::with_gpu_timing_only());
        let p = ipm.profile();
        let exec = p.time_of("@CUDA_EXEC_STRM00");
        assert!((exec - 1.15).abs() < 1e-3, "exec = {exec}");
        // kernel symbol attached for the XML breakdown
        let breakdown = p.kernel_breakdown();
        assert_eq!(breakdown[0].0, "square");
        // D2H still carries the implicit wait (host idle off)
        assert!(p.time_of("cudaMemcpy(D2H)") > 1.0);
    }

    #[test]
    fn fig6_host_idle_reattributes_the_wait() {
        let (ipm, _cuda) = square_run(IpmConfig::default());
        let p = ipm.profile();
        let idle = p.host_idle_time();
        let d2h = p.time_of("cudaMemcpy(D2H)");
        let exec = p.time_of("@CUDA_EXEC_STRM00");
        // the wait moved out of the memcpy into @CUDA_HOST_IDLE
        assert!((idle - 1.15).abs() < 0.01, "idle = {idle}");
        assert!(d2h < 0.05, "d2h = {d2h}");
        assert!((exec - 1.15).abs() < 1e-3, "exec = {exec}");
    }

    #[test]
    fn trace_captures_the_run_end_to_end() {
        use crate::export::{validate_chrome_trace, ChromeTrace, Export};
        use crate::trace::{TraceKind, TraceRank};
        let (ipm, _cuda) = square_run(IpmConfig::default());

        // exact accounting all the way through the monitored run
        let m = ipm.monitor_info();
        assert!(m.trace_captured > 0);
        assert_eq!(m.trace_captured + m.trace_dropped, m.trace_emitted);
        assert!(m.self_wall_ns > 0, "bookkeeping cost must be accounted");
        assert!(m.ring_hwm_bytes > 0);

        let records = ipm.drain_trace();
        assert_eq!(records.len() as u64, m.trace_captured);

        // every cudaLaunch call record carries the correlation id of the
        // kernel execution it enqueued
        let mut launch_corrs: Vec<u64> = records
            .iter()
            .filter(|r| r.kind == TraceKind::Call && &*r.name == "cudaLaunch")
            .map(|r| r.corr)
            .collect();
        let mut exec_corrs: Vec<u64> = records
            .iter()
            .filter(|r| r.kind == TraceKind::KernelExec)
            .map(|r| r.corr)
            .collect();
        assert!(!launch_corrs.is_empty());
        assert!(launch_corrs.iter().all(|&c| c != 0), "{launch_corrs:?}");
        launch_corrs.sort_unstable();
        exec_corrs.sort_unstable();
        assert_eq!(launch_corrs, exec_corrs);

        // the implicit wait shows up as a host-idle interval
        assert!(records.iter().any(|r| r.kind == TraceKind::HostIdle));

        // and the whole thing exports as a valid Chrome trace with the
        // launch → kernel flow resolved
        let json = Export::new()
            .with_trace_rank(TraceRank {
                rank: 0,
                host: "dirac00".to_owned(),
                epoch: 0.0,
                records,
                prof: Vec::new(),
            })
            .to(ChromeTrace)
            .unwrap();
        let stats = validate_chrome_trace(&json).expect("valid chrome trace");
        assert!(stats.flow_pairs >= 1, "launch→exec flow missing");
    }

    #[test]
    fn memset_gets_no_host_idle_probe() {
        let rt = Arc::new(GpuRuntime::single(
            GpuConfig::dirac_node().with_context_init(0.0),
        ));
        let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
        let cuda = IpmCuda::new(ipm.clone(), rt);
        let dev = cuda.cuda_malloc(1024).unwrap();
        let k = Kernel::timed("busy", KernelCost::Fixed(0.5));
        launch_kernel(&cuda, &k, LaunchConfig::simple(1u32, 1u32), &[]).unwrap();
        cuda.cuda_memset(dev, 0, 1024).unwrap();
        let p = ipm.profile();
        // no idle was booked, and memset didn't wait for the kernel
        assert_eq!(p.host_idle_time(), 0.0);
        assert!(p.time_of("cudaMemset") < 1e-3);
    }

    #[test]
    fn per_stream_exec_entries() {
        let rt = Arc::new(GpuRuntime::single(
            GpuConfig::dirac_node().with_context_init(0.0),
        ));
        let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
        let cuda = IpmCuda::new(ipm.clone(), rt);
        let s1 = cuda.cuda_stream_create().unwrap();
        let k = Kernel::timed("k", KernelCost::Fixed(0.1));
        launch_kernel(&cuda, &k, LaunchConfig::simple(1u32, 1u32), &[]).unwrap();
        launch_kernel(
            &cuda,
            &k,
            LaunchConfig::simple(1u32, 1u32).on_stream(s1),
            &[],
        )
        .unwrap();
        cuda.finalize();
        let p = ipm.profile();
        assert!(p.time_of("@CUDA_EXEC_STRM00") > 0.09);
        assert!(p.time_of(&EventSignature::exec_stream_name(s1.0)) > 0.09);
    }

    #[test]
    fn exec_time_correction_shrinks_measurements() {
        let measure = |correction: Option<f64>| {
            let rt = Arc::new(GpuRuntime::single(
                GpuConfig::dirac_node().with_context_init(0.0),
            ));
            let ipm = Ipm::new(
                rt.clock().clone(),
                IpmConfig {
                    exec_time_correction: correction,
                    ..IpmConfig::default()
                },
            );
            let cuda = IpmCuda::new(ipm.clone(), rt);
            let k = Kernel::timed("k", KernelCost::Fixed(0.01));
            launch_kernel(&cuda, &k, LaunchConfig::simple(1u32, 1u32), &[]).unwrap();
            cuda.finalize();
            ipm.profile().time_of("@CUDA_EXEC_STRM00")
        };
        let raw = measure(None);
        let corrected = measure(Some(8.5e-6));
        assert!(
            corrected < raw,
            "correction had no effect: {corrected} vs {raw}"
        );
    }

    #[test]
    fn every_call_policy_does_not_deadlock_on_launch() {
        // regression: the launch wrapper used to sweep the KTT while
        // holding its lock under KttCheckPolicy::EveryCall
        let rt = Arc::new(GpuRuntime::single(
            GpuConfig::dirac_node().with_context_init(0.0),
        ));
        let ipm = Ipm::new(
            rt.clock().clone(),
            IpmConfig {
                ktt_policy: crate::ktt::KttCheckPolicy::EveryCall,
                ..IpmConfig::default()
            },
        );
        let cuda = IpmCuda::new(ipm.clone(), rt);
        let k = Kernel::timed("k", KernelCost::Fixed(1e-4));
        for _ in 0..16 {
            launch_kernel(&cuda, &k, LaunchConfig::simple(1u32, 1u32), &[]).unwrap();
            cuda.cuda_stream_query(StreamId::DEFAULT).ok();
        }
        cuda.cuda_thread_synchronize().unwrap();
        cuda.finalize();
        assert_eq!(ipm.profile().count_of("cudaLaunch"), 16);
        assert!(ipm.profile().time_of("@CUDA_EXEC_STRM00") > 0.0);
    }

    #[test]
    fn monitoring_overhead_is_small_but_nonzero() {
        let rt = Arc::new(GpuRuntime::single(
            GpuConfig::dirac_node().with_context_init(0.0),
        ));
        let clock = rt.clock().clone();
        let ipm = Ipm::new(clock.clone(), IpmConfig::default());
        let cuda = IpmCuda::new(ipm, rt);
        let before = clock.now();
        for _ in 0..1000 {
            cuda.cuda_stream_query(StreamId::DEFAULT).ok();
        }
        let per_call = (clock.now() - before) / 1000.0;
        // bare call is 0.3 µs; wrapper adds 0.3 µs more
        assert!(per_call < 2e-6, "per-call cost {per_call}");
        assert!(per_call > 0.3e-6, "monitoring added nothing? {per_call}");
    }

    #[test]
    fn return_values_pass_through_unchanged() {
        let rt = Arc::new(GpuRuntime::single(
            GpuConfig::dirac_node().with_context_init(0.0),
        ));
        let ipm = Ipm::new(rt.clock().clone(), IpmConfig::default());
        let cuda = IpmCuda::new(ipm, rt);
        assert_eq!(cuda.cuda_get_device_count().unwrap(), 1);
        assert!(cuda.cuda_set_device(7).is_err());
        let p = cuda.cuda_malloc(16).unwrap();
        cuda.cuda_memcpy_h2d(p, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        cuda.cuda_memcpy_d2h(&mut out, p).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }
}
