//! The performance data hash table (paper Fig. 1).
//!
//! IPM's central data structure: for each event signature it stores the
//! number of calls, the total time, and the per-call minimum and maximum.
//! The real IPM uses a fixed-size open-addressing table so monitoring
//! never allocates unboundedly on the hot path; we keep that property with
//! a **capacity cap** (overflowing signatures are counted, not stored) and
//! two layers of concurrency structure:
//!
//! * **Per-thread delta cells**: the record path ([`PerfTable::update_key`])
//!   deposits into a cell owned by the calling thread — an uncontended
//!   private mutex around a small [`SigKey`] → [`RunningStats`] map whose
//!   capacity survives flushes, so a steady-state recorded call performs
//!   no shared-lock acquisition and no heap allocation.
//! * **Lock-striped shards**: every read path first *flushes* the delta
//!   cells into the shared shards (where the capacity cap is enforced),
//!   then reads. Flushing drains each cell, so no observation is ever
//!   counted twice, and cells are registered in the table so no
//!   observation is lost when a thread exits.
//!
//! The striping degree is an explicit parameter because it is one of the
//! ablations benchmarked in `ipm-bench`.

use crate::sig::{EventSignature, SigKey};
use ipm_sim_core::RunningStats;
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Weak};

// Model-checking flavour: under `--cfg loom` the stripe/cell mutexes and
// the len/overflow atomics become loom primitives so every interleaving of
// the update/flush path is explored (see `tests/loom.rs`). The APIs are
// identical.
#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
use loom::sync::Mutex;
#[cfg(not(loom))]
use parking_lot::Mutex;
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};

/// Default maximum number of distinct signatures (mirrors IPM's
/// `MAXSIZE_HASH`-style compile-time bound).
pub const DEFAULT_CAPACITY: usize = 32 * 1024;

/// Default number of lock stripes.
pub const DEFAULT_SHARDS: usize = 16;

/// One thread's private accumulator: deltas not yet merged into the
/// shared shards. The mutex is uncontended in steady state (only the
/// owning thread and an occasional flusher touch it).
#[derive(Default)]
struct DeltaCell {
    deltas: Mutex<HashMap<SigKey, RunningStats>>,
}

thread_local! {
    /// Per-thread cache of this thread's cells, keyed by table identity.
    /// The hot slot covers the common one-table case; `others` holds weak
    /// references for threads that feed several tables.
    static THREAD_CELLS: RefCell<ThreadCells> = RefCell::new(ThreadCells {
        fast_id: u64::MAX,
        fast: None,
        others: HashMap::new(),
    });
}

struct ThreadCells {
    fast_id: u64,
    fast: Option<Arc<DeltaCell>>,
    others: HashMap<u64, Weak<DeltaCell>>,
}

/// Process-unique table identities for the thread-local cell cache.
/// Deliberately a std atomic even under loom: identity allocation is not
/// part of the modeled protocol.
fn next_table_id() -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Sharded, capacity-bounded statistics table with per-thread delta cells.
pub struct PerfTable {
    /// Identity for the thread-local cell cache.
    id: u64,
    shards: Box<[Mutex<HashMap<SigKey, RunningStats>>]>,
    /// Every delta cell ever handed to a thread. The table holds the
    /// strong reference, so a thread exiting never takes deltas with it.
    cells: Mutex<Vec<Arc<DeltaCell>>>,
    /// Maximum total entries across all shards.
    capacity: usize,
    /// Entries currently stored (approximate upper bound maintained
    /// atomically; never undercounts).
    len: AtomicU64,
    /// Observations dropped because the table was full.
    overflow: AtomicU64,
}

impl PerfTable {
    /// Table with default capacity and striping.
    pub fn new() -> Self {
        Self::with_shape(DEFAULT_CAPACITY, DEFAULT_SHARDS)
    }

    /// Table with explicit capacity and stripe count (stripes are rounded
    /// up to a power of two).
    pub fn with_shape(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let vec: Vec<_> = (0..shards).map(|_| Mutex::new(HashMap::new())).collect();
        Self {
            id: next_table_id(),
            shards: vec.into_boxed_slice(),
            cells: Mutex::new(Vec::new()),
            capacity,
            len: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_for(&self, key: &SigKey) -> &Mutex<HashMap<SigKey, RunningStats>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let idx = (h.finish() as usize) & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// Run `f` against this thread's delta cell, creating and registering
    /// the cell on first use.
    #[inline]
    fn with_cell(&self, f: impl FnOnce(&DeltaCell)) {
        THREAD_CELLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            if tls.fast_id == self.id {
                if let Some(cell) = tls.fast.clone() {
                    drop(tls);
                    return f(&cell);
                }
            }
            let cell = self.lookup_or_register_cell(&mut tls);
            drop(tls);
            f(&cell);
        });
    }

    #[cold]
    fn lookup_or_register_cell(&self, tls: &mut ThreadCells) -> Arc<DeltaCell> {
        let cell = match tls.others.get(&self.id).and_then(Weak::upgrade) {
            Some(cell) => cell,
            None => {
                let cell = Arc::new(DeltaCell::default());
                self.cells.lock().push(cell.clone());
                // drop cache entries for tables that no longer exist
                tls.others.retain(|_, w| w.strong_count() > 0);
                cell
            }
        };
        tls.others.insert(self.id, Arc::downgrade(&cell));
        if let Some(prev) = tls.fast.take() {
            tls.others.insert(tls.fast_id, Arc::downgrade(&prev));
        }
        tls.fast_id = self.id;
        tls.fast = Some(cell.clone());
        cell
    }

    /// Record one observation of `key` with the given duration — the
    /// `UPDATE_DATA` of the wrapper anatomy (Fig. 2). Lands in the calling
    /// thread's delta cell: no shared lock, and no allocation once the
    /// cell has seen the key (the cell map keeps its capacity across
    /// flushes).
    #[inline]
    pub fn update_key(&self, key: SigKey, duration: f64) {
        self.with_cell(|cell| {
            cell.deltas.lock().entry(key).or_default().record(duration);
        });
    }

    /// [`PerfTable::update_key`] for a string-keyed signature: interns the
    /// name(s) first. Report-path and test convenience — the facades
    /// resolve their names once, not per call.
    pub fn update(&self, sig: &EventSignature, duration: f64) {
        self.update_key(sig.key(), duration);
    }

    /// Merge every thread's pending deltas into the shared shards. All
    /// read paths call this first, so reads observe every completed
    /// `update_key`. Draining keeps each cell's map capacity, preserving
    /// the no-allocation steady state.
    fn flush_cells(&self) {
        let cells: Vec<Arc<DeltaCell>> = self.cells.lock().iter().cloned().collect();
        for cell in cells {
            let drained: Vec<(SigKey, RunningStats)> = cell.deltas.lock().drain().collect();
            for (key, stats) in drained {
                self.merge(key, stats);
            }
        }
    }

    /// Merge one flushed delta into its shard, enforcing the capacity cap
    /// (a dropped delta counts all its observations as overflow).
    fn merge(&self, key: SigKey, delta: RunningStats) {
        let mut shard = self.shard_for(&key).lock();
        if let Some(stats) = shard.get_mut(&key) {
            stats.merge(&delta);
            return;
        }
        if self.len.load(Ordering::Relaxed) as usize >= self.capacity {
            self.overflow.fetch_add(delta.count, Ordering::Relaxed);
            return;
        }
        self.len.fetch_add(1, Ordering::Relaxed);
        shard.insert(key, delta);
    }

    /// Look up the statistics for a signature.
    pub fn get(&self, sig: &EventSignature) -> Option<RunningStats> {
        self.flush_cells();
        let key = sig.key();
        self.shard_for(&key).lock().get(&key).copied()
    }

    /// Number of distinct signatures stored.
    pub fn len(&self) -> usize {
        self.flush_cells();
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Observations dropped due to the capacity cap.
    pub fn overflow(&self) -> u64 {
        self.flush_cells();
        self.overflow.load(Ordering::Relaxed)
    }

    /// Snapshot all entries with names resolved, deterministically ordered
    /// by (name, bytes, region, detail). Used at report time; not a hot
    /// path.
    pub fn snapshot(&self) -> Vec<(EventSignature, RunningStats)> {
        self.flush_cells();
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            for (key, stats) in shard.lock().iter() {
                out.push((key.resolve(), *stats));
            }
        }
        out.sort_by(|(a, _), (b, _)| {
            (&a.name, a.bytes, a.region, &a.detail).cmp(&(&b.name, b.bytes, b.region, &b.detail))
        });
        out
    }

    /// Aggregate total time per *name* (summing over bytes/region/detail) —
    /// the banner's view of the table.
    pub fn totals_by_name(&self) -> Vec<(String, RunningStats)> {
        let mut map: HashMap<String, RunningStats> = HashMap::new();
        for (sig, stats) in self.snapshot() {
            map.entry(sig.name.to_string()).or_default().merge(&stats);
        }
        let mut out: Vec<_> = map.into_iter().collect();
        out.sort_by(|a, b| b.1.total.partial_cmp(&a.1.total).expect("finite totals"));
        out
    }

    /// Sum of total durations over entries whose name satisfies `pred`.
    pub fn time_where(&self, pred: impl Fn(&str) -> bool) -> f64 {
        self.snapshot()
            .iter()
            .filter(|(s, _)| pred(&s.name))
            .map(|(_, st)| st.total)
            .sum()
    }
}

impl Default for PerfTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn update_accumulates_per_signature() {
        let t = PerfTable::new();
        let sig = EventSignature::call("cudaMemcpy(D2H)", 4096);
        t.update(&sig, 1.0);
        t.update(&sig, 3.0);
        let stats = t.get(&sig).unwrap();
        assert_eq!(stats.count, 2);
        assert_eq!(stats.total, 4.0);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 3.0);
    }

    #[test]
    fn update_key_is_the_hot_path_form_of_update() {
        let t = PerfTable::new();
        let sig = EventSignature::call("cudaLaunch", 0).in_region(2);
        t.update_key(sig.key(), 0.5);
        t.update(&sig, 0.25);
        let stats = t.get(&sig).unwrap();
        assert_eq!(stats.count, 2);
        assert_eq!(stats.total, 0.75);
    }

    #[test]
    fn distinct_byte_counts_get_distinct_entries() {
        let t = PerfTable::new();
        t.update(&EventSignature::call("cudaMemcpy(H2D)", 100), 0.1);
        t.update(&EventSignature::call("cudaMemcpy(H2D)", 200), 0.2);
        assert_eq!(t.len(), 2);
        // but the banner view merges them by name
        let totals = t.totals_by_name();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].1.count, 2);
    }

    #[test]
    fn capacity_cap_counts_overflow() {
        let t = PerfTable::with_shape(4, 2);
        for i in 0..10u64 {
            t.update(&EventSignature::call("x", i), 0.1);
        }
        assert!(t.len() <= 4);
        assert!(t.overflow() >= 6);
        // existing entries still update after saturation
        let first = EventSignature::call("x", 0);
        if let Some(before) = t.get(&first) {
            t.update(&first, 0.1);
            assert_eq!(t.get(&first).unwrap().count, before.count + 1);
        }
    }

    #[test]
    fn reads_observe_deltas_still_resident_in_cells() {
        // no explicit flush API: every read path flushes implicitly
        let t = PerfTable::new();
        t.update(&EventSignature::call("MPI_Send", 8), 1.0);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
        t.update(&EventSignature::call("MPI_Send", 8), 1.0);
        assert_eq!(
            t.get(&EventSignature::call("MPI_Send", 8)).unwrap().count,
            2
        );
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1.count, 2);
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let t = PerfTable::new();
        t.update(&EventSignature::call("zeta", 0), 0.1);
        t.update(&EventSignature::call("alpha", 4), 0.1);
        t.update(&EventSignature::call("alpha", 2), 0.1);
        t.update(&EventSignature::call("alpha", 2).in_region(1), 0.1);
        let names: Vec<(String, u64, u16)> = t
            .snapshot()
            .into_iter()
            .map(|(s, _)| (s.name.to_string(), s.bytes, s.region))
            .collect();
        assert_eq!(
            names,
            vec![
                ("alpha".to_owned(), 2, 0),
                ("alpha".to_owned(), 2, 1),
                ("alpha".to_owned(), 4, 0),
                ("zeta".to_owned(), 0, 0),
            ]
        );
    }

    #[test]
    fn totals_sorted_descending() {
        let t = PerfTable::new();
        t.update(&EventSignature::call("small", 0), 0.1);
        t.update(&EventSignature::call("big", 0), 5.0);
        t.update(&EventSignature::call("mid", 0), 1.0);
        let names: Vec<_> = t.totals_by_name().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["big", "mid", "small"]);
    }

    #[test]
    fn time_where_filters_by_family() {
        let t = PerfTable::new();
        t.update(&EventSignature::call("MPI_Send", 8), 1.0);
        t.update(&EventSignature::call("MPI_Recv", 8), 2.0);
        t.update(&EventSignature::call("cudaMemcpy(D2H)", 8), 4.0);
        assert_eq!(t.time_where(|n| n.starts_with("MPI_")), 3.0);
        assert_eq!(t.time_where(|n| n.starts_with("cuda")), 4.0);
    }

    #[test]
    fn concurrent_updates_lose_nothing() {
        let t = Arc::new(PerfTable::new());
        let threads: Vec<_> = (0..8)
            .map(|k| {
                let t = t.clone();
                thread::spawn(move || {
                    let sig = EventSignature::call("hot", 0);
                    let own = EventSignature::call("own", k);
                    for _ in 0..10_000 {
                        t.update(&sig, 1e-6);
                        t.update(&own, 1e-6);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(
            t.get(&EventSignature::call("hot", 0)).unwrap().count,
            80_000
        );
        for k in 0..8 {
            assert_eq!(
                t.get(&EventSignature::call("own", k)).unwrap().count,
                10_000
            );
        }
        assert_eq!(t.overflow(), 0);
    }

    #[test]
    fn exited_threads_leave_their_deltas_behind() {
        // the table owns the strong reference to each cell: a thread
        // dying with unflushed deltas must not lose them
        let t = Arc::new(PerfTable::new());
        let h = {
            let t = t.clone();
            thread::spawn(move || {
                t.update(&EventSignature::call("MPI_Barrier", 0), 0.5);
            })
        };
        h.join().unwrap();
        assert_eq!(
            t.get(&EventSignature::call("MPI_Barrier", 0))
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn one_thread_feeding_two_tables_keeps_them_separate() {
        let a = PerfTable::new();
        let b = PerfTable::new();
        let sig = EventSignature::call("cudaFree", 0);
        a.update(&sig, 1.0);
        b.update(&sig, 2.0);
        a.update(&sig, 1.0);
        assert_eq!(a.get(&sig).unwrap().count, 2);
        assert_eq!(a.get(&sig).unwrap().total, 2.0);
        assert_eq!(b.get(&sig).unwrap().count, 1);
        assert_eq!(b.get(&sig).unwrap().total, 2.0);
    }

    #[test]
    fn empty_table_reports_empty() {
        let t = PerfTable::new();
        assert!(t.is_empty());
        assert!(t.snapshot().is_empty());
        assert!(t.totals_by_name().is_empty());
    }
}
