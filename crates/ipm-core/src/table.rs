//! The performance data hash table (paper Fig. 1).
//!
//! IPM's central data structure: for each event signature it stores the
//! number of calls, the total time, and the per-call minimum and maximum.
//! The real IPM uses a fixed-size open-addressing table so monitoring
//! never allocates unboundedly on the hot path; we keep that property with
//! a **capacity cap** (overflowing signatures are counted, not stored) and
//! add **lock striping** so OpenMP threads — or, in this reproduction,
//! concurrent facade users — can update without a global bottleneck.
//! The striping degree is an explicit parameter because it is one of the
//! ablations benchmarked in `ipm-bench`.

use crate::sig::EventSignature;
use ipm_sim_core::RunningStats;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

// Model-checking flavour: under `--cfg loom` the stripe mutex and the
// len/overflow atomics become loom primitives so every interleaving of the
// update path is explored (see `tests/loom.rs`). The APIs are identical.
#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
use loom::sync::Mutex;
#[cfg(not(loom))]
use parking_lot::Mutex;
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};

/// Default maximum number of distinct signatures (mirrors IPM's
/// `MAXSIZE_HASH`-style compile-time bound).
pub const DEFAULT_CAPACITY: usize = 32 * 1024;

/// Default number of lock stripes.
pub const DEFAULT_SHARDS: usize = 16;

/// Sharded, capacity-bounded statistics table.
pub struct PerfTable {
    shards: Box<[Mutex<HashMap<EventSignature, RunningStats>>]>,
    /// Maximum total entries across all shards.
    capacity: usize,
    /// Entries currently stored (approximate upper bound maintained
    /// atomically; never undercounts).
    len: AtomicU64,
    /// Updates dropped because the table was full.
    overflow: AtomicU64,
}

impl PerfTable {
    /// Table with default capacity and striping.
    pub fn new() -> Self {
        Self::with_shape(DEFAULT_CAPACITY, DEFAULT_SHARDS)
    }

    /// Table with explicit capacity and stripe count (stripes are rounded
    /// up to a power of two).
    pub fn with_shape(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let vec: Vec<_> = (0..shards).map(|_| Mutex::new(HashMap::new())).collect();
        Self {
            shards: vec.into_boxed_slice(),
            capacity,
            len: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_for(&self, sig: &EventSignature) -> &Mutex<HashMap<EventSignature, RunningStats>> {
        let mut h = DefaultHasher::new();
        sig.hash(&mut h);
        let idx = (h.finish() as usize) & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// Record one observation of `sig` with the given duration. This is the
    /// `UPDATE_DATA` of the wrapper anatomy (Fig. 2).
    pub fn update(&self, sig: &EventSignature, duration: f64) {
        let mut shard = self.shard_for(sig).lock();
        if let Some(stats) = shard.get_mut(sig) {
            stats.record(duration);
            return;
        }
        if self.len.load(Ordering::Relaxed) as usize >= self.capacity {
            self.overflow.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.len.fetch_add(1, Ordering::Relaxed);
        let mut stats = RunningStats::new();
        stats.record(duration);
        shard.insert(sig.clone(), stats);
    }

    /// Look up the statistics for a signature.
    pub fn get(&self, sig: &EventSignature) -> Option<RunningStats> {
        self.shard_for(sig).lock().get(sig).copied()
    }

    /// Number of distinct signatures stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Updates dropped due to the capacity cap.
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Snapshot all entries (used at report time; not a hot path).
    pub fn snapshot(&self) -> Vec<(EventSignature, RunningStats)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            for (sig, stats) in shard.lock().iter() {
                out.push((sig.clone(), *stats));
            }
        }
        out
    }

    /// Aggregate total time per *name* (summing over bytes/region/detail) —
    /// the banner's view of the table.
    pub fn totals_by_name(&self) -> Vec<(String, RunningStats)> {
        let mut map: HashMap<String, RunningStats> = HashMap::new();
        for (sig, stats) in self.snapshot() {
            map.entry(sig.name.to_string()).or_default().merge(&stats);
        }
        let mut out: Vec<_> = map.into_iter().collect();
        out.sort_by(|a, b| b.1.total.partial_cmp(&a.1.total).expect("finite totals"));
        out
    }

    /// Sum of total durations over entries whose name satisfies `pred`.
    pub fn time_where(&self, pred: impl Fn(&str) -> bool) -> f64 {
        self.snapshot()
            .iter()
            .filter(|(s, _)| pred(&s.name))
            .map(|(_, st)| st.total)
            .sum()
    }
}

impl Default for PerfTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn update_accumulates_per_signature() {
        let t = PerfTable::new();
        let sig = EventSignature::call("cudaMemcpy(D2H)", 4096);
        t.update(&sig, 1.0);
        t.update(&sig, 3.0);
        let stats = t.get(&sig).unwrap();
        assert_eq!(stats.count, 2);
        assert_eq!(stats.total, 4.0);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 3.0);
    }

    #[test]
    fn distinct_byte_counts_get_distinct_entries() {
        let t = PerfTable::new();
        t.update(&EventSignature::call("cudaMemcpy(H2D)", 100), 0.1);
        t.update(&EventSignature::call("cudaMemcpy(H2D)", 200), 0.2);
        assert_eq!(t.len(), 2);
        // but the banner view merges them by name
        let totals = t.totals_by_name();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].1.count, 2);
    }

    #[test]
    fn capacity_cap_counts_overflow() {
        let t = PerfTable::with_shape(4, 2);
        for i in 0..10u64 {
            t.update(&EventSignature::call("x", i), 0.1);
        }
        assert!(t.len() <= 4);
        assert!(t.overflow() >= 6);
        // existing entries still update after saturation
        let first = EventSignature::call("x", 0);
        if let Some(before) = t.get(&first) {
            t.update(&first, 0.1);
            assert_eq!(t.get(&first).unwrap().count, before.count + 1);
        }
    }

    #[test]
    fn totals_sorted_descending() {
        let t = PerfTable::new();
        t.update(&EventSignature::call("small", 0), 0.1);
        t.update(&EventSignature::call("big", 0), 5.0);
        t.update(&EventSignature::call("mid", 0), 1.0);
        let names: Vec<_> = t.totals_by_name().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["big", "mid", "small"]);
    }

    #[test]
    fn time_where_filters_by_family() {
        let t = PerfTable::new();
        t.update(&EventSignature::call("MPI_Send", 8), 1.0);
        t.update(&EventSignature::call("MPI_Recv", 8), 2.0);
        t.update(&EventSignature::call("cudaMemcpy(D2H)", 8), 4.0);
        assert_eq!(t.time_where(|n| n.starts_with("MPI_")), 3.0);
        assert_eq!(t.time_where(|n| n.starts_with("cuda")), 4.0);
    }

    #[test]
    fn concurrent_updates_lose_nothing() {
        let t = Arc::new(PerfTable::new());
        let threads: Vec<_> = (0..8)
            .map(|k| {
                let t = t.clone();
                thread::spawn(move || {
                    let sig = EventSignature::call("hot", 0);
                    let own = EventSignature::call("own", k);
                    for _ in 0..10_000 {
                        t.update(&sig, 1e-6);
                        t.update(&own, 1e-6);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(
            t.get(&EventSignature::call("hot", 0)).unwrap().count,
            80_000
        );
        for k in 0..8 {
            assert_eq!(
                t.get(&EventSignature::call("own", k)).unwrap().count,
                10_000
            );
        }
        assert_eq!(t.overflow(), 0);
    }

    #[test]
    fn empty_table_reports_empty() {
        let t = PerfTable::new();
        assert!(t.is_empty());
        assert!(t.snapshot().is_empty());
        assert!(t.totals_by_name().is_empty());
    }
}
