//! Trace compaction & retention: conservation-checked merging of adjacent
//! records, and the k-way merge that replaced the drain-side global sort.
//!
//! The paper's premise is *low-overhead, always-on* monitoring: IPM keeps
//! fixed-size tables precisely so long runs don't grow memory. The trace
//! ring inherited that hard cap but paid for it by dropping newest-first
//! once full — a long run's trace lost its shape exactly where it got
//! interesting. This module adds the retention layer:
//!
//! * [`CompactPolicy`] — when a stripe passes its high-water mark, a pass
//!   merges adjacent short records of the same event signature into one
//!   summary record carrying [`TraceAgg`] `{count, total, min, max}` plus
//!   one kept exemplar interval, so the timeline keeps its envelope under
//!   the same hard memory cap.
//! * [`compact_records`] — the in-place merge pass itself. It **conserves
//!   per-signature event count and total virtual time exactly**: summing
//!   [`TraceRecord::event_count`] / [`TraceRecord::busy_total`] over the
//!   output equals the same sums over the input, per signature (proptested
//!   in `tests/properties.rs`, model-checked under loom).
//! * [`merge_runs`] — k-way merge of per-stripe pre-sorted runs. Records
//!   are appended in virtual-time order per rank, so each stripe's buffer
//!   is already (nearly) sorted; merging runs on drain replaces the old
//!   sort-everything-on-the-consumer-thread path and produces the *same
//!   record-for-record order* the stable global sort did.

use crate::trace::TraceRecord;
use std::cmp::Ordering;

/// Aggregate payload of a summary record: the statistics of every record
/// merged into it. `count`/`total` are conserved quantities; `min`/`max`
/// bound every merged record's individual duration; `exemplar` is the
/// `(begin, end)` interval of the longest single record absorbed, kept so
/// a compacted timeline still shows one representative real slice.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceAgg {
    /// Original records represented (each raw record counts 1).
    pub count: u64,
    /// Summed individual durations, virtual seconds.
    pub total: f64,
    /// Shortest individual duration merged.
    pub min: f64,
    /// Longest individual duration merged.
    pub max: f64,
    /// `(begin, end)` of the longest single record merged — the exemplar.
    pub exemplar: (f64, f64),
}

/// Retention policy of a trace ring.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompactPolicy {
    /// Resident records per stripe that trigger a compaction pass;
    /// 0 disables compaction entirely (the pre-retention drop-only mode).
    pub stripe_high_water: usize,
    /// Only records whose longest individual duration is at most this
    /// (virtual seconds) are merged — long slices always survive
    /// individually. `INFINITY` merges everything mergeable.
    pub max_merge_duration: f64,
}

impl CompactPolicy {
    /// Compaction off: a full stripe drops the new record, as before.
    pub const DISABLED: Self = Self {
        stripe_high_water: 0,
        max_merge_duration: f64::INFINITY,
    };

    /// Compact a stripe whenever it holds `high_water` records, merging
    /// any run of adjacent same-signature records.
    pub fn with_high_water(high_water: usize) -> Self {
        Self {
            stripe_high_water: high_water,
            max_merge_duration: f64::INFINITY,
        }
    }

    /// Restrict merging to records no longer than `secs`.
    pub fn merge_at_most(mut self, secs: f64) -> Self {
        self.max_merge_duration = secs;
        self
    }

    /// Whether this policy ever compacts.
    pub fn is_enabled(&self) -> bool {
        self.stripe_high_water > 0
    }
}

impl Default for CompactPolicy {
    fn default() -> Self {
        Self::DISABLED
    }
}

/// Drain/export ordering: `(begin, end)`, the key the old global sort used.
pub(crate) fn cmp_time(a: &TraceRecord, b: &TraceRecord) -> Ordering {
    a.begin
        .partial_cmp(&b.begin)
        .expect("finite timestamps")
        .then(a.end.partial_cmp(&b.end).expect("finite timestamps"))
}

/// Two records share an event signature when every field the perf table
/// keys on matches: kind, name, detail, byte attribute, user region, and
/// device stream. Only same-signature records may merge, so a summary is
/// attributable exactly like the raw records it absorbed.
pub fn same_signature(a: &TraceRecord, b: &TraceRecord) -> bool {
    a.kind == b.kind
        && a.bytes == b.bytes
        && a.region == b.region
        && a.stream == b.stream
        && a.name == b.name
        && a.detail == b.detail
}

/// Is this record eligible for merging under `policy`? Records carrying a
/// correlation id never merge — flow arrows (`cudaLaunch` → kernel) must
/// keep binding to a real slice — and neither do records longer than the
/// policy's merge ceiling.
fn mergeable(rec: &TraceRecord, policy: &CompactPolicy) -> bool {
    rec.corr == 0 && rec.longest() <= policy.max_merge_duration
}

/// Fold `rec` into `tail` (same signature, `tail` immediately precedes
/// `rec` in time order). The summary spans `first_begin .. last_end`.
fn fold(tail: &mut TraceRecord, rec: &TraceRecord) {
    let a = tail.agg_or_unit();
    let b = rec.agg_or_unit();
    tail.agg = Some(TraceAgg {
        count: a.count + b.count,
        total: a.total + b.total,
        min: a.min.min(b.min),
        max: a.max.max(b.max),
        exemplar: if b.max > a.max {
            b.exemplar
        } else {
            a.exemplar
        },
    });
    tail.end = rec.end; // last_end; begin stays first_begin
    tail.corr = 0;
}

/// One compaction pass over a time-sorted buffer: merge every run of
/// adjacent, mergeable, same-signature records into a single summary
/// record. In-place, stable, O(n). Returns how many records were
/// compacted away (input length minus output length).
pub fn compact_records(buf: &mut Vec<TraceRecord>, policy: &CompactPolicy) -> usize {
    let before = buf.len();
    let mut write = 0usize;
    for read in 0..buf.len() {
        if write > 0 {
            let (head, rest) = buf.split_at_mut(read);
            let tail = &mut head[write - 1];
            let rec = &rest[0];
            if mergeable(tail, policy) && mergeable(rec, policy) && same_signature(tail, rec) {
                fold(tail, rec);
                continue;
            }
        }
        buf.swap(write, read);
        write += 1;
    }
    buf.truncate(write);
    before - write
}

/// K-way merge of pre-sorted runs into one `(begin, end)`-ordered vector.
/// Ties across runs resolve to the lower run index, which reproduces the
/// old stable global sort of the runs' concatenation record-for-record
/// (proptested in `tests/properties.rs`).
pub fn merge_runs(mut runs: Vec<Vec<TraceRecord>>) -> Vec<TraceRecord> {
    runs.retain(|r| !r.is_empty());
    // tournament of two-way merges: log2(stripes) passes of the cheapest
    // possible inner loop (one comparison, move not clone, per record).
    // Merging *adjacent* runs keeps equal keys in run-index order at every
    // round, so the result is the stable global sort of the concatenation.
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(a, b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

/// Stable two-way merge: ties go to `a`, the lower-index run.
fn merge_two(a: Vec<TraceRecord>, b: Vec<TraceRecord>) -> Vec<TraceRecord> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut a = a.into_iter();
    let mut b = b.into_iter();
    let (mut x, mut y) = (a.next(), b.next());
    while let (Some(ra), Some(rb)) = (&x, &y) {
        if cmp_time(rb, ra) == Ordering::Less {
            out.push(y.take().expect("checked Some"));
            y = b.next();
        } else {
            out.push(x.take().expect("checked Some"));
            x = a.next();
        }
    }
    out.extend(x);
    out.extend(a);
    out.extend(y);
    out.extend(b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;
    use std::sync::Arc;

    fn rec(name: &str, begin: f64, end: f64) -> TraceRecord {
        TraceRecord {
            kind: TraceKind::Call,
            name: Arc::from(name),
            detail: None,
            begin,
            end,
            bytes: 0,
            region: 0,
            stream: None,
            corr: 0,
            agg: None,
        }
    }

    #[test]
    fn adjacent_same_signature_records_merge_into_a_summary() {
        let mut buf = vec![
            rec("cudaLaunch", 0.0, 0.1),
            rec("cudaLaunch", 0.2, 0.5),
            rec("cudaLaunch", 0.6, 0.7),
            rec("MPI_Send", 1.0, 1.2),
        ];
        let removed = compact_records(&mut buf, &CompactPolicy::with_high_water(1));
        assert_eq!(removed, 2);
        assert_eq!(buf.len(), 2);
        let s = &buf[0];
        assert_eq!(&*s.name, "cudaLaunch");
        assert_eq!(s.begin, 0.0, "first_begin");
        assert_eq!(s.end, 0.7, "last_end");
        let a = s.agg.expect("summary");
        assert_eq!(a.count, 3);
        assert!((a.total - 0.5).abs() < 1e-12);
        assert!((a.min - 0.1).abs() < 1e-12);
        assert!((a.max - 0.3).abs() < 1e-12);
        assert_eq!(a.exemplar, (0.2, 0.5), "longest slice kept as exemplar");
        assert!(buf[1].agg.is_none(), "lone record stays raw");
    }

    #[test]
    fn summaries_merge_with_later_records_and_conserve() {
        let mut buf = vec![rec("x", 0.0, 1.0), rec("x", 1.0, 2.0), rec("x", 2.0, 2.25)];
        compact_records(&mut buf, &CompactPolicy::with_high_water(1));
        assert_eq!(buf.len(), 1);
        // a second pass over [summary, new records] keeps conserving
        buf.push(rec("x", 3.0, 3.5));
        compact_records(&mut buf, &CompactPolicy::with_high_water(1));
        assert_eq!(buf.len(), 1);
        let a = buf[0].agg.unwrap();
        assert_eq!(a.count, 4);
        assert!((a.total - 2.75).abs() < 1e-12);
        assert_eq!(a.min, 0.25);
        assert_eq!(a.max, 1.0);
        assert_eq!(buf[0].event_count(), 4);
        assert!((buf[0].busy_total() - 2.75).abs() < 1e-12);
    }

    #[test]
    fn correlated_and_long_records_never_merge() {
        let mut launch = rec("cudaLaunch", 0.0, 0.1);
        launch.corr = 7;
        let mut launch2 = rec("cudaLaunch", 0.2, 0.3);
        launch2.corr = 8;
        let mut buf = vec![launch, launch2];
        assert_eq!(
            compact_records(&mut buf, &CompactPolicy::with_high_water(1)),
            0
        );

        let policy = CompactPolicy::with_high_water(1).merge_at_most(0.05);
        let mut buf = vec![
            rec("k", 0.0, 0.01),
            rec("k", 0.1, 0.11),
            rec("k", 1.0, 2.0), // long: survives individually
            rec("k", 2.0, 2.01),
        ];
        assert_eq!(compact_records(&mut buf, &policy), 1);
        assert_eq!(buf.len(), 3);
        assert!(buf[1].agg.is_none() && (buf[1].end - buf[1].begin) == 1.0);
    }

    #[test]
    fn different_signatures_split_runs() {
        let mut a = rec("cudaMemcpy(H2D)", 0.0, 0.1);
        a.bytes = 64;
        let mut b = rec("cudaMemcpy(H2D)", 0.2, 0.3);
        b.bytes = 128; // different byte attribute: different signature
        let mut buf = vec![a, b];
        assert_eq!(
            compact_records(&mut buf, &CompactPolicy::with_high_water(1)),
            0
        );
    }

    #[test]
    fn merge_runs_equals_stable_sort_of_concatenation() {
        let runs = vec![
            vec![rec("a", 0.0, 1.0), rec("a", 2.0, 3.0)],
            vec![rec("b", 0.0, 1.0), rec("b", 1.5, 1.6)],
            vec![],
            vec![rec("c", 0.5, 0.6)],
        ];
        let mut reference: Vec<TraceRecord> = runs.iter().flatten().cloned().collect();
        reference.sort_by(cmp_time);
        let merged = merge_runs(runs);
        assert_eq!(merged, reference);
        // the (0.0, 1.0) tie resolved to run 0's record first
        assert_eq!(&*merged[0].name, "a");
        assert_eq!(&*merged[1].name, "b");
    }
}
