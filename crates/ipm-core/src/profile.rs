//! Profile data model: what one rank's monitoring run produces.
//!
//! A [`RankProfile`] is the content of IPM's XML log for one MPI task: the
//! run metadata plus every hash-table entry. [`RankProfile`] also derives
//! the high-level characteristics the banner reports (%comm, GPU
//! utilization, host idle time) by classifying entry names into families.

use ipm_sim_core::RunningStats;

/// Which subsystem an event belongs to, derived from its name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventFamily {
    Mpi,
    /// CUDA runtime/driver host-side calls.
    Cuda,
    Cublas,
    Cufft,
    /// `@CUDA_EXEC_*` pseudo-events: kernel time on the device.
    GpuExec,
    /// `@CUDA_HOST_IDLE`.
    HostIdle,
    Other,
}

/// Classify an event name (banner families, paper Figs. 4–6 and 11).
pub fn classify(name: &str) -> EventFamily {
    if name.starts_with("@CUDA_EXEC") {
        EventFamily::GpuExec
    } else if name == "@CUDA_HOST_IDLE" {
        EventFamily::HostIdle
    } else if name.starts_with("MPI_") {
        EventFamily::Mpi
    } else if name.starts_with("cublas") {
        EventFamily::Cublas
    } else if name.starts_with("cufft") {
        EventFamily::Cufft
    } else if name.starts_with("cuda") || name.starts_with("cu") {
        EventFamily::Cuda
    } else {
        EventFamily::Other
    }
}

/// One hash-table entry in a profile.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileEntry {
    pub name: String,
    /// Kernel symbol for GPU-exec entries.
    pub detail: Option<String>,
    pub bytes: u64,
    pub region: u16,
    pub stats: RunningStats,
}

impl ProfileEntry {
    /// The family this entry belongs to.
    pub fn family(&self) -> EventFamily {
        classify(&self.name)
    }
}

/// Monitor self-accounting: what the monitoring itself cost, measured on
/// the *wall* clock (real nanoseconds of bookkeeping — hash-table updates,
/// trace capture, KTT sweeps — not virtual time, which belongs to the
/// modeled run). The "monitor the monitor" numbers behind the banner's
/// `# monitor:` section and the XML `<monitor>` element.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonitorInfo {
    /// Wall-clock nanoseconds spent inside IPM bookkeeping.
    pub self_wall_ns: u64,
    /// Trace records offered to the ring.
    pub trace_emitted: u64,
    /// Trace records stored (possibly later drained).
    pub trace_captured: u64,
    /// Trace records refused because the ring was full.
    pub trace_dropped: u64,
    /// Trace records absorbed into summary records by compaction. The ring
    /// guarantees `trace_captured + trace_dropped + trace_compacted ==
    /// trace_emitted` (with compaction disabled `trace_compacted` is 0 and
    /// this is the original two-way invariant).
    pub trace_compacted: u64,
    /// High-water memory footprint of the trace ring, bytes.
    pub ring_hwm_bytes: u64,
}

/// The complete monitoring output of one rank.
#[derive(Clone, Debug, PartialEq)]
pub struct RankProfile {
    pub rank: usize,
    pub nranks: usize,
    pub host: String,
    pub command: String,
    /// Total wallclock (virtual seconds) of the monitored run.
    pub wallclock: f64,
    /// User region names; index 0 is the whole program.
    pub regions: Vec<String>,
    pub entries: Vec<ProfileEntry>,
    /// Events dropped by table/KTT capacity limits (monitoring fidelity
    /// diagnostics).
    pub dropped_events: u64,
    /// Self-accounting of the monitor's own cost.
    pub monitor: MonitorInfo,
}

impl RankProfile {
    /// Total time in entries of one family.
    pub fn family_time(&self, family: EventFamily) -> f64 {
        // `+ 0.0` normalizes the empty-sum identity (-0.0) to +0.0
        self.entries
            .iter()
            .filter(|e| e.family() == family)
            .map(|e| e.stats.total)
            .sum::<f64>()
            + 0.0
    }

    /// Communication fraction of wallclock (`%comm` in the banner).
    pub fn comm_fraction(&self) -> f64 {
        if self.wallclock == 0.0 {
            return 0.0;
        }
        self.family_time(EventFamily::Mpi) / self.wallclock
    }

    /// GPU utilization: device kernel time over wallclock (the paper's
    /// Amber study reports 35.96%).
    pub fn gpu_utilization(&self) -> f64 {
        if self.wallclock == 0.0 {
            return 0.0;
        }
        self.family_time(EventFamily::GpuExec) / self.wallclock
    }

    /// Total implicit host blocking (`@CUDA_HOST_IDLE`).
    pub fn host_idle_time(&self) -> f64 {
        self.family_time(EventFamily::HostIdle)
    }

    /// Aggregate stats per name, sorted by descending total time — the
    /// banner's function table.
    pub fn totals_by_name(&self) -> Vec<(String, RunningStats)> {
        let mut map = std::collections::HashMap::<String, RunningStats>::new();
        for e in &self.entries {
            map.entry(e.name.clone()).or_default().merge(&e.stats);
        }
        let mut out: Vec<_> = map.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.total
                .partial_cmp(&a.1.total)
                .expect("finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        out
    }

    /// Per-kernel device time: `(kernel symbol, stream-summed stats)`,
    /// sorted by descending total — the XML log's per-kernel breakdown.
    pub fn kernel_breakdown(&self) -> Vec<(String, RunningStats)> {
        let mut map = std::collections::HashMap::<String, RunningStats>::new();
        for e in &self.entries {
            if e.family() == EventFamily::GpuExec {
                let key = e.detail.clone().unwrap_or_else(|| "<unknown>".to_owned());
                map.entry(key).or_default().merge(&e.stats);
            }
        }
        let mut out: Vec<_> = map.into_iter().collect();
        out.sort_by(|a, b| b.1.total.partial_cmp(&a.1.total).expect("finite"));
        out
    }

    /// Total time for one entry name (0 when absent).
    pub fn time_of(&self, name: &str) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.stats.total)
            .sum::<f64>()
            + 0.0
    }

    /// Call count for one entry name.
    pub fn count_of(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.stats.count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, total: f64) -> ProfileEntry {
        let mut stats = RunningStats::new();
        stats.record(total);
        ProfileEntry {
            name: name.to_owned(),
            detail: None,
            bytes: 0,
            region: 0,
            stats,
        }
    }

    fn profile(entries: Vec<ProfileEntry>) -> RankProfile {
        RankProfile {
            rank: 0,
            nranks: 1,
            host: "dirac15".to_owned(),
            command: "./cuda.ipm".to_owned(),
            wallclock: 10.0,
            regions: vec!["<program>".to_owned()],
            entries,
            dropped_events: 0,
            monitor: MonitorInfo::default(),
        }
    }

    #[test]
    fn classification_covers_all_families() {
        assert_eq!(classify("MPI_Allreduce"), EventFamily::Mpi);
        assert_eq!(classify("cudaMemcpy(D2H)"), EventFamily::Cuda);
        assert_eq!(classify("cuMemcpyDtoH"), EventFamily::Cuda);
        assert_eq!(classify("cublasZgemm"), EventFamily::Cublas);
        assert_eq!(classify("cufftExecZ2Z"), EventFamily::Cufft);
        assert_eq!(classify("@CUDA_EXEC_STRM00"), EventFamily::GpuExec);
        assert_eq!(classify("@CUDA_HOST_IDLE"), EventFamily::HostIdle);
        assert_eq!(classify("fopen"), EventFamily::Other);
    }

    #[test]
    fn fractions_derive_from_families() {
        let p = profile(vec![
            entry("MPI_Send", 2.0),
            entry("@CUDA_EXEC_STRM00", 3.5),
            entry("@CUDA_HOST_IDLE", 1.0),
            entry("cudaMemcpy(D2H)", 0.5),
        ]);
        assert!((p.comm_fraction() - 0.2).abs() < 1e-12);
        assert!((p.gpu_utilization() - 0.35).abs() < 1e-12);
        assert_eq!(p.host_idle_time(), 1.0);
    }

    #[test]
    fn kernel_breakdown_groups_by_detail() {
        let mut e1 = entry("@CUDA_EXEC_STRM00", 1.0);
        e1.detail = Some("square".to_owned());
        let mut e2 = entry("@CUDA_EXEC_STRM01", 2.0);
        e2.detail = Some("square".to_owned());
        let mut e3 = entry("@CUDA_EXEC_STRM00", 0.5);
        e3.detail = Some("transpose".to_owned());
        let p = profile(vec![e1, e2, e3]);
        let breakdown = p.kernel_breakdown();
        assert_eq!(breakdown[0].0, "square");
        assert_eq!(breakdown[0].1.total, 3.0);
        assert_eq!(breakdown[1].0, "transpose");
    }

    #[test]
    fn zero_wallclock_is_safe() {
        let mut p = profile(vec![entry("MPI_Send", 1.0)]);
        p.wallclock = 0.0;
        assert_eq!(p.comm_fraction(), 0.0);
        assert_eq!(p.gpu_utilization(), 0.0);
    }

    #[test]
    fn lookups_by_name() {
        let p = profile(vec![entry("cudaLaunch", 0.25), entry("cudaLaunch", 0.75)]);
        assert_eq!(p.time_of("cudaLaunch"), 1.0);
        assert_eq!(p.count_of("cudaLaunch"), 2);
        assert_eq!(p.time_of("nothere"), 0.0);
    }
}
