//! Cross-rank aggregation.
//!
//! The paper's key differentiation from workstation profilers (§V) is that
//! IPM *integrates performance data across nodes* instead of leaving the
//! user with one file per MPI process. [`ClusterReport`] merges per-rank
//! profiles into the cluster-wide view: subsystem totals with
//! min/avg/max over ranks (the Fig. 11 header block), aggregated function
//! tables, per-kernel/per-rank matrices for imbalance analysis (Fig. 9),
//! and load-imbalance metrics.

use crate::monitor::Snapshot;
use crate::profile::{EventFamily, RankProfile};
use ipm_sim_core::RunningStats;
use std::collections::HashMap;

/// Min/avg/max of a per-rank quantity.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankSpread {
    pub total: f64,
    pub min: f64,
    pub max: f64,
}

impl RankSpread {
    fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        Self {
            // `+ 0.0` normalizes the empty-sum identity (-0.0)
            total: values.iter().sum::<f64>() + 0.0,
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Imbalance ratio `(max - min) / max` (0 = perfectly balanced). The
    /// paper quotes e.g. "imbalances of up to a factor of 55%" for Amber's
    /// ReduceForces kernel.
    pub fn imbalance(&self) -> f64 {
        if self.max <= 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.max
        }
    }
}

/// The merged view over all ranks of one run.
pub struct ClusterReport {
    pub command: String,
    pub nranks: usize,
    pub nodes: usize,
    pub wallclock_total: f64,
    pub wallclock_min: f64,
    pub wallclock_max: f64,
    profiles: Vec<RankProfile>,
}

impl ClusterReport {
    /// Merge per-rank profiles (sorted by rank internally).
    pub fn from_profiles(mut profiles: Vec<RankProfile>, nodes: usize) -> Self {
        assert!(!profiles.is_empty(), "cannot aggregate zero profiles");
        profiles.sort_by_key(|p| p.rank);
        let walls: Vec<f64> = profiles.iter().map(|p| p.wallclock).collect();
        Self {
            command: profiles[0].command.clone(),
            nranks: profiles.len(),
            nodes,
            wallclock_total: walls.iter().sum(),
            wallclock_min: walls.iter().copied().fold(f64::INFINITY, f64::min),
            wallclock_max: walls.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            profiles,
        }
    }

    /// The per-rank profiles, in rank order.
    pub fn profiles(&self) -> &[RankProfile] {
        &self.profiles
    }

    /// Per-rank spread of the time spent in a family.
    pub fn family_spread(&self, family: EventFamily) -> RankSpread {
        let values: Vec<f64> = self
            .profiles
            .iter()
            .map(|p| p.family_time(family))
            .collect();
        RankSpread::from_values(&values)
    }

    /// The subsystem rows of the Fig. 11 banner header (`MPI`, `CUDA`,
    /// `CUBLAS`, `CUFFT`), omitting subsystems with zero time.
    pub fn subsystem_rows(&self) -> Vec<(&'static str, RankSpread)> {
        let mut out = Vec::new();
        for (label, fam) in [
            ("MPI", EventFamily::Mpi),
            ("CUDA", EventFamily::Cuda),
            ("CUBLAS", EventFamily::Cublas),
            ("CUFFT", EventFamily::Cufft),
            ("GPU exec", EventFamily::GpuExec),
            ("host idle", EventFamily::HostIdle),
        ] {
            let spread = self.family_spread(fam);
            if spread.total > 0.0 {
                out.push((label, spread));
            }
        }
        out
    }

    /// Communication fraction: total MPI time over total wallclock.
    pub fn comm_fraction(&self) -> f64 {
        if self.wallclock_total == 0.0 {
            return 0.0;
        }
        self.family_spread(EventFamily::Mpi).total / self.wallclock_total
    }

    /// Average GPU utilization: device kernel time over wallclock.
    pub fn gpu_utilization(&self) -> f64 {
        if self.wallclock_total == 0.0 {
            return 0.0;
        }
        self.family_spread(EventFamily::GpuExec).total / self.wallclock_total
    }

    /// Host idle fraction of wallclock.
    pub fn host_idle_fraction(&self) -> f64 {
        if self.wallclock_total == 0.0 {
            return 0.0;
        }
        self.family_spread(EventFamily::HostIdle).total / self.wallclock_total
    }

    /// Aggregated function table, sorted by total time descending.
    pub fn totals_by_name(&self) -> Vec<(String, RunningStats)> {
        let mut map: HashMap<String, RunningStats> = HashMap::new();
        for p in &self.profiles {
            for (name, stats) in p.totals_by_name() {
                map.entry(name).or_default().merge(&stats);
            }
        }
        let mut out: Vec<_> = map.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.total
                .partial_cmp(&a.1.total)
                .expect("finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        out
    }

    /// Total time of one entry name across all ranks.
    pub fn time_of(&self, name: &str) -> f64 {
        self.profiles.iter().map(|p| p.time_of(name)).sum()
    }

    /// Call count of one entry name across all ranks.
    pub fn count_of(&self, name: &str) -> u64 {
        self.profiles.iter().map(|p| p.count_of(name)).sum()
    }

    /// Per-kernel, per-rank device-time matrix: `(kernel, times[rank])` —
    /// the data behind Fig. 9's per-node distribution view.
    pub fn kernel_rank_matrix(&self) -> Vec<(String, Vec<f64>)> {
        let mut kernels: Vec<String> = Vec::new();
        for p in &self.profiles {
            for (k, _) in p.kernel_breakdown() {
                if !kernels.contains(&k) {
                    kernels.push(k);
                }
            }
        }
        kernels
            .into_iter()
            .map(|k| {
                let times: Vec<f64> = self
                    .profiles
                    .iter()
                    .map(|p| {
                        p.kernel_breakdown()
                            .into_iter()
                            .find(|(name, _)| name == &k)
                            .map(|(_, s)| s.total)
                            .unwrap_or(0.0)
                    })
                    .collect();
                (k, times)
            })
            .collect()
    }

    /// Per-kernel imbalance across ranks.
    pub fn kernel_imbalance(&self) -> Vec<(String, f64)> {
        self.kernel_rank_matrix()
            .into_iter()
            .map(|(k, times)| {
                let spread = RankSpread::from_values(&times);
                (k, spread.imbalance())
            })
            .collect()
    }

    /// Cluster-wide kernel breakdown: `(kernel, share of total GPU time)`,
    /// sorted descending — the paper's Amber kernel ranking.
    pub fn kernel_shares(&self) -> Vec<(String, f64)> {
        let matrix = self.kernel_rank_matrix();
        let total: f64 = matrix.iter().map(|(_, t)| t.iter().sum::<f64>()).sum();
        let mut out: Vec<(String, f64)> = matrix
            .into_iter()
            .map(|(k, t)| {
                (
                    k,
                    if total > 0.0 {
                        t.iter().sum::<f64>() / total
                    } else {
                        0.0
                    },
                )
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        out
    }
}

/// One instant of the cluster-wide **live** view: the same-interval
/// snapshots of every rank, merged. This is what a monitoring dashboard
/// polls while the job runs — no finalize, no XML, just deltas.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSnapshot {
    /// Sample number (from the member snapshots).
    pub seq: u64,
    /// Latest virtual timestamp across ranks.
    pub at: f64,
    pub nranks: usize,
    /// Per-family `(total time, min rank time, max rank time)` over the
    /// interval, families in no particular order, zero-activity omitted.
    pub families: Vec<(EventFamily, RankSpread)>,
}

impl ClusterSnapshot {
    /// Merge one snapshot per rank (all taken for the same interval).
    pub fn merge(snaps: &[Snapshot]) -> Self {
        assert!(!snaps.is_empty(), "cannot merge zero snapshots");
        let mut per_family: HashMap<EventFamily, Vec<f64>> = HashMap::new();
        for s in snaps {
            for d in &s.families {
                per_family.entry(d.family).or_default().push(d.time);
            }
        }
        let mut families: Vec<(EventFamily, RankSpread)> = per_family
            .into_iter()
            .map(|(fam, times)| (fam, RankSpread::from_values(&times)))
            .collect();
        families.sort_by(|a, b| {
            b.1.total
                .partial_cmp(&a.1.total)
                .expect("finite snapshot times")
        });
        Self {
            seq: snaps.iter().map(|s| s.seq).max().expect("non-empty"),
            at: snaps.iter().map(|s| s.at).fold(f64::NEG_INFINITY, f64::max),
            nranks: snaps.len(),
            families,
        }
    }

    /// Spread for one family, if any rank was active in it.
    pub fn family(&self, family: EventFamily) -> Option<RankSpread> {
        self.families
            .iter()
            .find(|(f, _)| *f == family)
            .map(|(_, s)| *s)
    }

    /// One-line dashboard rendering of this instant.
    pub fn render_line(&self, interval: f64) -> String {
        let mut out = format!("t={:>8.2}s", self.at);
        for (fam, spread) in &self.families {
            let label = match fam {
                EventFamily::Mpi => "mpi",
                EventFamily::Cuda => "cuda",
                EventFamily::Cublas => "cublas",
                EventFamily::Cufft => "cufft",
                EventFamily::GpuExec => "gpu",
                EventFamily::HostIdle => "idle",
                EventFamily::Other => "other",
            };
            // busy fraction of the interval, averaged over ranks
            let frac = if interval > 0.0 {
                spread.total / (interval * self.nranks as f64)
            } else {
                0.0
            };
            out.push_str(&format!("  {label} {:>5.1}%", frac * 100.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::FamilyDelta;
    use crate::profile::ProfileEntry;

    fn profile(rank: usize, wall: f64, entries: Vec<(&str, Option<&str>, f64)>) -> RankProfile {
        RankProfile {
            rank,
            nranks: 2,
            host: format!("dirac{rank:02}"),
            command: "app".to_owned(),
            wallclock: wall,
            regions: vec!["<program>".to_owned()],
            entries: entries
                .into_iter()
                .map(|(name, detail, total)| {
                    let mut stats = RunningStats::new();
                    stats.record(total);
                    ProfileEntry {
                        name: name.to_owned(),
                        detail: detail.map(|d| d.to_owned()),
                        bytes: 0,
                        region: 0,
                        stats,
                    }
                })
                .collect(),
            dropped_events: 0,
            monitor: Default::default(),
        }
    }

    fn two_rank_report() -> ClusterReport {
        let p0 = profile(
            0,
            10.0,
            vec![
                ("MPI_Send", None, 1.0),
                ("@CUDA_EXEC_STRM00", Some("force"), 4.0),
                ("@CUDA_EXEC_STRM00", Some("reduce"), 1.0),
            ],
        );
        let p1 = profile(
            1,
            12.0,
            vec![
                ("MPI_Send", None, 3.0),
                ("@CUDA_EXEC_STRM00", Some("force"), 4.2),
                ("@CUDA_EXEC_STRM00", Some("reduce"), 0.45),
            ],
        );
        ClusterReport::from_profiles(vec![p1, p0], 2)
    }

    #[test]
    fn wallclock_spread() {
        let r = two_rank_report();
        assert_eq!(r.nranks, 2);
        assert_eq!(r.wallclock_total, 22.0);
        assert_eq!(r.wallclock_min, 10.0);
        assert_eq!(r.wallclock_max, 12.0);
        // profiles were sorted by rank despite reversed input
        assert_eq!(r.profiles()[0].rank, 0);
    }

    #[test]
    fn family_spread_and_fractions() {
        let r = two_rank_report();
        let mpi = r.family_spread(EventFamily::Mpi);
        assert_eq!(mpi.total, 4.0);
        assert_eq!(mpi.min, 1.0);
        assert_eq!(mpi.max, 3.0);
        assert!((r.comm_fraction() - 4.0 / 22.0).abs() < 1e-12);
        assert!((r.gpu_utilization() - 9.65 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_matrix_and_imbalance() {
        let r = two_rank_report();
        let matrix = r.kernel_rank_matrix();
        let force = matrix.iter().find(|(k, _)| k == "force").unwrap();
        assert_eq!(force.1, vec![4.0, 4.2]);
        let imb = r.kernel_imbalance();
        let reduce = imb.iter().find(|(k, _)| k == "reduce").unwrap();
        // (1.0 - 0.45) / 1.0 = 55% — the paper's Amber ReduceForces figure
        assert!((reduce.1 - 0.55).abs() < 1e-12);
        let force_imb = imb.iter().find(|(k, _)| k == "force").unwrap();
        assert!(force_imb.1 < 0.05);
    }

    #[test]
    fn kernel_shares_sum_to_one_and_rank() {
        let r = two_rank_report();
        let shares = r.kernel_shares();
        assert_eq!(shares[0].0, "force");
        let sum: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subsystem_rows_skip_empty_families() {
        let r = two_rank_report();
        let rows = r.subsystem_rows();
        assert!(rows.iter().any(|(l, _)| *l == "MPI"));
        assert!(rows.iter().any(|(l, _)| *l == "GPU exec"));
        assert!(!rows.iter().any(|(l, _)| *l == "CUFFT"));
    }

    #[test]
    fn totals_merge_across_ranks() {
        let r = two_rank_report();
        let totals = r.totals_by_name();
        let send = totals.iter().find(|(n, _)| n == "MPI_Send").unwrap();
        assert_eq!(send.1.total, 4.0);
        assert_eq!(send.1.count, 2);
        assert_eq!(r.count_of("MPI_Send"), 2);
        assert_eq!(r.time_of("MPI_Send"), 4.0);
    }

    #[test]
    fn imbalance_of_empty_spread_is_zero() {
        assert_eq!(RankSpread::default().imbalance(), 0.0);
    }

    #[test]
    fn cluster_snapshot_merges_rank_deltas() {
        let snap = |rank: usize, gpu: f64, mpi: f64| Snapshot {
            rank,
            seq: 4,
            at: 2.0 + rank as f64 * 0.01,
            interval: 1.0,
            families: vec![
                FamilyDelta {
                    family: EventFamily::GpuExec,
                    count: 3,
                    bytes: 0,
                    time: gpu,
                },
                FamilyDelta {
                    family: EventFamily::Mpi,
                    count: 2,
                    bytes: 128,
                    time: mpi,
                },
            ],
            trace: Default::default(),
        };
        let merged = ClusterSnapshot::merge(&[snap(0, 0.5, 0.1), snap(1, 0.7, 0.3)]);
        assert_eq!(merged.seq, 4);
        assert_eq!(merged.nranks, 2);
        assert!((merged.at - 2.01).abs() < 1e-12);
        let gpu = merged.family(EventFamily::GpuExec).unwrap();
        assert!((gpu.total - 1.2).abs() < 1e-12);
        assert_eq!(gpu.min, 0.5);
        assert_eq!(gpu.max, 0.7);
        // families ranked by total time: gpu before mpi
        assert_eq!(merged.families[0].0, EventFamily::GpuExec);
        assert!(merged.family(EventFamily::Cufft).is_none());
        // 1.2s busy over 2 ranks × 1s interval = 60%
        let line = merged.render_line(1.0);
        assert!(line.contains("gpu  60.0%"), "{line}");
    }
}
