//! The XML profiling log.
//!
//! Besides the banner, IPM "writes a more detailed profiling log in XML
//! format which includes the full details of the hash table" (paper §II).
//! This module owns that format: a small, self-contained dialect — writer
//! and parser — that round-trips a [`RankProfile`] exactly. The parser is
//! what `ipm_parse` (see [`crate::parse`]) consumes.
//!
//! ```xml
//! <ipm version="2.0">
//!   <task rank="0" nranks="16" host="dirac18" wallclock="45.78">
//!     <command>pmemd.cuda.MPI</command>
//!     <regions><region id="0">&lt;program&gt;</region></regions>
//!     <hash>
//!       <entry name="cudaLaunch" bytes="0" region="0"
//!              count="1927994" total="9.48" min="..." max="..."/>
//!     </hash>
//!   </task>
//! </ipm>
//! ```

use crate::profile::{ProfileEntry, RankProfile};
use ipm_sim_core::RunningStats;
use std::fmt::Write as _;

/// XML parsing failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XmlError {
    /// Expected element or attribute missing.
    Missing(&'static str),
    /// A numeric attribute failed to parse.
    BadNumber(String),
    /// Structurally malformed input.
    Malformed(String),
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::Missing(what) => write!(f, "missing {what}"),
            XmlError::BadNumber(s) => write!(f, "bad number: {s}"),
            XmlError::Malformed(s) => write!(f, "malformed XML: {s}"),
        }
    }
}

impl std::error::Error for XmlError {}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"").replace("&gt;", ">").replace("&lt;", "<").replace("&amp;", "&")
}

/// Serialize one rank's profile to the IPM XML dialect.
pub fn to_xml(p: &RankProfile) -> String {
    let mut out = String::new();
    out.push_str("<ipm version=\"2.0\">\n");
    let _ = writeln!(
        out,
        "  <task rank=\"{}\" nranks=\"{}\" host=\"{}\" wallclock=\"{}\" dropped=\"{}\">",
        p.rank,
        p.nranks,
        escape(&p.host),
        p.wallclock,
        p.dropped_events,
    );
    let _ = writeln!(out, "    <command>{}</command>", escape(&p.command));
    out.push_str("    <regions>\n");
    for (i, r) in p.regions.iter().enumerate() {
        let _ = writeln!(out, "      <region id=\"{}\">{}</region>", i, escape(r));
    }
    out.push_str("    </regions>\n    <hash>\n");
    for e in &p.entries {
        let detail = e
            .detail
            .as_ref()
            .map(|d| format!(" detail=\"{}\"", escape(d)))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "      <entry name=\"{}\"{} bytes=\"{}\" region=\"{}\" count=\"{}\" total=\"{}\" min=\"{}\" max=\"{}\"/>",
            escape(&e.name),
            detail,
            e.bytes,
            e.region,
            e.stats.count,
            e.stats.total,
            e.stats.min,
            e.stats.max,
        );
    }
    out.push_str("    </hash>\n  </task>\n</ipm>\n");
    out
}

/// Pull the value of `attr` out of a tag body like `rank="0" host="x"`.
fn attr(tag: &str, name: &str) -> Option<String> {
    let pat = format!("{name}=\"");
    let start = tag.find(&pat)? + pat.len();
    let end = tag[start..].find('"')? + start;
    Some(unescape(&tag[start..end]))
}

fn num_attr<T: std::str::FromStr>(tag: &str, name: &'static str) -> Result<T, XmlError> {
    let raw = attr(tag, name).ok_or(XmlError::Missing(name))?;
    raw.parse().map_err(|_| XmlError::BadNumber(raw))
}

/// Parse a profile back out of the XML dialect produced by [`to_xml`].
pub fn from_xml(xml: &str) -> Result<RankProfile, XmlError> {
    let task_tag = xml
        .lines()
        .find(|l| l.trim_start().starts_with("<task "))
        .ok_or(XmlError::Missing("<task>"))?;
    let rank: usize = num_attr(task_tag, "rank")?;
    let nranks: usize = num_attr(task_tag, "nranks")?;
    let wallclock: f64 = num_attr(task_tag, "wallclock")?;
    let dropped_events: u64 = num_attr(task_tag, "dropped")?;
    let host = attr(task_tag, "host").ok_or(XmlError::Missing("host"))?;

    let command = {
        let line = xml
            .lines()
            .find(|l| l.trim_start().starts_with("<command>"))
            .ok_or(XmlError::Missing("<command>"))?;
        let inner = line
            .trim()
            .strip_prefix("<command>")
            .and_then(|s| s.strip_suffix("</command>"))
            .ok_or_else(|| XmlError::Malformed(line.to_owned()))?;
        unescape(inner)
    };

    let mut regions = Vec::new();
    let mut entries = Vec::new();
    for line in xml.lines().map(str::trim) {
        if line.starts_with("<region ") {
            let inner = line
                .split_once('>')
                .and_then(|(_, rest)| rest.strip_suffix("</region>"))
                .ok_or_else(|| XmlError::Malformed(line.to_owned()))?;
            regions.push(unescape(inner));
        } else if line.starts_with("<entry ") {
            let stats = RunningStats {
                count: num_attr(line, "count")?,
                total: num_attr(line, "total")?,
                min: num_attr(line, "min")?,
                max: num_attr(line, "max")?,
            };
            entries.push(ProfileEntry {
                name: attr(line, "name").ok_or(XmlError::Missing("name"))?,
                detail: attr(line, "detail"),
                bytes: num_attr(line, "bytes")?,
                region: num_attr(line, "region")?,
                stats,
            });
        }
    }
    if regions.is_empty() {
        return Err(XmlError::Missing("<regions>"));
    }
    Ok(RankProfile {
        rank,
        nranks,
        host,
        command,
        wallclock,
        regions,
        entries,
        dropped_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RankProfile {
        let mut stats = RunningStats::new();
        stats.record(1.5);
        stats.record(0.5);
        RankProfile {
            rank: 3,
            nranks: 16,
            host: "dirac18".to_owned(),
            command: "pmemd.cuda.MPI -O -i mdin".to_owned(),
            wallclock: 45.78,
            regions: vec!["<program>".to_owned(), "pme".to_owned()],
            entries: vec![
                ProfileEntry {
                    name: "cudaMemcpy(D2H)".to_owned(),
                    detail: None,
                    bytes: 800_000,
                    region: 1,
                    stats,
                },
                ProfileEntry {
                    name: "@CUDA_EXEC_STRM00".to_owned(),
                    detail: Some("CalculatePMEOrthogonalNonbondForces".to_owned()),
                    bytes: 0,
                    region: 0,
                    stats,
                },
            ],
            dropped_events: 7,
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let p = sample();
        let xml = to_xml(&p);
        let back = from_xml(&xml).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn xml_contains_full_hash_details() {
        let xml = to_xml(&sample());
        assert!(xml.contains("name=\"cudaMemcpy(D2H)\""));
        assert!(xml.contains("bytes=\"800000\""));
        assert!(xml.contains("detail=\"CalculatePMEOrthogonalNonbondForces\""));
        assert!(xml.contains("count=\"2\""));
    }

    #[test]
    fn special_characters_are_escaped() {
        let mut p = sample();
        p.command = "./app <input> & \"stuff\"".to_owned();
        let xml = to_xml(&p);
        assert!(!xml.contains("<input>"));
        let back = from_xml(&xml).unwrap();
        assert_eq!(back.command, "./app <input> & \"stuff\"");
        assert_eq!(back.regions[0], "<program>");
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert_eq!(from_xml("").unwrap_err(), XmlError::Missing("<task>"));
        let bad = "<task rank=\"x\" nranks=\"1\" host=\"h\" wallclock=\"1\" dropped=\"0\">";
        assert!(matches!(from_xml(bad).unwrap_err(), XmlError::BadNumber(_)));
    }

    #[test]
    fn parser_survives_reordered_attributes() {
        let xml = to_xml(&sample()).replace(
            "rank=\"3\" nranks=\"16\"",
            "nranks=\"16\" rank=\"3\"",
        );
        let back = from_xml(&xml).unwrap();
        assert_eq!(back.rank, 3);
        assert_eq!(back.nranks, 16);
    }
}
