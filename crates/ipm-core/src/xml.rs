//! The XML profiling log.
//!
//! Besides the banner, IPM "writes a more detailed profiling log in XML
//! format which includes the full details of the hash table" (paper §II).
//! This module owns that format: a small, self-contained dialect — writer
//! and parser — that round-trips a [`RankProfile`] exactly. The parser is
//! what `ipm_parse` (see [`crate::parse`]) consumes.
//!
//! ```xml
//! <ipm version="2.0">
//!   <task rank="0" nranks="16" host="dirac18" wallclock="45.78">
//!     <command>pmemd.cuda.MPI</command>
//!     <regions><region id="0">&lt;program&gt;</region></regions>
//!     <hash>
//!       <entry name="cudaLaunch" bytes="0" region="0"
//!              count="1927994" total="9.48" min="..." max="..."/>
//!     </hash>
//!   </task>
//! </ipm>
//! ```

use crate::compact::TraceAgg;
use crate::profile::{MonitorInfo, ProfileEntry, RankProfile};
use crate::trace::{TraceKind, TraceRecord};
use ipm_sim_core::RunningStats;
use std::fmt::Write as _;
use std::sync::Arc;

/// XML parsing failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XmlError {
    /// Expected element or attribute missing.
    Missing(&'static str),
    /// A numeric attribute failed to parse.
    BadNumber(String),
    /// Structurally malformed input.
    Malformed(String),
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::Missing(what) => write!(f, "missing {what}"),
            XmlError::BadNumber(s) => write!(f, "bad number: {s}"),
            XmlError::Malformed(s) => write!(f, "malformed XML: {s}"),
        }
    }
}

impl std::error::Error for XmlError {}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"")
        .replace("&gt;", ">")
        .replace("&lt;", "<")
        .replace("&amp;", "&")
}

/// Serialize one rank's profile to the IPM XML dialect (no trace section;
/// use `Export::…​.to(Xml)` to embed one).
pub fn to_xml(p: &RankProfile) -> String {
    to_xml_with_trace_at(p, &[], 0.0)
}

/// Serialize a profile plus its event trace: the trace's records are
/// embedded as `<event/>` lines in a `<trace>` section (with the rank's
/// clock-alignment epoch on the `<trace>` element, so multi-rank exports
/// line up their lanes), and a single XML log carries everything
/// `ipm_parse trace` needs. This is the one real XML writer; the `Xml`
/// backend of [`crate::export`] renders through it.
pub(crate) fn to_xml_with_trace_at(p: &RankProfile, trace: &[TraceRecord], epoch: f64) -> String {
    let mut out = String::new();
    out.push_str("<ipm version=\"2.0\">\n");
    let _ = writeln!(
        out,
        "  <task rank=\"{}\" nranks=\"{}\" host=\"{}\" wallclock=\"{}\" dropped=\"{}\">",
        p.rank,
        p.nranks,
        escape(&p.host),
        p.wallclock,
        p.dropped_events,
    );
    let _ = writeln!(out, "    <command>{}</command>", escape(&p.command));
    let m = &p.monitor;
    let _ = writeln!(
        out,
        "    <monitor self_wall_ns=\"{}\" emitted=\"{}\" captured=\"{}\" dropped=\"{}\" compacted=\"{}\" ring_hwm_bytes=\"{}\"/>",
        m.self_wall_ns, m.trace_emitted, m.trace_captured, m.trace_dropped, m.trace_compacted, m.ring_hwm_bytes,
    );
    out.push_str("    <regions>\n");
    for (i, r) in p.regions.iter().enumerate() {
        let _ = writeln!(out, "      <region id=\"{}\">{}</region>", i, escape(r));
    }
    out.push_str("    </regions>\n");
    if !trace.is_empty() {
        if epoch != 0.0 {
            let _ = writeln!(out, "    <trace epoch=\"{epoch}\">");
        } else {
            out.push_str("    <trace>\n");
        }
        for t in trace {
            let detail = t
                .detail
                .as_ref()
                .map(|d| format!(" detail=\"{}\"", escape(d)))
                .unwrap_or_default();
            let stream = t
                .stream
                .map(|s| format!(" stream=\"{s}\""))
                .unwrap_or_default();
            let agg = t
                .agg
                .map(|a| {
                    format!(
                        " count=\"{}\" total=\"{}\" min=\"{}\" max=\"{}\" ex_begin=\"{}\" ex_end=\"{}\"",
                        a.count, a.total, a.min, a.max, a.exemplar.0, a.exemplar.1
                    )
                })
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "      <event kind=\"{}\" name=\"{}\"{} begin=\"{}\" end=\"{}\" bytes=\"{}\" region=\"{}\"{} corr=\"{}\"{}/>",
                t.kind.tag(),
                escape(&t.name),
                detail,
                t.begin,
                t.end,
                t.bytes,
                t.region,
                stream,
                t.corr,
                agg,
            );
        }
        out.push_str("    </trace>\n");
    }
    out.push_str("    <hash>\n");
    for e in &p.entries {
        let detail = e
            .detail
            .as_ref()
            .map(|d| format!(" detail=\"{}\"", escape(d)))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "      <entry name=\"{}\"{} bytes=\"{}\" region=\"{}\" count=\"{}\" total=\"{}\" min=\"{}\" max=\"{}\"/>",
            escape(&e.name),
            detail,
            e.bytes,
            e.region,
            e.stats.count,
            e.stats.total,
            e.stats.min,
            e.stats.max,
        );
    }
    out.push_str("    </hash>\n  </task>\n</ipm>\n");
    out
}

/// Pull the value of `attr` out of a tag body like `rank="0" host="x"`.
fn attr(tag: &str, name: &str) -> Option<String> {
    let pat = format!("{name}=\"");
    let start = tag.find(&pat)? + pat.len();
    let end = tag[start..].find('"')? + start;
    Some(unescape(&tag[start..end]))
}

fn num_attr<T: std::str::FromStr>(tag: &str, name: &'static str) -> Result<T, XmlError> {
    let raw = attr(tag, name).ok_or(XmlError::Missing(name))?;
    raw.parse().map_err(|_| XmlError::BadNumber(raw))
}

/// Numeric attribute that may legitimately be absent (fields added after
/// logs in the wild were written): absent parses as `default`, present but
/// unparseable is still an error.
fn opt_num_attr<T: std::str::FromStr>(
    tag: &str,
    name: &'static str,
    default: T,
) -> Result<T, XmlError> {
    match attr(tag, name) {
        Some(raw) => raw.parse().map_err(|_| XmlError::BadNumber(raw)),
        None => Ok(default),
    }
}

/// Parse a profile back out of the XML dialect produced by [`to_xml`].
pub fn from_xml(xml: &str) -> Result<RankProfile, XmlError> {
    let task_tag = xml
        .lines()
        .find(|l| l.trim_start().starts_with("<task "))
        .ok_or(XmlError::Missing("<task>"))?;
    let rank: usize = num_attr(task_tag, "rank")?;
    let nranks: usize = num_attr(task_tag, "nranks")?;
    let wallclock: f64 = num_attr(task_tag, "wallclock")?;
    let dropped_events: u64 = num_attr(task_tag, "dropped")?;
    let host = attr(task_tag, "host").ok_or(XmlError::Missing("host"))?;

    let command = {
        let line = xml
            .lines()
            .find(|l| l.trim_start().starts_with("<command>"))
            .ok_or(XmlError::Missing("<command>"))?;
        let inner = line
            .trim()
            .strip_prefix("<command>")
            .and_then(|s| s.strip_suffix("</command>"))
            .ok_or_else(|| XmlError::Malformed(line.to_owned()))?;
        unescape(inner)
    };

    // default-if-missing keeps logs from older monitors parseable
    let monitor = match xml
        .lines()
        .map(str::trim)
        .find(|l| l.starts_with("<monitor "))
    {
        Some(line) => MonitorInfo {
            self_wall_ns: num_attr(line, "self_wall_ns")?,
            trace_emitted: num_attr(line, "emitted")?,
            trace_captured: num_attr(line, "captured")?,
            trace_dropped: num_attr(line, "dropped")?,
            // absent in pre-compaction logs
            trace_compacted: opt_num_attr(line, "compacted", 0)?,
            ring_hwm_bytes: num_attr(line, "ring_hwm_bytes")?,
        },
        None => MonitorInfo::default(),
    };

    let mut regions = Vec::new();
    let mut entries = Vec::new();
    for line in xml.lines().map(str::trim) {
        if line.starts_with("<region ") {
            let inner = line
                .split_once('>')
                .and_then(|(_, rest)| rest.strip_suffix("</region>"))
                .ok_or_else(|| XmlError::Malformed(line.to_owned()))?;
            regions.push(unescape(inner));
        } else if line.starts_with("<entry ") {
            let stats = RunningStats {
                count: num_attr(line, "count")?,
                total: num_attr(line, "total")?,
                min: num_attr(line, "min")?,
                max: num_attr(line, "max")?,
            };
            entries.push(ProfileEntry {
                name: attr(line, "name").ok_or(XmlError::Missing("name"))?,
                detail: attr(line, "detail"),
                bytes: num_attr(line, "bytes")?,
                region: num_attr(line, "region")?,
                stats,
            });
        }
    }
    if regions.is_empty() {
        return Err(XmlError::Missing("<regions>"));
    }
    Ok(RankProfile {
        rank,
        nranks,
        host,
        command,
        wallclock,
        regions,
        entries,
        dropped_events,
        monitor,
    })
}

/// Parse the `<trace>` section back out of a log written by
/// [`to_xml_with_trace_at`]. Logs without a trace yield an empty vector.
pub fn trace_from_xml(xml: &str) -> Result<Vec<TraceRecord>, XmlError> {
    let mut out = Vec::new();
    for line in xml.lines().map(str::trim) {
        if !line.starts_with("<event ") {
            continue;
        }
        let kind_raw = attr(line, "kind").ok_or(XmlError::Missing("kind"))?;
        let kind = kind_raw
            .chars()
            .next()
            .and_then(TraceKind::from_tag)
            .ok_or_else(|| XmlError::Malformed(format!("unknown event kind '{kind_raw}'")))?;
        out.push(TraceRecord {
            kind,
            name: Arc::from(attr(line, "name").ok_or(XmlError::Missing("name"))?),
            detail: attr(line, "detail").map(Arc::from),
            begin: num_attr(line, "begin")?,
            end: num_attr(line, "end")?,
            bytes: num_attr(line, "bytes")?,
            region: num_attr(line, "region")?,
            stream: match attr(line, "stream") {
                Some(raw) => Some(raw.parse().map_err(|_| XmlError::BadNumber(raw))?),
                None => None,
            },
            corr: num_attr(line, "corr")?,
            // summary records carry the aggregate attributes, keyed on
            // `count`; raw records (and pre-compaction logs) omit them
            agg: match attr(line, "count") {
                Some(_) => Some(TraceAgg {
                    count: num_attr(line, "count")?,
                    total: num_attr(line, "total")?,
                    min: num_attr(line, "min")?,
                    max: num_attr(line, "max")?,
                    exemplar: (num_attr(line, "ex_begin")?, num_attr(line, "ex_end")?),
                }),
                None => None,
            },
        });
    }
    Ok(out)
}

/// The clock-alignment epoch recorded on a log's `<trace>` element, or 0
/// for logs without one (traceless, pre-epoch, or single-rank exports).
pub fn trace_epoch_from_xml(xml: &str) -> Result<f64, XmlError> {
    match xml
        .lines()
        .map(str::trim)
        .find(|l| *l == "<trace>" || l.starts_with("<trace "))
    {
        Some(line) => opt_num_attr(line, "epoch", 0.0),
        None => Ok(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RankProfile {
        let mut stats = RunningStats::new();
        stats.record(1.5);
        stats.record(0.5);
        RankProfile {
            rank: 3,
            nranks: 16,
            host: "dirac18".to_owned(),
            command: "pmemd.cuda.MPI -O -i mdin".to_owned(),
            wallclock: 45.78,
            regions: vec!["<program>".to_owned(), "pme".to_owned()],
            entries: vec![
                ProfileEntry {
                    name: "cudaMemcpy(D2H)".to_owned(),
                    detail: None,
                    bytes: 800_000,
                    region: 1,
                    stats,
                },
                ProfileEntry {
                    name: "@CUDA_EXEC_STRM00".to_owned(),
                    detail: Some("CalculatePMEOrthogonalNonbondForces".to_owned()),
                    bytes: 0,
                    region: 0,
                    stats,
                },
            ],
            dropped_events: 7,
            monitor: MonitorInfo {
                self_wall_ns: 12_345,
                trace_emitted: 100,
                trace_captured: 90,
                trace_dropped: 2,
                trace_compacted: 8,
                ring_hwm_bytes: 4096,
            },
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let p = sample();
        let xml = to_xml(&p);
        let back = from_xml(&xml).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn xml_contains_full_hash_details() {
        let xml = to_xml(&sample());
        assert!(xml.contains("name=\"cudaMemcpy(D2H)\""));
        assert!(xml.contains("bytes=\"800000\""));
        assert!(xml.contains("detail=\"CalculatePMEOrthogonalNonbondForces\""));
        assert!(xml.contains("count=\"2\""));
    }

    #[test]
    fn special_characters_are_escaped() {
        let mut p = sample();
        p.command = "./app <input> & \"stuff\"".to_owned();
        let xml = to_xml(&p);
        assert!(!xml.contains("<input>"));
        let back = from_xml(&xml).unwrap();
        assert_eq!(back.command, "./app <input> & \"stuff\"");
        assert_eq!(back.regions[0], "<program>");
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert_eq!(from_xml("").unwrap_err(), XmlError::Missing("<task>"));
        let bad = "<task rank=\"x\" nranks=\"1\" host=\"h\" wallclock=\"1\" dropped=\"0\">";
        assert!(matches!(from_xml(bad).unwrap_err(), XmlError::BadNumber(_)));
    }

    #[test]
    fn monitor_self_accounting_roundtrips() {
        let p = sample();
        let xml = to_xml(&p);
        assert!(xml.contains("<monitor self_wall_ns=\"12345\""));
        assert!(xml.contains("captured=\"90\" dropped=\"2\" compacted=\"8\""));
        let back = from_xml(&xml).unwrap();
        assert_eq!(back.monitor, p.monitor);
    }

    #[test]
    fn pre_compaction_monitor_element_defaults_compacted() {
        let xml = to_xml(&sample()).replace(" compacted=\"8\"", "");
        let back = from_xml(&xml).unwrap();
        assert_eq!(back.monitor.trace_compacted, 0);
        assert_eq!(back.monitor.trace_captured, 90, "other fields untouched");
    }

    #[test]
    fn logs_without_monitor_element_default_it() {
        let xml: String = to_xml(&sample())
            .lines()
            .filter(|l| !l.contains("<monitor"))
            .map(|l| format!("{l}\n"))
            .collect();
        let back = from_xml(&xml).unwrap();
        assert_eq!(back.monitor, MonitorInfo::default());
    }

    #[test]
    fn trace_section_roundtrips() {
        let trace = vec![
            TraceRecord {
                kind: TraceKind::Call,
                name: Arc::from("cudaLaunch"),
                detail: None,
                begin: 1.0,
                end: 1.25,
                bytes: 0,
                region: 1,
                stream: None,
                corr: 9,
                agg: None,
            },
            TraceRecord {
                kind: TraceKind::KernelExec,
                name: Arc::from("@CUDA_EXEC_STRM02"),
                detail: Some("square<T>".to_owned().into()),
                begin: 1.25,
                end: 2.5,
                bytes: 0,
                region: 0,
                stream: Some(2),
                corr: 9,
                agg: None,
            },
        ];
        let xml = to_xml_with_trace_at(&sample(), &trace, 0.0);
        let back = trace_from_xml(&xml).unwrap();
        assert_eq!(back, trace);
        // and the profile parse still works with the trace embedded
        assert_eq!(from_xml(&xml).unwrap(), sample());
        // a traceless log parses to an empty trace
        assert_eq!(trace_from_xml(&to_xml(&sample())).unwrap(), Vec::new());
    }

    #[test]
    fn summary_records_and_epoch_roundtrip() {
        let trace = vec![TraceRecord {
            kind: TraceKind::Call,
            name: Arc::from("cudaLaunch"),
            detail: None,
            begin: 1.0,
            end: 4.75,
            bytes: 0,
            region: 0,
            stream: None,
            corr: 0,
            agg: Some(TraceAgg {
                count: 123,
                total: 2.5,
                min: 0.001953125,
                max: 0.125,
                exemplar: (2.0, 2.125),
            }),
        }];
        let xml = to_xml_with_trace_at(&sample(), &trace, 0.5);
        assert!(xml.contains("<trace epoch=\"0.5\">"));
        assert!(xml.contains("count=\"123\""));
        assert_eq!(trace_from_xml(&xml).unwrap(), trace);
        assert_eq!(trace_epoch_from_xml(&xml).unwrap(), 0.5);
        // epoch 0 writes the bare element, which parses back to 0
        let xml0 = to_xml_with_trace_at(&sample(), &trace, 0.0);
        assert!(xml0.contains("<trace>"));
        assert_eq!(trace_epoch_from_xml(&xml0).unwrap(), 0.0);
        // traceless logs have epoch 0 too
        assert_eq!(trace_epoch_from_xml(&to_xml(&sample())).unwrap(), 0.0);
    }

    #[test]
    fn parser_survives_reordered_attributes() {
        let xml = to_xml(&sample()).replace("rank=\"3\" nranks=\"16\"", "nranks=\"16\" rank=\"3\"");
        let back = from_xml(&xml).unwrap();
        assert_eq!(back.rank, 3);
        assert_eq!(back.nranks, 16);
    }
}
