//! The monitored CUDA **driver API** — IPM's interposition layer for `cu*`
//! calls.
//!
//! The paper wraps both of CUDA's overlapping APIs (§III-A): applications
//! use the runtime API ([`crate::cuda_mon::IpmCuda`]), while libraries and
//! middleware (CUBLAS, CUFFT, the HPL port of Fig. 9) sit on the driver
//! API. [`IpmDriver`] gives the driver surface the same three measurement
//! mechanisms:
//!
//! 1. **Host-side timing**: every entry point runs inside the Fig. 2
//!    wrapper anatomy, reporting into the shared hash table.
//! 2. **GPU kernel timing** (§III-B): `cuLaunchGrid` is bracketed with
//!    events in the same kernel timing table the runtime facade uses, so
//!    middleware launches also produce `@CUDA_EXEC_STRMxx` entries.
//! 3. **Host-idle identification** (§III-C): the synchronous copies
//!    (`cuMemcpyHtoD`/`DtoH`/`DtoD`) are in the implicit-blocking set and
//!    probe for accumulated device work first; `cuMemsetD8` is the paper's
//!    noted exception and gets no probe.

use crate::facade::FacadeCore;
use crate::monitor::Ipm;
use ipm_gpu_sim::{
    CudaApi, CudaResult, DevicePtr, DriverContext, EventId, Kernel, KernelArg, LaunchConfig,
    ModuleHandle, StreamId,
};
use ipm_interpose::{site, CallHandle};
use std::sync::Arc;

/// The monitored CUDA driver facade.
pub struct IpmDriver {
    core: FacadeCore,
    inner: Arc<DriverContext>,
}

impl IpmDriver {
    /// Install monitoring around `inner`.
    pub fn new(ipm: Arc<Ipm>, inner: Arc<DriverContext>) -> Self {
        // Probing synchronizes through the bare runtime underneath the
        // driver context; pre-`cuInit` there are no pending kernels, so this
        // is equivalent to `cu_ctx_synchronize` for idle accounting while
        // staying invisible to the profile.
        let device: Arc<dyn CudaApi> = inner.runtime().clone();
        Self {
            core: FacadeCore::new(ipm, Some(device)),
            inner,
        }
    }

    fn wrapped_no_sweep<R>(&self, call: CallHandle, bytes: u64, real: impl FnOnce() -> R) -> R {
        self.core.wrapped_no_sweep(call, bytes, real)
    }

    fn wrapped<R>(&self, call: CallHandle, bytes: u64, real: impl FnOnce() -> R) -> R {
        self.core.wrapped(call, bytes, real)
    }

    /// Sweep the shared KTT for completed kernels — middleware-launched
    /// kernels are booked exactly like runtime-API ones.
    fn sweep_ktt(&self) {
        self.core.sweep_ktt()
    }

    /// Drain any in-flight kernel timings (call before producing the
    /// profile). Safe to call multiple times.
    pub fn finalize(&self) {
        self.core.finalize()
    }

    /// The monitoring context this facade reports into.
    pub fn ipm(&self) -> &Arc<Ipm> {
        self.core.ipm()
    }

    /// The wrapped (real) driver context.
    pub fn inner(&self) -> &Arc<DriverContext> {
        &self.inner
    }

    /// `cuInit`.
    pub fn cu_init(&self, flags: u32) -> CudaResult<()> {
        self.wrapped(site!("cuInit"), 0, || self.inner.cu_init(flags))
    }

    /// `cuDeviceGetCount`.
    pub fn cu_device_get_count(&self) -> CudaResult<i32> {
        self.wrapped(site!("cuDeviceGetCount"), 0, || {
            self.inner.cu_device_get_count()
        })
    }

    /// `cuDeviceGet`.
    pub fn cu_device_get(&self, ordinal: i32) -> CudaResult<i32> {
        self.wrapped(site!("cuDeviceGet"), 0, || {
            self.inner.cu_device_get(ordinal)
        })
    }

    /// `cuDeviceGetName`.
    pub fn cu_device_get_name(&self, device: i32) -> CudaResult<String> {
        self.wrapped(site!("cuDeviceGetName"), 0, || {
            self.inner.cu_device_get_name(device)
        })
    }

    /// `cuDeviceTotalMem`.
    pub fn cu_device_total_mem(&self, device: i32) -> CudaResult<u64> {
        self.wrapped(site!("cuDeviceTotalMem"), 0, || {
            self.inner.cu_device_total_mem(device)
        })
    }

    /// `cuMemAlloc` — the requested size is the bytes attribute.
    pub fn cu_mem_alloc(&self, size: usize) -> CudaResult<DevicePtr> {
        self.wrapped(site!("cuMemAlloc"), size as u64, || {
            self.inner.cu_mem_alloc(size)
        })
    }

    /// `cuMemFree`.
    pub fn cu_mem_free(&self, ptr: DevicePtr) -> CudaResult<()> {
        self.wrapped(site!("cuMemFree"), 0, || self.inner.cu_mem_free(ptr))
    }

    /// `cuMemcpyHtoD` — implicit-blocking set: probe for host idle first.
    pub fn cu_memcpy_htod(&self, dst: DevicePtr, src: &[u8]) -> CudaResult<()> {
        self.wrapped(site!("cuMemcpyHtoD"), src.len() as u64, || {
            self.inner.cu_memcpy_htod(dst, src)
        })
    }

    /// `cuMemcpyDtoH` — implicit-blocking set, and the paper's lazy sweep
    /// point for completed kernels.
    pub fn cu_memcpy_dtoh(&self, dst: &mut [u8], src: DevicePtr) -> CudaResult<()> {
        let ret = self.wrapped(site!("cuMemcpyDtoH"), dst.len() as u64, || {
            self.inner.cu_memcpy_dtoh(dst, src)
        });
        self.sweep_ktt();
        ret
    }

    /// `cuMemcpyDtoD` — implicit-blocking set.
    pub fn cu_memcpy_dtod(&self, dst: DevicePtr, src: DevicePtr, len: usize) -> CudaResult<()> {
        self.wrapped(site!("cuMemcpyDtoD"), len as u64, || {
            self.inner.cu_memcpy_dtod(dst, src, len)
        })
    }

    /// `cuMemsetD8` — NOT in the implicit-blocking set (§III-C): no
    /// host-idle probe.
    pub fn cu_memset_d8(&self, dst: DevicePtr, value: u8, len: usize) -> CudaResult<()> {
        self.wrapped(site!("cuMemsetD8"), len as u64, || {
            self.inner.cu_memset_d8(dst, value, len)
        })
    }

    /// `cuLaunchKernel` — post-3.1 single-call launch. Not a row of the
    /// CUDA 3.1 call spec (the checker's baseline carries the waiver), but
    /// wrapped anyway so newer-style launches are not invisible.
    pub fn cu_launch_kernel(
        &self,
        kernel: &Kernel,
        config: LaunchConfig,
        args: &[KernelArg],
    ) -> CudaResult<()> {
        self.wrapped(site!("cuLaunchKernel"), 0, || {
            self.inner.cu_launch_kernel(kernel, config, args)
        })
    }

    /// `cuStreamCreate`.
    pub fn cu_stream_create(&self) -> CudaResult<StreamId> {
        self.wrapped(site!("cuStreamCreate"), 0, || self.inner.cu_stream_create())
    }

    /// `cuStreamSynchronize` — explicit sync: sweep afterwards.
    pub fn cu_stream_synchronize(&self, stream: StreamId) -> CudaResult<()> {
        let ret = self.wrapped(site!("cuStreamSynchronize"), 0, || {
            self.inner.cu_stream_synchronize(stream)
        });
        self.sweep_ktt();
        ret
    }

    /// `cuStreamDestroy`.
    pub fn cu_stream_destroy(&self, stream: StreamId) -> CudaResult<()> {
        self.wrapped(site!("cuStreamDestroy"), 0, || {
            self.inner.cu_stream_destroy(stream)
        })
    }

    /// `cuEventCreate`.
    pub fn cu_event_create(&self) -> CudaResult<EventId> {
        self.wrapped(site!("cuEventCreate"), 0, || self.inner.cu_event_create())
    }

    /// `cuEventRecord`.
    pub fn cu_event_record(&self, event: EventId, stream: StreamId) -> CudaResult<()> {
        self.wrapped(site!("cuEventRecord"), 0, || {
            self.inner.cu_event_record(event, stream)
        })
    }

    /// `cuEventQuery`.
    pub fn cu_event_query(&self, event: EventId) -> CudaResult<()> {
        self.wrapped(site!("cuEventQuery"), 0, || {
            self.inner.cu_event_query(event)
        })
    }

    /// `cuEventSynchronize` — explicit sync: sweep afterwards.
    pub fn cu_event_synchronize(&self, event: EventId) -> CudaResult<()> {
        let ret = self.wrapped(site!("cuEventSynchronize"), 0, || {
            self.inner.cu_event_synchronize(event)
        });
        self.sweep_ktt();
        ret
    }

    /// `cuEventElapsedTime`.
    pub fn cu_event_elapsed_time(&self, start: EventId, stop: EventId) -> CudaResult<f64> {
        self.wrapped(site!("cuEventElapsedTime"), 0, || {
            self.inner.cu_event_elapsed_time(start, stop)
        })
    }

    /// `cuEventDestroy`.
    pub fn cu_event_destroy(&self, event: EventId) -> CudaResult<()> {
        self.wrapped(site!("cuEventDestroy"), 0, || {
            self.inner.cu_event_destroy(event)
        })
    }

    /// `cuCtxSynchronize` — explicit sync: sweep afterwards.
    pub fn cu_ctx_synchronize(&self) -> CudaResult<()> {
        let ret = self.wrapped(site!("cuCtxSynchronize"), 0, || {
            self.inner.cu_ctx_synchronize()
        });
        self.sweep_ktt();
        ret
    }

    /// `cuModuleLoad`.
    pub fn cu_module_load(&self, name: &str) -> CudaResult<ModuleHandle> {
        self.wrapped(site!("cuModuleLoad"), 0, || self.inner.cu_module_load(name))
    }

    /// Register a kernel in a module (test scaffolding, not an entry
    /// point): unwrapped passthrough.
    pub fn register_function(&self, module: ModuleHandle, kernel: Kernel) -> CudaResult<()> {
        self.inner.register_function(module, kernel)
    }

    /// `cuModuleGetFunction`.
    pub fn cu_module_get_function(&self, module: ModuleHandle, name: &str) -> CudaResult<Kernel> {
        self.wrapped(site!("cuModuleGetFunction"), 0, || {
            self.inner.cu_module_get_function(module, name)
        })
    }

    /// `cuFuncSetBlockShape`.
    pub fn cu_func_set_block_shape(&self, x: u32, y: u32, z: u32) -> CudaResult<()> {
        self.wrapped(site!("cuFuncSetBlockShape"), 0, || {
            self.inner.cu_func_set_block_shape(x, y, z)
        })
    }

    /// `cuParamSetv` — the staged argument's size is the bytes attribute
    /// (mirrors `cudaSetupArgument`).
    pub fn cu_param_set(&self, arg: KernelArg) -> CudaResult<()> {
        self.wrapped(site!("cuParamSetv"), arg.size() as u64, || {
            self.inner.cu_param_set(arg)
        })
    }

    /// `cuLaunchGrid` — the old-style launch, bracketed with KTT events so
    /// middleware kernels get `@CUDA_EXEC_STRMxx` attribution (always on
    /// the default stream: that is all `cuLaunchGrid` can target).
    pub fn cu_launch_grid(&self, kernel: &Kernel, grid_x: u32, grid_y: u32) -> CudaResult<()> {
        if self.ipm().config().gpu_timing {
            let name: Arc<str> = Arc::from(kernel.name());
            // the KTT lock is held across the bracketed launch, so the
            // wrapper inside must not sweep (EveryCall would self-deadlock);
            // sweep after the lock is released instead
            // speccheck: allow(lock-across-call) — KTT bracketing requires it
            let ret = {
                let mut ktt = self.ipm().ktt().lock();
                ktt.time_launch(
                    self.inner.runtime().as_ref(),
                    name,
                    StreamId::DEFAULT,
                    || {
                        self.wrapped_no_sweep(site!("cuLaunchGrid"), 0, || {
                            self.inner.cu_launch_grid(kernel, grid_x, grid_y)
                        })
                    },
                )
            };
            self.core.sweep_if_every_call();
            ret
        } else {
            // speccheck: allow(wrap-once) — one site per mutually-exclusive branch
            self.wrapped(site!("cuLaunchGrid"), 0, || {
                self.inner.cu_launch_grid(kernel, grid_x, grid_y)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ktt::KttCheckPolicy;
    use crate::monitor::IpmConfig;
    use ipm_gpu_sim::{GpuConfig, GpuRuntime, KernelCost};

    fn monitored(cfg: IpmConfig) -> (Arc<Ipm>, IpmDriver) {
        let rt = Arc::new(GpuRuntime::single(
            GpuConfig::dirac_node().with_context_init(0.0),
        ));
        let ipm = Ipm::new(rt.clock().clone(), cfg);
        let drv = IpmDriver::new(ipm.clone(), Arc::new(DriverContext::new(rt)));
        (ipm, drv)
    }

    /// The HPL-style middleware path: module load → get function →
    /// block shape → params → launch grid → ctx sync.
    fn middleware_run(cfg: IpmConfig) -> (Arc<Ipm>, IpmDriver) {
        let (ipm, drv) = monitored(cfg);
        drv.cu_init(0).unwrap();
        let m = drv.cu_module_load("hpl_kernels.cubin").unwrap();
        drv.register_function(
            m,
            Kernel::timed("dgemm_nn_e_kernel", KernelCost::Fixed(0.05)),
        )
        .unwrap();
        let f = drv.cu_module_get_function(m, "dgemm_nn_e_kernel").unwrap();
        let p = drv.cu_mem_alloc(4096).unwrap();
        drv.cu_memcpy_htod(p, &[7u8; 4096]).unwrap();
        drv.cu_func_set_block_shape(16, 16, 1).unwrap();
        drv.cu_param_set(KernelArg::I32(128)).unwrap();
        drv.cu_launch_grid(&f, 8, 8).unwrap();
        let mut out = [0u8; 4096];
        drv.cu_memcpy_dtoh(&mut out, p).unwrap();
        drv.cu_mem_free(p).unwrap();
        drv.finalize();
        (ipm, drv)
    }

    #[test]
    fn driver_calls_are_timed_into_the_shared_table() {
        let (ipm, _drv) = middleware_run(IpmConfig::host_timing_only());
        let p = ipm.profile();
        for name in [
            "cuInit",
            "cuModuleLoad",
            "cuModuleGetFunction",
            "cuMemAlloc",
            "cuMemcpyHtoD",
            "cuFuncSetBlockShape",
            "cuParamSetv",
            "cuLaunchGrid",
            "cuMemcpyDtoH",
            "cuMemFree",
        ] {
            assert_eq!(p.count_of(name), 1, "{name} missing from profile");
        }
        // D2H blocked on the 50 ms kernel (host idle off in this config)
        assert!(p.time_of("cuMemcpyDtoH") > 0.04);
        // the launch itself is asynchronous: tiny
        assert!(p.time_of("cuLaunchGrid") < 1e-3);
    }

    #[test]
    fn byte_attributes_follow_the_spec() {
        let (ipm, _drv) = middleware_run(IpmConfig::host_timing_only());
        let p = ipm.profile();
        let bytes = |name: &str| p.entries.iter().find(|e| e.name == name).unwrap().bytes;
        assert_eq!(bytes("cuMemAlloc"), 4096);
        assert_eq!(bytes("cuMemcpyHtoD"), 4096);
        assert_eq!(bytes("cuMemcpyDtoH"), 4096);
        assert_eq!(bytes("cuParamSetv"), 4, "I32 argument is 4 bytes");
        assert_eq!(bytes("cuLaunchGrid"), 0);
    }

    #[test]
    fn middleware_kernels_get_exec_stream_entries() {
        let (ipm, _drv) = middleware_run(IpmConfig::with_gpu_timing_only());
        let p = ipm.profile();
        let exec = p.time_of("@CUDA_EXEC_STRM00");
        assert!((exec - 0.05).abs() < 1e-3, "exec = {exec}");
        assert_eq!(p.kernel_breakdown()[0].0, "dgemm_nn_e_kernel");
    }

    #[test]
    fn host_idle_reattributes_the_wait_for_driver_copies() {
        let (ipm, _drv) = middleware_run(IpmConfig::default());
        let p = ipm.profile();
        let idle = p.host_idle_time();
        assert!((idle - 0.05).abs() < 0.01, "idle = {idle}");
        // the wait moved out of the D2H copy into @CUDA_HOST_IDLE
        assert!(p.time_of("cuMemcpyDtoH") < 0.01);
    }

    #[test]
    fn memset_gets_no_host_idle_probe() {
        let (_ipm, drv) = monitored(IpmConfig::default());
        drv.cu_init(0).unwrap();
        let p = drv.cu_mem_alloc(1024).unwrap();
        let m = drv.cu_module_load("m").unwrap();
        drv.register_function(m, Kernel::timed("busy", KernelCost::Fixed(0.5)))
            .unwrap();
        let k = drv.cu_module_get_function(m, "busy").unwrap();
        drv.cu_func_set_block_shape(1, 1, 1).unwrap();
        drv.cu_launch_grid(&k, 1, 1).unwrap();
        drv.cu_memset_d8(p, 0, 1024).unwrap();
        let prof = drv.ipm().profile();
        assert_eq!(prof.host_idle_time(), 0.0);
        assert!(prof.time_of("cuMemsetD8") < 1e-3);
    }

    #[test]
    fn launch_grid_trace_records_carry_correlation_ids() {
        use crate::trace::TraceKind;
        let (ipm, _drv) = middleware_run(IpmConfig::default());
        let records = ipm.drain_trace();
        let launch = records
            .iter()
            .find(|r| r.kind == TraceKind::Call && &*r.name == "cuLaunchGrid")
            .expect("launch record");
        assert_ne!(launch.corr, 0);
        let exec = records
            .iter()
            .find(|r| r.kind == TraceKind::KernelExec)
            .expect("exec record");
        assert_eq!(exec.corr, launch.corr, "launch → exec flow must resolve");
    }

    #[test]
    fn every_call_policy_does_not_deadlock_on_launch_grid() {
        let (ipm, drv) = monitored(IpmConfig {
            ktt_policy: KttCheckPolicy::EveryCall,
            ..IpmConfig::default()
        });
        drv.cu_init(0).unwrap();
        let m = drv.cu_module_load("m").unwrap();
        drv.register_function(m, Kernel::timed("k", KernelCost::Fixed(1e-4)))
            .unwrap();
        let k = drv.cu_module_get_function(m, "k").unwrap();
        for _ in 0..8 {
            drv.cu_func_set_block_shape(1, 1, 1).unwrap();
            drv.cu_launch_grid(&k, 1, 1).unwrap();
        }
        drv.cu_ctx_synchronize().unwrap();
        drv.finalize();
        assert_eq!(ipm.profile().count_of("cuLaunchGrid"), 8);
        assert!(ipm.profile().time_of("@CUDA_EXEC_STRM00") > 0.0);
    }

    #[test]
    fn uninitialized_errors_pass_through_and_are_still_timed() {
        let (ipm, drv) = monitored(IpmConfig::default());
        assert!(drv.cu_device_get_count().is_err());
        assert_eq!(ipm.profile().count_of("cuDeviceGetCount"), 1);
        drv.cu_init(0).unwrap();
        assert_eq!(drv.cu_device_get_count().unwrap(), 1);
        assert_eq!(drv.cu_device_get(0).unwrap(), 0);
        assert_eq!(drv.cu_device_get_name(0).unwrap(), "Tesla C2050");
        assert!(drv.cu_device_total_mem(0).unwrap() > 0);
    }

    #[test]
    fn driver_events_and_streams_are_wrapped() {
        let (ipm, drv) = monitored(IpmConfig::default());
        drv.cu_init(0).unwrap();
        let s = drv.cu_stream_create().unwrap();
        let e0 = drv.cu_event_create().unwrap();
        let e1 = drv.cu_event_create().unwrap();
        drv.cu_event_record(e0, s).unwrap();
        drv.cu_event_record(e1, s).unwrap();
        drv.cu_stream_synchronize(s).unwrap();
        drv.cu_event_query(e1).unwrap();
        drv.cu_event_synchronize(e1).unwrap();
        let dt = drv.cu_event_elapsed_time(e0, e1).unwrap();
        assert!(dt >= 0.0);
        drv.cu_event_destroy(e0).unwrap();
        drv.cu_event_destroy(e1).unwrap();
        drv.cu_stream_destroy(s).unwrap();
        let p = ipm.profile();
        for name in [
            "cuStreamCreate",
            "cuEventCreate",
            "cuEventRecord",
            "cuStreamSynchronize",
            "cuEventQuery",
            "cuEventSynchronize",
            "cuEventElapsedTime",
            "cuEventDestroy",
            "cuStreamDestroy",
        ] {
            assert!(p.count_of(name) >= 1, "{name} missing");
        }
    }

    #[test]
    fn cu_launch_kernel_is_wrapped_too() {
        let (ipm, drv) = monitored(IpmConfig::host_timing_only());
        drv.cu_init(0).unwrap();
        let k = Kernel::timed("modern", KernelCost::Fixed(0.01));
        drv.cu_launch_kernel(&k, LaunchConfig::simple(8u32, 32u32), &[KernelArg::I32(1)])
            .unwrap();
        drv.cu_ctx_synchronize().unwrap();
        assert_eq!(ipm.profile().count_of("cuLaunchKernel"), 1);
    }
}
