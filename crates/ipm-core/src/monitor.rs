//! The per-rank IPM context.
//!
//! One [`Ipm`] instance lives in each monitored process (MPI rank). It owns
//! the performance hash table, the kernel timing table, the user-region
//! stack, and the run metadata, and it is the [`MonitorSink`] all generated
//! wrappers report into. The monitored API facades
//! ([`crate::cuda_mon::IpmCuda`] and friends) share it via `Arc`.

use crate::ktt::{Ktt, KttCheckPolicy};
use crate::profile::{ProfileEntry, RankProfile};
use crate::sig::EventSignature;
use crate::table::PerfTable;
use ipm_interpose::MonitorSink;
use ipm_sim_core::SimClock;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::Arc;

/// Monitoring configuration (what the paper toggles between Figs. 4/5/6).
#[derive(Clone, Copy, Debug)]
pub struct IpmConfig {
    /// Time GPU kernels via the event API (§III-B; Fig. 5).
    pub gpu_timing: bool,
    /// Identify implicit host blocking (§III-C; Fig. 6).
    pub host_idle: bool,
    /// Virtual time charged per wrapped call — the monitoring perturbation
    /// the dilatation study (Fig. 8) measures. Calibrated so full MPI+CUDA
    /// monitoring of HPL costs ~0.2% of runtime.
    pub wrapper_overhead: f64,
    /// Kernel timing table slots.
    pub ktt_capacity: usize,
    /// When to sweep the KTT.
    pub ktt_policy: KttCheckPolicy,
    /// Performance-table capacity (distinct signatures).
    pub table_capacity: usize,
    /// Performance-table lock stripes.
    pub table_shards: usize,
    /// Optional per-invocation correction subtracted from event-bracketed
    /// kernel durations (the paper's "future work" overhead correction,
    /// evaluated as an ablation of Table I).
    pub exec_time_correction: Option<f64>,
}

impl Default for IpmConfig {
    fn default() -> Self {
        Self {
            gpu_timing: true,
            host_idle: true,
            wrapper_overhead: 0.3e-6,
            ktt_capacity: 1024,
            ktt_policy: KttCheckPolicy::D2hOnly,
            table_capacity: crate::table::DEFAULT_CAPACITY,
            table_shards: crate::table::DEFAULT_SHARDS,
            exec_time_correction: None,
        }
    }
}

impl IpmConfig {
    /// Host-side timing only (the Fig. 4 configuration).
    pub fn host_timing_only() -> Self {
        Self { gpu_timing: false, host_idle: false, ..Self::default() }
    }

    /// Host timing + GPU kernel timing, no host-idle (Fig. 5).
    pub fn with_gpu_timing_only() -> Self {
        Self { gpu_timing: true, host_idle: false, ..Self::default() }
    }
}

/// The per-rank monitoring context.
pub struct Ipm {
    cfg: IpmConfig,
    clock: SimClock,
    table: PerfTable,
    ktt: Mutex<Ktt>,
    region: AtomicU16,
    regions: Mutex<Vec<String>>,
    meta: Mutex<Meta>,
    start: f64,
}

#[derive(Clone, Debug)]
struct Meta {
    rank: usize,
    nranks: usize,
    host: String,
    command: String,
}

impl Ipm {
    /// Create a monitoring context on `clock` (the rank's virtual clock).
    pub fn new(clock: SimClock, cfg: IpmConfig) -> Arc<Self> {
        let start = clock.now();
        Arc::new(Self {
            table: PerfTable::with_shape(cfg.table_capacity, cfg.table_shards),
            ktt: Mutex::new(Ktt::new(cfg.ktt_capacity)),
            region: AtomicU16::new(0),
            regions: Mutex::new(vec!["<program>".to_owned()]),
            meta: Mutex::new(Meta {
                rank: 0,
                nranks: 1,
                host: "dirac00".to_owned(),
                command: "<unknown>".to_owned(),
            }),
            cfg,
            clock,
            start,
        })
    }

    /// Set run metadata (rank, world size, host name, command line).
    pub fn set_metadata(&self, rank: usize, nranks: usize, host: &str, command: &str) {
        let mut m = self.meta.lock();
        m.rank = rank;
        m.nranks = nranks;
        m.host = host.to_owned();
        m.command = command.to_owned();
    }

    /// The active configuration.
    pub fn config(&self) -> &IpmConfig {
        &self.cfg
    }

    /// The monitored clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The kernel timing table (facades lock it around launches/sweeps).
    pub(crate) fn ktt(&self) -> &Mutex<Ktt> {
        &self.ktt
    }

    /// Direct table access (reports, tests).
    pub fn table(&self) -> &PerfTable {
        &self.table
    }

    /// Record a pseudo-event (`@CUDA_EXEC_*`, `@CUDA_HOST_IDLE`).
    pub fn update_pseudo(&self, name: Arc<str>, detail: Option<Arc<str>>, duration: f64) {
        let sig = EventSignature {
            name,
            bytes: 0,
            region: self.region.load(Ordering::Relaxed),
            detail,
        };
        self.table.update(&sig, duration);
    }

    /// Enter a user region (IPM's `MPI_Pcontrol` regions); returns its id.
    /// Regions of the same name share an id.
    pub fn region_enter(&self, name: &str) -> u16 {
        let mut regions = self.regions.lock();
        let id = match regions.iter().position(|r| r == name) {
            Some(i) => i as u16,
            None => {
                regions.push(name.to_owned());
                (regions.len() - 1) as u16
            }
        };
        self.region.store(id, Ordering::Relaxed);
        id
    }

    /// Leave the current region (back to the whole-program region).
    pub fn region_exit(&self) {
        self.region.store(0, Ordering::Relaxed);
    }

    /// The currently active region id.
    pub fn current_region(&self) -> u16 {
        self.region.load(Ordering::Relaxed)
    }

    /// Produce the rank's profile (the XML log content). Does **not**
    /// drain the KTT — call the CUDA facade's `finalize` first if GPU
    /// timing is on.
    pub fn profile(&self) -> RankProfile {
        let meta = self.meta.lock().clone();
        let entries = self
            .table
            .snapshot()
            .into_iter()
            .map(|(sig, stats)| ProfileEntry {
                name: sig.name.to_string(),
                detail: sig.detail.as_ref().map(|d| d.to_string()),
                bytes: sig.bytes,
                region: sig.region,
                stats,
            })
            .collect();
        RankProfile {
            rank: meta.rank,
            nranks: meta.nranks,
            host: meta.host,
            command: meta.command,
            wallclock: self.clock.now() - self.start,
            regions: self.regions.lock().clone(),
            entries,
            dropped_events: self.table.overflow() + self.ktt.lock().dropped(),
        }
    }
}

impl MonitorSink for Ipm {
    fn update(&self, name: &'static str, bytes: u64, duration: f64) {
        let sig = EventSignature {
            name: Arc::from(name),
            bytes,
            region: self.region.load(Ordering::Relaxed),
            detail: None,
        };
        self.table.update(&sig, duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipm() -> Arc<Ipm> {
        Ipm::new(SimClock::new(), IpmConfig::default())
    }

    #[test]
    fn sink_updates_land_in_table() {
        let m = ipm();
        m.update("cudaMalloc", 0, 2.43);
        m.update("cudaMalloc", 0, 0.01);
        let p = m.profile();
        assert_eq!(p.count_of("cudaMalloc"), 2);
        assert!((p.time_of("cudaMalloc") - 2.44).abs() < 1e-12);
    }

    #[test]
    fn regions_partition_events() {
        let m = ipm();
        m.update("MPI_Send", 8, 1.0);
        let r = m.region_enter("solver");
        assert_eq!(r, 1);
        m.update("MPI_Send", 8, 2.0);
        m.region_exit();
        assert_eq!(m.current_region(), 0);
        let p = m.profile();
        assert_eq!(p.regions, vec!["<program>", "solver"]);
        let by_region: Vec<u16> =
            p.entries.iter().filter(|e| e.name == "MPI_Send").map(|e| e.region).collect();
        assert_eq!(by_region.len(), 2);
        assert!(by_region.contains(&0) && by_region.contains(&1));
    }

    #[test]
    fn reentering_a_region_reuses_its_id() {
        let m = ipm();
        let a = m.region_enter("phase");
        m.region_exit();
        let b = m.region_enter("phase");
        assert_eq!(a, b);
        assert_eq!(m.profile().regions.len(), 2);
    }

    #[test]
    fn wallclock_tracks_clock_progress() {
        let clock = SimClock::new();
        let m = Ipm::new(clock.clone(), IpmConfig::default());
        clock.advance(3.5);
        assert!((m.profile().wallclock - 3.5).abs() < 1e-12);
    }

    #[test]
    fn metadata_propagates_to_profile() {
        let m = ipm();
        m.set_metadata(3, 16, "dirac18", "pmemd.cuda.MPI");
        let p = m.profile();
        assert_eq!(p.rank, 3);
        assert_eq!(p.nranks, 16);
        assert_eq!(p.host, "dirac18");
        assert_eq!(p.command, "pmemd.cuda.MPI");
    }

    #[test]
    fn pseudo_events_carry_detail() {
        let m = ipm();
        m.update_pseudo(Arc::from("@CUDA_EXEC_STRM00"), Some(Arc::from("square")), 1.16);
        let p = m.profile();
        let e = p.entries.iter().find(|e| e.name == "@CUDA_EXEC_STRM00").unwrap();
        assert_eq!(e.detail.as_deref(), Some("square"));
    }

    #[test]
    fn config_presets_match_figures() {
        let fig4 = IpmConfig::host_timing_only();
        assert!(!fig4.gpu_timing && !fig4.host_idle);
        let fig5 = IpmConfig::with_gpu_timing_only();
        assert!(fig5.gpu_timing && !fig5.host_idle);
        let fig6 = IpmConfig::default();
        assert!(fig6.gpu_timing && fig6.host_idle);
    }
}
