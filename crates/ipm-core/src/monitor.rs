//! The per-rank IPM context.
//!
//! One [`Ipm`] instance lives in each monitored process (MPI rank). It owns
//! the performance hash table, the kernel timing table, the user-region
//! stack, and the run metadata, and it is the [`MonitorSink`] all generated
//! wrappers report into. The monitored API facades
//! ([`crate::cuda_mon::IpmCuda`] and friends) share it via `Arc`.

use crate::compact::CompactPolicy;
use crate::compat::LegacyMirror;
use crate::ktt::{Ktt, KttCheckPolicy};
use crate::profile::{classify, EventFamily, MonitorInfo, ProfileEntry, RankProfile};
use crate::sig::SigKey;
use crate::table::PerfTable;
use crate::trace::{TraceCounters, TraceKind, TraceRecord, TraceRing};
use ipm_interpose::{site, CallHandle, CallId, MonitorSink, NameTable};
use ipm_sim_core::SimClock;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU16, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Self-accounting sampling period: one recorded event in this many gets
/// a real `Instant` bracket around its bookkeeping, booked at `×SELF_SAMPLE`
/// weight. See [`Ipm::self_begin`].
const SELF_SAMPLE: u64 = 64;

/// Ceiling on a single sampled bookkeeping measurement. The bracket meters
/// monitor code that costs well under a microsecond; a reading beyond this
/// caught a scheduler preemption, not bookkeeping, and scaling it by
/// [`SELF_SAMPLE`] would let one descheduled sample dominate the reported
/// self cost.
const SELF_CLAMP_NS: u64 = 10_000;

/// Monitoring configuration (what the paper toggles between Figs. 4/5/6).
#[derive(Clone, Copy, Debug)]
pub struct IpmConfig {
    /// Time GPU kernels via the event API (§III-B; Fig. 5).
    pub gpu_timing: bool,
    /// Identify implicit host blocking (§III-C; Fig. 6).
    pub host_idle: bool,
    /// Virtual time charged per wrapped call — the monitoring perturbation
    /// the dilatation study (Fig. 8) measures. Calibrated so full MPI+CUDA
    /// monitoring of HPL costs ~0.2% of runtime.
    pub wrapper_overhead: f64,
    /// Kernel timing table slots.
    pub ktt_capacity: usize,
    /// When to sweep the KTT.
    pub ktt_policy: KttCheckPolicy,
    /// Performance-table capacity (distinct signatures).
    pub table_capacity: usize,
    /// Performance-table lock stripes.
    pub table_shards: usize,
    /// Optional per-invocation correction subtracted from event-bracketed
    /// kernel durations (the paper's "future work" overhead correction,
    /// evaluated as an ablation of Table I).
    pub exec_time_correction: Option<f64>,
    /// Trace-ring capacity in records; 0 disables event tracing entirely
    /// (the aggregate-only mode of the original paper).
    pub trace_capacity: usize,
    /// Trace-ring lock stripes.
    pub trace_shards: usize,
    /// Trace retention policy: when a stripe passes its high-water mark,
    /// adjacent same-signature records merge into summary records instead
    /// of the ring dropping once full. Disabled by default.
    pub trace_compaction: CompactPolicy,
    /// Live-telemetry overhead budget: the fraction of wall-clock time the
    /// observer is allowed to spend taking [`Ipm::snapshot`]s of this
    /// rank. `ClusterObserver::auto_period` divides the measured
    /// per-snapshot cost by this budget to derive the polling period, so a
    /// rank whose snapshots are expensive is polled less often. Default
    /// 1%.
    pub snapshot_overhead_budget: f64,
}

impl Default for IpmConfig {
    fn default() -> Self {
        Self {
            gpu_timing: true,
            host_idle: true,
            wrapper_overhead: 0.3e-6,
            ktt_capacity: 1024,
            ktt_policy: KttCheckPolicy::D2hOnly,
            table_capacity: crate::table::DEFAULT_CAPACITY,
            table_shards: crate::table::DEFAULT_SHARDS,
            exec_time_correction: None,
            trace_capacity: crate::trace::DEFAULT_TRACE_CAPACITY,
            trace_shards: crate::trace::DEFAULT_TRACE_SHARDS,
            trace_compaction: CompactPolicy::DISABLED,
            snapshot_overhead_budget: 0.01,
        }
    }
}

impl IpmConfig {
    /// Host-side timing only (the Fig. 4 configuration).
    pub fn host_timing_only() -> Self {
        Self {
            gpu_timing: false,
            host_idle: false,
            ..Self::default()
        }
    }

    /// Host timing + GPU kernel timing, no host-idle (Fig. 5).
    pub fn with_gpu_timing_only() -> Self {
        Self {
            gpu_timing: true,
            host_idle: false,
            ..Self::default()
        }
    }

    /// Disable the trace ring (aggregate-only monitoring, the paper's
    /// original mode; the baseline of the trace-overhead bench).
    pub fn without_tracing(mut self) -> Self {
        self.trace_capacity = 0;
        self
    }

    /// Enable trace compaction: stripes past `high_water` resident records
    /// merge adjacent same-signature records into summaries instead of
    /// eventually dropping.
    pub fn with_trace_compaction(mut self, high_water: usize) -> Self {
        self.trace_compaction = CompactPolicy::with_high_water(high_water);
        self
    }

    /// Set the live-telemetry overhead budget (fraction of wall-clock the
    /// observer may spend in snapshots of this rank; must be positive).
    pub fn with_snapshot_budget(mut self, budget: f64) -> Self {
        assert!(budget > 0.0, "snapshot budget must be positive");
        self.snapshot_overhead_budget = budget;
        self
    }
}

/// Per-family activity since the previous snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FamilyDelta {
    pub family: EventFamily,
    /// Calls completed in the interval.
    pub count: u64,
    /// Bytes moved in the interval.
    pub bytes: u64,
    /// Time spent in the interval (virtual seconds).
    pub time: f64,
}

/// Trace-ring activity since the previous snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TraceDelta {
    /// Records offered to the ring in the interval.
    pub emitted: u64,
    /// Change in individually-accounted records. Signed: a compaction pass
    /// moves records out of `captured`, so a busy interval can end with
    /// fewer accounted records than it started with.
    pub captured: i64,
    /// Records refused (ring full) in the interval.
    pub dropped: u64,
    /// Records absorbed into summaries in the interval. The invariant
    /// `captured + dropped + compacted == emitted` holds per interval
    /// (with `captured` signed) exactly as it does cumulatively.
    pub compacted: u64,
}

/// One periodic sample of a running rank — a cheap delta of the perf table
/// since the previous [`Ipm::snapshot`] call, the unit the live-telemetry
/// view streams. Zero-activity families are omitted.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    pub rank: usize,
    /// Monotone per-rank sample number (0 for the first snapshot).
    pub seq: u64,
    /// Virtual time of this sample.
    pub at: f64,
    /// Virtual seconds since the previous sample (since monitoring start
    /// for the first).
    pub interval: f64,
    pub families: Vec<FamilyDelta>,
    /// Trace-ring activity in the interval (all zero when tracing is off).
    pub trace: TraceDelta,
}

impl Snapshot {
    /// Total monitored time in the interval, all families.
    pub fn busy_time(&self) -> f64 {
        self.families.iter().map(|f| f.time).sum::<f64>() + 0.0
    }

    /// The delta for one family, if it was active.
    pub fn family(&self, family: EventFamily) -> Option<&FamilyDelta> {
        self.families.iter().find(|f| f.family == family)
    }
}

/// Fixed presentation order for family deltas.
const FAMILY_ORDER: [EventFamily; 7] = [
    EventFamily::Mpi,
    EventFamily::Cuda,
    EventFamily::Cublas,
    EventFamily::Cufft,
    EventFamily::GpuExec,
    EventFamily::HostIdle,
    EventFamily::Other,
];

#[derive(Default)]
struct SnapState {
    seq: u64,
    last_at: Option<f64>,
    /// Cumulative `(count, bytes, time)` per family at the last snapshot.
    last: HashMap<EventFamily, (u64, u64, f64)>,
    /// Cumulative trace counters at the last snapshot.
    last_trace: TraceCounters,
}

/// The per-rank monitoring context.
pub struct Ipm {
    cfg: IpmConfig,
    clock: SimClock,
    table: PerfTable,
    ktt: Mutex<Ktt>,
    region: AtomicU16,
    regions: Mutex<Vec<String>>,
    meta: Mutex<Meta>,
    start: f64,
    /// Cluster clock-alignment instant (first `MPI_Init` return on this
    /// rank's clock); `None` until [`Ipm::mark_epoch`] runs.
    epoch: Mutex<Option<f64>>,
    /// Event trace ring; `None` when tracing is disabled.
    trace: Option<TraceRing>,
    /// Wall-clock (real, not virtual) nanoseconds of IPM's own bookkeeping
    /// — the "monitor the monitor" counter.
    self_ns: AtomicU64,
    /// Recorded events since start, driving the sampled self-accounting:
    /// timing every event's bookkeeping costs two clock reads — several
    /// times the delta-cell deposit being metered — so one event in
    /// [`SELF_SAMPLE`] is timed and its cost scaled up. Unbiased, and
    /// ~2 ns amortized instead of ~85 ns exact.
    self_events: AtomicU64,
    snap: Mutex<SnapState>,
    /// Differential-test hook: a secondary recorder fed the same events as
    /// the primary table through the *legacy string-keyed* path. Costs one
    /// uncontended atomic load per record when absent (the normal case).
    mirror: OnceLock<Arc<LegacyMirror>>,
}

#[derive(Clone, Debug)]
struct Meta {
    rank: usize,
    nranks: usize,
    host: String,
    command: String,
}

impl Ipm {
    /// Create a monitoring context on `clock` (the rank's virtual clock).
    pub fn new(clock: SimClock, cfg: IpmConfig) -> Arc<Self> {
        let start = clock.now();
        Arc::new(Self {
            table: PerfTable::with_shape(cfg.table_capacity, cfg.table_shards),
            ktt: Mutex::new(Ktt::new(cfg.ktt_capacity)),
            region: AtomicU16::new(0),
            regions: Mutex::new(vec!["<program>".to_owned()]),
            meta: Mutex::new(Meta {
                rank: 0,
                nranks: 1,
                host: "dirac00".to_owned(),
                command: "<unknown>".to_owned(),
            }),
            epoch: Mutex::new(None),
            trace: (cfg.trace_capacity > 0).then(|| {
                TraceRing::with_policy(cfg.trace_capacity, cfg.trace_shards, cfg.trace_compaction)
            }),
            self_ns: AtomicU64::new(0),
            self_events: AtomicU64::new(0),
            snap: Mutex::new(SnapState::default()),
            mirror: OnceLock::new(),
            cfg,
            clock,
            start,
        })
    }

    /// Set run metadata (rank, world size, host name, command line).
    pub fn set_metadata(&self, rank: usize, nranks: usize, host: &str, command: &str) {
        let mut m = self.meta.lock();
        m.rank = rank;
        m.nranks = nranks;
        m.host = host.to_owned();
        m.command = command.to_owned();
    }

    /// The active configuration.
    pub fn config(&self) -> &IpmConfig {
        &self.cfg
    }

    /// The monitored clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The kernel timing table (facades lock it around launches/sweeps).
    pub(crate) fn ktt(&self) -> &Mutex<Ktt> {
        &self.ktt
    }

    /// Direct table access (reports, tests).
    pub fn table(&self) -> &PerfTable {
        &self.table
    }

    /// The one signature-construction site of the record path: every
    /// table update — wrapped call, pseudo-event, mirror — keys through
    /// here, so the attributes can never diverge between paths.
    #[inline]
    fn sig_key(&self, id: CallId, bytes: u64, detail: Option<CallId>) -> SigKey {
        SigKey {
            id,
            bytes,
            region: self.region.load(Ordering::Relaxed),
            detail,
        }
    }

    /// Start self-accounting for one recorded event: every
    /// [`SELF_SAMPLE`]th event gets a real timestamp (the first always
    /// does, so any monitored run accounts a nonzero cost).
    #[inline]
    fn self_begin(&self) -> Option<Instant> {
        let n = self.self_events.fetch_add(1, Ordering::Relaxed);
        n.is_multiple_of(SELF_SAMPLE).then(Instant::now)
    }

    /// Close a [`Self::self_begin`] bracket: a sampled event books its
    /// measured cost on behalf of the `SELF_SAMPLE - 1` unmeasured events
    /// around it, clamped to [`SELF_CLAMP_NS`] so a preempted sample can't
    /// be amplified into the dominant term.
    #[inline]
    fn self_end(&self, t: Option<Instant>) {
        if let Some(t) = t {
            let ns = (t.elapsed().as_nanos() as u64).min(SELF_CLAMP_NS);
            self.self_ns.fetch_add(ns * SELF_SAMPLE, Ordering::Relaxed);
        }
    }

    /// Record a pseudo-event (`@CUDA_EXEC_*`, `@CUDA_HOST_IDLE`) by its
    /// interned id; `detail` carries the interned kernel symbol for
    /// `@CUDA_EXEC_*` entries.
    pub fn update_pseudo(&self, name: CallId, detail: Option<CallId>, duration: f64) {
        let t = self.self_begin();
        let key = self.sig_key(name, 0, detail);
        self.table.update_key(key, duration);
        if let Some(m) = self.mirror.get() {
            m.pseudo(name, detail, key.region, duration);
        }
        self.self_end(t);
    }

    /// Install the legacy string-keyed mirror (differential testing only).
    /// First call wins; returns false if a mirror was already installed.
    pub fn install_mirror(&self, mirror: Arc<LegacyMirror>) -> bool {
        self.mirror.set(mirror).is_ok()
    }

    /// Whether the trace ring is active.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Pin the cluster clock-alignment epoch to the current virtual time.
    /// First call wins; later calls are no-ops. The MPI facade calls this
    /// when a rank attaches to the world — the analogue of `MPI_Init`
    /// returning, the first instant every rank has passed through.
    pub fn mark_epoch(&self) {
        let mut epoch = self.epoch.lock();
        if epoch.is_none() {
            *epoch = Some(self.clock.now());
        }
    }

    /// The clock-alignment epoch: the marked instant, or monitoring start
    /// when [`Ipm::mark_epoch`] never ran (single-rank runs without MPI).
    /// Exporters subtract this from trace timestamps so merged multi-rank
    /// lanes share `ts = 0`.
    pub fn epoch(&self) -> f64 {
        self.epoch.lock().unwrap_or(self.start)
    }

    /// Capture a kernel-execution interval in the trace (KTT completion
    /// with device timestamps). No-op when tracing is disabled.
    pub fn trace_kernel_exec(
        &self,
        name: Arc<str>,
        kernel: Arc<str>,
        stream: u32,
        interval: (f64, f64),
        corr: u64,
    ) {
        let Some(ring) = &self.trace else { return };
        let t = Instant::now();
        ring.push(TraceRecord {
            kind: TraceKind::KernelExec,
            name,
            detail: Some(kernel),
            begin: interval.0,
            end: interval.1,
            bytes: 0,
            region: self.region.load(Ordering::Relaxed),
            stream: Some(stream),
            corr,
            agg: None,
        });
        self.self_ns
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Capture an implicit host-blocking interval (`@CUDA_HOST_IDLE`) in
    /// the trace. No-op when tracing is disabled.
    pub fn trace_host_idle(&self, begin: f64, end: f64) {
        let Some(ring) = &self.trace else { return };
        let t = Instant::now();
        // resolved once per process: cloning the interner's Arc, not
        // re-allocating the pseudo-event name per idle interval
        static IDLE_NAME: OnceLock<Arc<str>> = OnceLock::new();
        let name = IDLE_NAME
            .get_or_init(|| CallHandle::of(crate::sig::EventSignature::HOST_IDLE).name())
            .clone();
        ring.push(TraceRecord {
            kind: TraceKind::HostIdle,
            name,
            detail: None,
            begin,
            end,
            bytes: 0,
            region: self.region.load(Ordering::Relaxed),
            stream: None,
            corr: 0,
            agg: None,
        });
        self.self_ns
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Remove and return every captured trace record (sorted by begin),
    /// freeing ring space. Empty when tracing is disabled.
    pub fn drain_trace(&self) -> Vec<TraceRecord> {
        self.trace
            .as_ref()
            .map(TraceRing::drain)
            .unwrap_or_default()
    }

    /// Copy the resident trace records without consuming them.
    pub fn trace_snapshot(&self) -> Vec<TraceRecord> {
        self.trace
            .as_ref()
            .map(TraceRing::snapshot)
            .unwrap_or_default()
    }

    /// Current self-accounting counters. The four trace counters come from
    /// one consistent [`TraceRing::counters`] sweep, so the reported ledger
    /// closes (`captured + dropped + compacted == emitted`) even when this
    /// is sampled mid-run with writers still pushing.
    pub fn monitor_info(&self) -> MonitorInfo {
        let trace = self
            .trace
            .as_ref()
            .map(TraceRing::counters)
            .unwrap_or_default();
        MonitorInfo {
            self_wall_ns: self.self_ns.load(Ordering::Relaxed),
            trace_emitted: trace.emitted,
            trace_captured: trace.captured,
            trace_dropped: trace.dropped,
            trace_compacted: trace.compacted,
            ring_hwm_bytes: self
                .trace
                .as_ref()
                .map(TraceRing::high_water_bytes)
                .unwrap_or(0),
        }
    }

    /// Produce the next periodic sample: per-family activity since the
    /// previous `snapshot` call. Cost is one pass over the perf table —
    /// cheap enough to run at a few hertz against a live rank.
    pub fn snapshot(&self) -> Snapshot {
        let t = Instant::now();
        // The snap lock is taken *before* sampling the cumulative counters
        // and held until the baselines are replaced: two concurrent
        // snapshot() callers are serialized, so the later one can never
        // compute deltas from a counter read older than the stored
        // baseline (which would underflow the unsigned subtractions).
        let mut snap = self.snap.lock();
        let mut totals: HashMap<EventFamily, (u64, u64, f64)> = HashMap::new();
        for (sig, stats) in self.table.snapshot() {
            let e = totals.entry(classify(&sig.name)).or_default();
            e.0 += stats.count;
            e.1 += sig.bytes * stats.count;
            e.2 += stats.total;
        }
        let now = self.clock.now();
        let rank = self.meta.lock().rank;
        let cur_trace = self
            .trace
            .as_ref()
            .map(TraceRing::counters)
            .unwrap_or_default();
        let interval = now - snap.last_at.unwrap_or(self.start);
        let mut families = Vec::new();
        for family in FAMILY_ORDER {
            let cur = totals.get(&family).copied().unwrap_or_default();
            let prev = snap.last.get(&family).copied().unwrap_or_default();
            let delta = FamilyDelta {
                family,
                count: cur.0 - prev.0,
                bytes: cur.1 - prev.1,
                time: cur.2 - prev.2,
            };
            if delta.count > 0 || delta.time != 0.0 {
                families.push(delta);
            }
        }
        let prev_trace = snap.last_trace;
        let trace = TraceDelta {
            emitted: cur_trace.emitted - prev_trace.emitted,
            // compaction can shrink cumulative captured between samples
            captured: cur_trace.captured as i64 - prev_trace.captured as i64,
            dropped: cur_trace.dropped - prev_trace.dropped,
            compacted: cur_trace.compacted - prev_trace.compacted,
        };
        let seq = snap.seq;
        snap.seq += 1;
        snap.last_at = Some(now);
        snap.last = totals;
        snap.last_trace = cur_trace;
        drop(snap);
        self.self_ns
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Snapshot {
            rank,
            seq,
            at: now,
            interval,
            families,
            trace,
        }
    }

    /// Enter a user region (IPM's `MPI_Pcontrol` regions); returns its id.
    /// Regions of the same name share an id.
    pub fn region_enter(&self, name: &str) -> u16 {
        let mut regions = self.regions.lock();
        let id = match regions.iter().position(|r| r == name) {
            Some(i) => i as u16,
            None => {
                regions.push(name.to_owned());
                (regions.len() - 1) as u16
            }
        };
        self.region.store(id, Ordering::Relaxed);
        id
    }

    /// Leave the current region (back to the whole-program region).
    pub fn region_exit(&self) {
        self.region.store(0, Ordering::Relaxed);
    }

    /// The currently active region id.
    pub fn current_region(&self) -> u16 {
        self.region.load(Ordering::Relaxed)
    }

    /// Produce the rank's profile (the XML log content). Does **not**
    /// drain the KTT — call the CUDA facade's `finalize` first if GPU
    /// timing is on.
    pub fn profile(&self) -> RankProfile {
        let meta = self.meta.lock().clone();
        let entries = self
            .table
            .snapshot()
            .into_iter()
            .map(|(sig, stats)| ProfileEntry {
                name: sig.name.to_string(),
                detail: sig.detail.as_ref().map(|d| d.to_string()),
                bytes: sig.bytes,
                region: sig.region,
                stats,
            })
            .collect();
        RankProfile {
            rank: meta.rank,
            nranks: meta.nranks,
            host: meta.host,
            command: meta.command,
            wallclock: self.clock.now() - self.start,
            regions: self.regions.lock().clone(),
            entries,
            dropped_events: self.table.overflow() + self.ktt.lock().dropped(),
            monitor: self.monitor_info(),
        }
    }
}

impl MonitorSink for Ipm {
    fn update(&self, call: CallHandle, bytes: u64, duration: f64) {
        let t = self.self_begin();
        let key = self.sig_key(call.id, bytes, None);
        self.table.update_key(key, duration);
        if let Some(m) = self.mirror.get() {
            m.update(call, bytes, key.region, duration);
        }
        self.self_end(t);
    }

    fn span(&self, call: CallHandle, bytes: u64, begin: f64, end: f64) {
        let t = self.self_begin();
        let key = self.sig_key(call.id, bytes, None);
        self.table.update_key(key, end - begin);
        if let Some(m) = self.mirror.get() {
            m.update(call, bytes, key.region, end - begin);
        }
        if let Some(ring) = &self.trace {
            // a launch wrapper just ran the real call on this thread, so the
            // runtime's thread-local correlation id belongs to this record
            let corr = if call.id == site!("cudaLaunch").id || call.id == site!("cuLaunchGrid").id {
                ipm_gpu_sim::last_launch_correlation_id()
            } else {
                0
            };
            ring.push(TraceRecord {
                kind: TraceKind::Call,
                // O(1) interner lookup cloning the shared Arc — the record
                // path still performs no allocation
                name: NameTable::global().name(call.id),
                detail: None,
                begin,
                end,
                bytes,
                region: key.region,
                stream: None,
                corr,
                agg: None,
            });
        }
        self.self_end(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipm() -> Arc<Ipm> {
        Ipm::new(SimClock::new(), IpmConfig::default())
    }

    #[test]
    fn sink_updates_land_in_table() {
        let m = ipm();
        m.update(CallHandle::of("cudaMalloc"), 0, 2.43);
        m.update(CallHandle::of("cudaMalloc"), 0, 0.01);
        let p = m.profile();
        assert_eq!(p.count_of("cudaMalloc"), 2);
        assert!((p.time_of("cudaMalloc") - 2.44).abs() < 1e-12);
    }

    #[test]
    fn regions_partition_events() {
        let m = ipm();
        m.update(CallHandle::of("MPI_Send"), 8, 1.0);
        let r = m.region_enter("solver");
        assert_eq!(r, 1);
        m.update(CallHandle::of("MPI_Send"), 8, 2.0);
        m.region_exit();
        assert_eq!(m.current_region(), 0);
        let p = m.profile();
        assert_eq!(p.regions, vec!["<program>", "solver"]);
        let by_region: Vec<u16> = p
            .entries
            .iter()
            .filter(|e| e.name == "MPI_Send")
            .map(|e| e.region)
            .collect();
        assert_eq!(by_region.len(), 2);
        assert!(by_region.contains(&0) && by_region.contains(&1));
    }

    #[test]
    fn reentering_a_region_reuses_its_id() {
        let m = ipm();
        let a = m.region_enter("phase");
        m.region_exit();
        let b = m.region_enter("phase");
        assert_eq!(a, b);
        assert_eq!(m.profile().regions.len(), 2);
    }

    #[test]
    fn wallclock_tracks_clock_progress() {
        let clock = SimClock::new();
        let m = Ipm::new(clock.clone(), IpmConfig::default());
        clock.advance(3.5);
        assert!((m.profile().wallclock - 3.5).abs() < 1e-12);
    }

    #[test]
    fn metadata_propagates_to_profile() {
        let m = ipm();
        m.set_metadata(3, 16, "dirac18", "pmemd.cuda.MPI");
        let p = m.profile();
        assert_eq!(p.rank, 3);
        assert_eq!(p.nranks, 16);
        assert_eq!(p.host, "dirac18");
        assert_eq!(p.command, "pmemd.cuda.MPI");
    }

    #[test]
    fn pseudo_events_carry_detail() {
        let m = ipm();
        m.update_pseudo(
            CallHandle::of("@CUDA_EXEC_STRM00").id,
            Some(CallHandle::of("square").id),
            1.16,
        );
        let p = m.profile();
        let e = p
            .entries
            .iter()
            .find(|e| e.name == "@CUDA_EXEC_STRM00")
            .unwrap();
        assert_eq!(e.detail.as_deref(), Some("square"));
    }

    #[test]
    fn config_presets_match_figures() {
        let fig4 = IpmConfig::host_timing_only();
        assert!(!fig4.gpu_timing && !fig4.host_idle);
        let fig5 = IpmConfig::with_gpu_timing_only();
        assert!(fig5.gpu_timing && !fig5.host_idle);
        let fig6 = IpmConfig::default();
        assert!(fig6.gpu_timing && fig6.host_idle);
    }

    #[test]
    fn epoch_is_first_call_wins_and_defaults_to_start() {
        let clock = SimClock::new();
        clock.advance(1.0);
        let m = Ipm::new(clock.clone(), IpmConfig::default());
        assert_eq!(m.epoch(), 1.0, "unmarked epoch is monitoring start");
        clock.advance(2.0);
        m.mark_epoch();
        assert_eq!(m.epoch(), 3.0);
        clock.advance(5.0);
        m.mark_epoch();
        assert_eq!(m.epoch(), 3.0, "second mark is a no-op");
    }

    #[test]
    fn snapshot_reports_trace_deltas_including_compaction() {
        let clock = SimClock::new();
        let cfg = IpmConfig {
            trace_capacity: 1 << 10,
            trace_shards: 1,
            ..IpmConfig::default()
        }
        .with_trace_compaction(8);
        let m = Ipm::new(clock.clone(), cfg);
        for i in 0..6 {
            m.span(CallHandle::of("cudaMalloc"), 0, i as f64, i as f64 + 0.1);
        }
        let s = m.snapshot();
        assert_eq!(s.trace.emitted, 6);
        assert_eq!(s.trace.captured, 6);
        assert_eq!(s.trace.dropped, 0);
        assert_eq!(s.trace.compacted, 0);
        // push past the high-water mark so a pass merges the backlog; the
        // interval's captured delta goes negative while emitted stays
        // exactly the number of new offers
        for i in 6..40 {
            m.span(CallHandle::of("cudaMalloc"), 0, i as f64, i as f64 + 0.1);
        }
        let s = m.snapshot();
        assert_eq!(s.trace.emitted, 34);
        assert!(s.trace.compacted > 0);
        assert_eq!(
            s.trace.captured + s.trace.dropped as i64 + s.trace.compacted as i64,
            s.trace.emitted as i64,
            "interval accounting closes"
        );
        let info = m.monitor_info();
        assert_eq!(
            info.trace_captured + info.trace_dropped + info.trace_compacted,
            info.trace_emitted
        );
    }
}
