//! CUBE conversion.
//!
//! IPM profiles can be converted "into the CUBE format … particularly well
//! suited for the interactive exploration of performance data using the
//! CUBE GUI" (paper §II; Fig. 9 is a CUBE screenshot of the HPL run). CUBE
//! organizes data along three dimensions: a **metric tree**, a **call
//! tree** (here: the CUDA metric hierarchy above the MPI hierarchy, as the
//! Fig. 9 caption describes), and the **system tree** (nodes → ranks).
//!
//! This module produces both a machine-readable CUBE-like XML document and
//! the text rendering used by the `repro-fig9` experiment binary.

use crate::aggregate::ClusterReport;
use crate::profile::EventFamily;
use std::fmt::Write as _;

/// One metric node of the CUBE hierarchy with per-rank severity values.
#[derive(Clone, Debug)]
pub struct CubeMetric {
    pub name: String,
    /// Value per rank (the "severity" in CUBE terms), seconds.
    pub per_rank: Vec<f64>,
    pub children: Vec<CubeMetric>,
}

impl CubeMetric {
    /// Sum over ranks.
    pub fn total(&self) -> f64 {
        self.per_rank.iter().sum()
    }

    /// Recursively count nodes.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(CubeMetric::node_count)
            .sum::<usize>()
    }
}

/// Build the CUBE metric hierarchy from an aggregated report: the CUDA
/// hierarchy (per-stream kernel execution, host idle, API time) above the
/// MPI hierarchy (per-call totals) — Fig. 9's layout.
pub fn build_cube(report: &ClusterReport) -> CubeMetric {
    let nranks = report.nranks;
    let per_rank_of =
        |name: &str| -> Vec<f64> { report.profiles().iter().map(|p| p.time_of(name)).collect() };

    // CUDA subtree: kernels per stream
    let mut stream_children: Vec<CubeMetric> = Vec::new();
    let mut stream_names: Vec<String> = Vec::new();
    for p in report.profiles() {
        for e in &p.entries {
            if e.family() == EventFamily::GpuExec && !stream_names.contains(&e.name) {
                stream_names.push(e.name.clone());
            }
        }
    }
    stream_names.sort();
    for sname in stream_names {
        // kernels within this stream
        let mut kernel_names: Vec<String> = Vec::new();
        for p in report.profiles() {
            for e in &p.entries {
                if e.name == sname {
                    if let Some(d) = &e.detail {
                        if !kernel_names.contains(d) {
                            kernel_names.push(d.clone());
                        }
                    }
                }
            }
        }
        kernel_names.sort();
        let children: Vec<CubeMetric> = kernel_names
            .into_iter()
            .map(|k| CubeMetric {
                per_rank: report
                    .profiles()
                    .iter()
                    .map(|p| {
                        p.entries
                            .iter()
                            .filter(|e| e.name == sname && e.detail.as_deref() == Some(&k))
                            .map(|e| e.stats.total)
                            .sum()
                    })
                    .collect(),
                name: k,
                children: Vec::new(),
            })
            .collect();
        stream_children.push(CubeMetric {
            per_rank: per_rank_of(&sname),
            name: sname,
            children,
        });
    }

    let cuda_api: Vec<f64> = report
        .profiles()
        .iter()
        .map(|p| p.family_time(EventFamily::Cuda))
        .collect();
    let host_idle: Vec<f64> = report
        .profiles()
        .iter()
        .map(|p| p.family_time(EventFamily::HostIdle))
        .collect();
    let cuda_subtree = CubeMetric {
        name: "CUDA".to_owned(),
        per_rank: (0..nranks)
            .map(|r| {
                cuda_api[r]
                    + host_idle[r]
                    + stream_children.iter().map(|s| s.per_rank[r]).sum::<f64>()
            })
            .collect(),
        children: {
            let mut ch = vec![
                CubeMetric {
                    name: "API time".to_owned(),
                    per_rank: cuda_api,
                    children: vec![],
                },
                CubeMetric {
                    name: "@CUDA_HOST_IDLE".to_owned(),
                    per_rank: host_idle,
                    children: vec![],
                },
            ];
            ch.extend(stream_children);
            ch
        },
    };

    // MPI subtree: one child per MPI call
    let mut mpi_names: Vec<String> = Vec::new();
    for p in report.profiles() {
        for e in &p.entries {
            if e.family() == EventFamily::Mpi && !mpi_names.contains(&e.name) {
                mpi_names.push(e.name.clone());
            }
        }
    }
    mpi_names.sort();
    let mpi_children: Vec<CubeMetric> = mpi_names
        .iter()
        .map(|n| CubeMetric {
            name: n.clone(),
            per_rank: per_rank_of(n),
            children: vec![],
        })
        .collect();
    let mpi_subtree = CubeMetric {
        name: "MPI".to_owned(),
        per_rank: report
            .profiles()
            .iter()
            .map(|p| p.family_time(EventFamily::Mpi))
            .collect(),
        children: mpi_children,
    };

    CubeMetric {
        name: "time".to_owned(),
        per_rank: report.profiles().iter().map(|p| p.wallclock).collect(),
        // CUDA hierarchy above MPI, per the Fig. 9 caption
        children: vec![cuda_subtree, mpi_subtree],
    }
}

/// Serialize a metric tree as CUBE-like XML.
pub fn cube_to_xml(root: &CubeMetric, report: &ClusterReport) -> String {
    let mut out = String::new();
    out.push_str("<cube version=\"4.0\">\n  <system>\n");
    for p in report.profiles() {
        let _ = writeln!(out, "    <rank id=\"{}\" host=\"{}\"/>", p.rank, p.host);
    }
    out.push_str("  </system>\n");
    write_metric(&mut out, root, 1);
    out.push_str("</cube>\n");
    out
}

fn write_metric(out: &mut String, m: &CubeMetric, depth: usize) {
    let pad = "  ".repeat(depth);
    let values: Vec<String> = m.per_rank.iter().map(|v| format!("{v:.6}")).collect();
    let _ = writeln!(
        out,
        "{pad}<metric name=\"{}\" total=\"{:.6}\" severity=\"{}\">",
        m.name,
        m.total(),
        values.join(",")
    );
    for c in &m.children {
        write_metric(out, c, depth + 1);
    }
    let _ = writeln!(out, "{pad}</metric>");
}

/// Text rendering of the metric tree with per-rank distribution summaries
/// — the console stand-in for the CUBE GUI view of Fig. 9.
pub fn render_cube_text(root: &CubeMetric) -> String {
    let mut out = String::new();
    render_node(&mut out, root, 0);
    out
}

fn render_node(out: &mut String, m: &CubeMetric, depth: usize) {
    let pad = "  ".repeat(depth);
    let n = m.per_rank.len().max(1);
    let min = m.per_rank.iter().copied().fold(f64::INFINITY, f64::min);
    let max = m.per_rank.iter().copied().fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "{pad}{:<40} total {:>10.3}s  avg {:>9.3}s  min {:>9.3}s  max {:>9.3}s",
        m.name,
        m.total(),
        m.total() / n as f64,
        if min.is_finite() { min } else { 0.0 },
        max,
    );
    for c in &m.children {
        render_node(out, c, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ProfileEntry, RankProfile};
    use ipm_sim_core::RunningStats;

    fn report() -> ClusterReport {
        let mk = |rank: usize| {
            let mut s = RunningStats::new();
            s.record(1.0 + rank as f64);
            let entry = |name: &str, detail: Option<&str>| ProfileEntry {
                name: name.to_owned(),
                detail: detail.map(str::to_owned),
                bytes: 0,
                region: 0,
                stats: s,
            };
            RankProfile {
                rank,
                nranks: 2,
                host: format!("dirac{rank:02}"),
                command: "hpl".to_owned(),
                wallclock: 10.0,
                regions: vec!["<program>".to_owned()],
                entries: vec![
                    entry("@CUDA_EXEC_STRM00", Some("dgemm_nn_e_kernel")),
                    entry("@CUDA_EXEC_STRM00", Some("transpose")),
                    entry("MPI_Send", None),
                    entry("cudaMemcpy(D2H)", None),
                    entry("@CUDA_HOST_IDLE", None),
                ],
                dropped_events: 0,
                monitor: Default::default(),
            }
        };
        ClusterReport::from_profiles(vec![mk(0), mk(1)], 2)
    }

    #[test]
    fn cube_tree_has_cuda_above_mpi() {
        let cube = build_cube(&report());
        assert_eq!(cube.name, "time");
        assert_eq!(cube.children[0].name, "CUDA");
        assert_eq!(cube.children[1].name, "MPI");
    }

    #[test]
    fn kernels_nest_under_streams() {
        let cube = build_cube(&report());
        let cuda = &cube.children[0];
        let stream = cuda
            .children
            .iter()
            .find(|c| c.name == "@CUDA_EXEC_STRM00")
            .expect("stream node");
        let names: Vec<&str> = stream.children.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"dgemm_nn_e_kernel"));
        assert!(names.contains(&"transpose"));
        // per-rank values present for each rank
        assert_eq!(stream.children[0].per_rank.len(), 2);
    }

    #[test]
    fn totals_aggregate_children_consistently() {
        let cube = build_cube(&report());
        let mpi = &cube.children[1];
        let child_sum: f64 = mpi.children.iter().map(CubeMetric::total).sum();
        assert!((mpi.total() - child_sum).abs() < 1e-9);
    }

    #[test]
    fn xml_and_text_renderings_contain_the_tree() {
        let r = report();
        let cube = build_cube(&r);
        let xml = cube_to_xml(&cube, &r);
        assert!(xml.contains("<cube version=\"4.0\">"));
        assert!(xml.contains("dgemm_nn_e_kernel"));
        assert!(xml.contains("<rank id=\"1\" host=\"dirac01\"/>"));
        let text = render_cube_text(&cube);
        assert!(text.contains("@CUDA_EXEC_STRM00"));
        assert!(text.contains("MPI_Send"));
        assert!(cube.node_count() >= 8);
    }
}
