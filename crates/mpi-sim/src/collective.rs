//! Collective rendezvous machinery.
//!
//! All ranks of a [`crate::World`] meet at a generation-numbered rendezvous:
//! each contributes its payload and its current virtual time; the last
//! arrival combines the payloads, computes the common completion time
//! (`max arrival + collective cost`), publishes the result for that
//! generation, and wakes the others. Results are kept per generation with a
//! reader count so a slow rank can still collect its result after faster
//! ranks have raced ahead into the next collective.

use crate::error::{MpiError, MpiResult};
use ipm_sim_core::model::{collective_cost, CollectiveKind, TransferModel};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

/// Reduction operators for `MPI_Reduce`/`MPI_Allreduce` over `f64`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
    Prod,
}

impl ReduceOp {
    /// Apply the operator to two elements.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Prod => a * b,
        }
    }

    /// The operator's identity element.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Prod => 1.0,
        }
    }
}

/// What a collective produced, shared by all participants.
#[derive(Clone, Debug)]
pub enum Combined {
    /// Barrier: nothing.
    None,
    /// Bcast: the root's buffer.
    Bytes(Arc<Vec<u8>>),
    /// Gather / Allgather / Alltoall: one buffer per rank (for alltoall,
    /// entry `i` is what rank `i` receives, already concatenated).
    PerRank(Arc<Vec<Vec<u8>>>),
    /// Reduce / Allreduce over `f64`.
    Reduced(Arc<Vec<f64>>),
}

/// One finished collective round.
#[derive(Clone, Debug)]
pub struct CollectiveOutcome {
    /// Latest participant arrival time (the synchronization point).
    pub sync_time: f64,
    /// Cost beyond the synchronization point.
    pub cost: f64,
    /// Combined payload.
    pub data: Combined,
}

/// Identifies which collective a rank entered, for mismatch detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveCall {
    Barrier,
    Bcast { root: usize },
    Reduce { root: usize, op: ReduceOp },
    Allreduce { op: ReduceOp },
    Gather { root: usize },
    Allgather,
    Scatter { root: usize },
    Alltoall,
}

impl CollectiveCall {
    fn kind(&self) -> CollectiveKind {
        match self {
            CollectiveCall::Barrier => CollectiveKind::Barrier,
            CollectiveCall::Bcast { .. } => CollectiveKind::Bcast,
            CollectiveCall::Reduce { .. } => CollectiveKind::Reduce,
            CollectiveCall::Allreduce { .. } => CollectiveKind::Allreduce,
            CollectiveCall::Gather { .. } => CollectiveKind::Gather,
            CollectiveCall::Allgather => CollectiveKind::Allgather,
            CollectiveCall::Scatter { .. } => CollectiveKind::Scatter,
            CollectiveCall::Alltoall => CollectiveKind::Alltoall,
        }
    }
}

struct Round {
    call: Option<CollectiveCall>,
    arrived: usize,
    max_time: f64,
    max_bytes: u64,
    payloads: Vec<Option<Vec<u8>>>,
    error: Option<MpiError>,
}

impl Round {
    fn fresh(size: usize) -> Self {
        Self {
            call: None,
            arrived: 0,
            max_time: 0.0,
            max_bytes: 0,
            payloads: vec![None; size],
            error: None,
        }
    }
}

struct State {
    generation: u64,
    round: Round,
    /// generation → (outcome, remaining readers)
    results: HashMap<u64, (Result<CollectiveOutcome, MpiError>, usize)>,
}

/// The rendezvous shared by all ranks of one world.
pub struct Rendezvous {
    size: usize,
    net: TransferModel,
    state: Mutex<State>,
    cv: Condvar,
}

impl Rendezvous {
    /// Rendezvous for `size` ranks over network `net`.
    pub fn new(size: usize, net: TransferModel) -> Self {
        assert!(size > 0);
        Self {
            size,
            net,
            state: Mutex::new(State {
                generation: 0,
                round: Round::fresh(size),
                results: HashMap::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Enter the collective `call` as `rank`, contributing `payload` at
    /// virtual time `now`. Blocks (the OS thread) until all ranks arrive;
    /// returns the combined outcome.
    pub fn enter(
        &self,
        rank: usize,
        call: CollectiveCall,
        payload: Vec<u8>,
        now: f64,
    ) -> MpiResult<CollectiveOutcome> {
        let mut st = self.state.lock();
        let gen = st.generation;
        // mismatch detection: all ranks of a round must issue the same call
        match st.round.call {
            None => st.round.call = Some(call),
            Some(existing) if existing == call => {}
            Some(_) => st.round.error = Some(MpiError::CollectiveMismatch),
        }
        let bytes = payload.len() as u64;
        st.round.max_bytes = st.round.max_bytes.max(bytes);
        st.round.max_time = st.round.max_time.max(now);
        st.round.payloads[rank] = Some(payload);
        st.round.arrived += 1;

        if st.round.arrived == self.size {
            // last arrival combines and publishes
            let round = std::mem::replace(&mut st.round, Round::fresh(self.size));
            let outcome = match round.error {
                Some(e) => Err(e),
                None => self.combine(round),
            };
            st.results.insert(gen, (outcome, self.size));
            st.generation += 1;
            self.cv.notify_all();
        } else {
            while st.generation == gen {
                self.cv.wait(&mut st);
            }
        }

        // collect this generation's result; last reader cleans up
        let entry = st.results.get_mut(&gen).expect("result published");
        let out = entry.0.clone();
        entry.1 -= 1;
        if entry.1 == 0 {
            st.results.remove(&gen);
        }
        out
    }

    fn combine(&self, round: Round) -> Result<CollectiveOutcome, MpiError> {
        let call = round.call.expect("at least one rank entered");
        let payloads: Vec<Vec<u8>> = round
            .payloads
            .into_iter()
            .map(|p| p.expect("all arrived"))
            .collect();
        let cost = collective_cost(call.kind(), self.size, round.max_bytes, &self.net);
        let data = match call {
            CollectiveCall::Barrier => Combined::None,
            CollectiveCall::Bcast { root } | CollectiveCall::Scatter { root } => {
                if root >= self.size {
                    return Err(MpiError::InvalidRoot);
                }
                Combined::Bytes(Arc::new(payloads[root].clone()))
            }
            CollectiveCall::Reduce { op, root } => {
                if root >= self.size {
                    return Err(MpiError::InvalidRoot);
                }
                Combined::Reduced(Arc::new(Self::reduce_f64(&payloads, op)?))
            }
            CollectiveCall::Allreduce { op } => {
                Combined::Reduced(Arc::new(Self::reduce_f64(&payloads, op)?))
            }
            CollectiveCall::Gather { root } => {
                if root >= self.size {
                    return Err(MpiError::InvalidRoot);
                }
                Combined::PerRank(Arc::new(payloads))
            }
            CollectiveCall::Allgather => Combined::PerRank(Arc::new(payloads)),
            CollectiveCall::Alltoall => {
                // payload of rank i is P equal chunks; receiver j gets chunk j
                let p = self.size;
                let chunk_len = payloads[0].len() / p;
                if payloads.iter().any(|pl| pl.len() != chunk_len * p) {
                    return Err(MpiError::LengthMismatch);
                }
                let mut per_rank = vec![Vec::with_capacity(chunk_len * p); p];
                for payload in &payloads {
                    for (j, chunk) in payload.chunks_exact(chunk_len.max(1)).enumerate().take(p) {
                        per_rank[j].extend_from_slice(chunk);
                    }
                }
                Combined::PerRank(Arc::new(per_rank))
            }
        };
        Ok(CollectiveOutcome {
            sync_time: round.max_time,
            cost,
            data,
        })
    }

    fn reduce_f64(payloads: &[Vec<u8>], op: ReduceOp) -> MpiResult<Vec<f64>> {
        let len = payloads[0].len();
        if !len.is_multiple_of(8) || payloads.iter().any(|p| p.len() != len) {
            return Err(MpiError::LengthMismatch);
        }
        let n = len / 8;
        let mut acc = vec![op.identity(); n];
        for payload in payloads {
            for (i, chunk) in payload.chunks_exact(8).enumerate() {
                let v = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                acc[i] = op.apply(acc[i], v);
            }
        }
        Ok(acc)
    }
}

/// Encode an `f64` slice little-endian (payload helper shared with `comm`).
pub(crate) fn f64s_to_bytes(xs: &[f64]) -> Vec<u8> {
    xs.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Decode a little-endian `f64` payload.
pub(crate) fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_all<R: Send>(
        size: usize,
        rdv: &Rendezvous,
        f: impl Fn(usize) -> R + Sync + Send,
    ) -> Vec<R> {
        thread::scope(|s| {
            let f = &f;
            let handles: Vec<_> = (0..size).map(|r| s.spawn(move || f(r))).collect();
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let _ = rdv; // keep signature symmetric
            results
        })
    }

    #[test]
    fn reduce_op_algebra() {
        assert_eq!(ReduceOp::Sum.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Prod.apply(2.0, 3.0), 6.0);
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod] {
            assert_eq!(op.apply(op.identity(), 7.0), 7.0);
        }
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let rdv = Rendezvous::new(3, TransferModel::qdr_infiniband());
        let outs = run_all(3, &rdv, |r| {
            rdv.enter(r, CollectiveCall::Barrier, Vec::new(), r as f64)
                .unwrap()
        });
        for o in &outs {
            assert_eq!(o.sync_time, 2.0); // slowest rank arrived at t=2
            assert!(o.cost > 0.0);
        }
    }

    #[test]
    fn allreduce_sums_elementwise() {
        let rdv = Rendezvous::new(4, TransferModel::qdr_infiniband());
        let outs = run_all(4, &rdv, |r| {
            let payload = f64s_to_bytes(&[r as f64, 10.0 * r as f64]);
            rdv.enter(
                r,
                CollectiveCall::Allreduce { op: ReduceOp::Sum },
                payload,
                0.0,
            )
            .unwrap()
        });
        for o in outs {
            match o.data {
                Combined::Reduced(v) => assert_eq!(*v, vec![6.0, 60.0]),
                other => panic!("wrong combined: {other:?}"),
            }
        }
    }

    #[test]
    fn bcast_delivers_roots_payload() {
        let rdv = Rendezvous::new(3, TransferModel::qdr_infiniband());
        let outs = run_all(3, &rdv, |r| {
            let payload = if r == 1 { vec![42u8; 4] } else { Vec::new() };
            rdv.enter(r, CollectiveCall::Bcast { root: 1 }, payload, 0.0)
                .unwrap()
        });
        for o in outs {
            match o.data {
                Combined::Bytes(b) => assert_eq!(*b, vec![42u8; 4]),
                other => panic!("wrong combined: {other:?}"),
            }
        }
    }

    #[test]
    fn gather_orders_by_rank() {
        let rdv = Rendezvous::new(3, TransferModel::qdr_infiniband());
        let outs = run_all(3, &rdv, |r| {
            rdv.enter(r, CollectiveCall::Gather { root: 0 }, vec![r as u8; 2], 0.0)
                .unwrap()
        });
        for o in outs {
            match o.data {
                Combined::PerRank(v) => {
                    assert_eq!(*v, vec![vec![0, 0], vec![1, 1], vec![2, 2]])
                }
                other => panic!("wrong combined: {other:?}"),
            }
        }
    }

    #[test]
    fn alltoall_transposes_chunks() {
        let rdv = Rendezvous::new(2, TransferModel::qdr_infiniband());
        let outs = run_all(2, &rdv, |r| {
            // rank r sends [r*10+0] to rank 0 and [r*10+1] to rank 1
            let payload = vec![(r * 10) as u8, (r * 10 + 1) as u8];
            rdv.enter(r, CollectiveCall::Alltoall, payload, 0.0)
                .unwrap()
        });
        match &outs[0].data {
            Combined::PerRank(v) => {
                assert_eq!(v[0], vec![0, 10]); // rank 0 receives chunk 0 of each
                assert_eq!(v[1], vec![1, 11]);
            }
            other => panic!("wrong combined: {other:?}"),
        }
    }

    #[test]
    fn mismatched_collectives_detected() {
        let rdv = Rendezvous::new(2, TransferModel::qdr_infiniband());
        let outs = run_all(2, &rdv, |r| {
            let call = if r == 0 {
                CollectiveCall::Barrier
            } else {
                CollectiveCall::Allgather
            };
            rdv.enter(r, call, Vec::new(), 0.0)
        });
        assert!(outs
            .iter()
            .all(|o| matches!(o, Err(MpiError::CollectiveMismatch))));
    }

    #[test]
    fn mismatched_reduce_lengths_detected() {
        let rdv = Rendezvous::new(2, TransferModel::qdr_infiniband());
        let outs = run_all(2, &rdv, |r| {
            let payload = f64s_to_bytes(&vec![1.0; r + 1]);
            rdv.enter(
                r,
                CollectiveCall::Allreduce { op: ReduceOp::Sum },
                payload,
                0.0,
            )
        });
        assert!(outs
            .iter()
            .all(|o| matches!(o, Err(MpiError::LengthMismatch))));
    }

    #[test]
    fn rendezvous_is_reusable_across_generations() {
        let rdv = Rendezvous::new(2, TransferModel::qdr_infiniband());
        for round in 0..50 {
            let outs = run_all(2, &rdv, |r| {
                rdv.enter(
                    r,
                    CollectiveCall::Barrier,
                    Vec::new(),
                    round as f64 + r as f64,
                )
                .unwrap()
            });
            assert_eq!(outs[0].sync_time, round as f64 + 1.0);
        }
    }

    #[test]
    fn f64_codec_roundtrips() {
        let xs = [1.5, -2.25, 0.0, f64::MAX];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&xs)), xs);
    }
}
