//! # ipm-mpi-sim
//!
//! A rank-per-thread MPI-like message-passing layer with a virtual-time
//! cost model — the substrate standing in for MPI over QDR InfiniBand in
//! this reproduction of *"Comprehensive Performance Monitoring for GPU
//! Cluster Systems"*.
//!
//! Ranks are real OS threads (so the monitoring layer's thread-safety is
//! exercised for real), but all *timing* is virtual: each rank owns a
//! [`ipm_sim_core::SimClock`], point-to-point messages carry their virtual
//! completion times, and collectives synchronize the participants' clocks
//! to the latest arrival plus an analytic collective cost
//! ([`ipm_sim_core::model::collective_cost`]). The qualitative property the
//! paper's PARATEC study depends on — `MPI_Gather` scaling *linearly* with
//! the number of ranks while tree collectives scale logarithmically — falls
//! out of those formulas.
//!
//! ```
//! use ipm_mpi_sim::{World, ReduceOp};
//!
//! let results = World::run(4, |rank| {
//!     let mine = [rank.rank() as f64];
//!     let sum = rank.allreduce_f64(&mine, ReduceOp::Sum).unwrap();
//!     sum[0]
//! });
//! assert_eq!(results, vec![6.0; 4]);
//! ```

pub mod api;
pub mod collective;
pub mod comm;
pub mod error;

pub use api::MpiApi;
pub use collective::ReduceOp;
pub use comm::{Rank, Request, World, WorldConfig};
pub use error::{MpiError, MpiResult};
