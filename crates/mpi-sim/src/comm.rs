//! Worlds, ranks, and point-to-point messaging.
//!
//! A [`World`] is `MPI_COMM_WORLD`: `size` ranks, each a [`Rank`] handle
//! owned by one OS thread, wired to per-rank mailboxes and the collective
//! rendezvous. Point-to-point sends are *eager*: the sender deposits the
//! message (stamped with its virtual arrival time) and continues after a
//! local injection cost; the receiver blocks its OS thread until a matching
//! message exists, then advances its virtual clock to
//! `max(own time, message arrival time)` — the virtual-time analogue of
//! waiting in `MPI_Recv`.
//!
//! The network model distinguishes intra-node (shared memory) from
//! inter-node (InfiniBand) pairs based on a block rank→node mapping, the
//! layout used on Dirac (consecutive ranks fill a node).

use crate::collective::{
    bytes_to_f64s, f64s_to_bytes, CollectiveCall, Combined, ReduceOp, Rendezvous,
};
use crate::error::{MpiError, MpiResult};
use ipm_sim_core::model::TransferModel;
use ipm_sim_core::SimClock;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// Wildcard source for [`Rank::recv`], like `MPI_ANY_SOURCE`.
pub const ANY_SOURCE: Option<usize> = None;

/// Wildcard tag, like `MPI_ANY_TAG`.
pub const ANY_TAG: i32 = -1;

/// Configuration of a world.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Number of ranks.
    pub size: usize,
    /// Ranks per node (block mapping); intra-node pairs use the shared
    /// memory transport. `0` means "all ranks on one node".
    pub ranks_per_node: usize,
    /// Inter-node transport.
    pub inter_node: TransferModel,
    /// Intra-node transport.
    pub intra_node: TransferModel,
    /// Host-side cost of posting a send/recv (per call).
    pub call_overhead: f64,
}

impl WorldConfig {
    /// `size` ranks on a Dirac-like cluster with `ranks_per_node` per node.
    pub fn dirac(size: usize, ranks_per_node: usize) -> Self {
        Self {
            size,
            ranks_per_node,
            inter_node: TransferModel::qdr_infiniband(),
            intra_node: TransferModel::shared_memory(),
            call_overhead: 0.4e-6,
        }
    }

    /// Everything on one node.
    pub fn single_node(size: usize) -> Self {
        Self::dirac(size, 0)
    }
}

struct Message {
    src: usize,
    tag: i32,
    data: Vec<u8>,
    /// Virtual time at which the payload is available at the receiver.
    arrival: f64,
}

#[derive(Default)]
struct Mailbox {
    queue: Mutex<Vec<Message>>,
    cv: Condvar,
}

struct WorldInner {
    config: WorldConfig,
    mailboxes: Vec<Mailbox>,
    rendezvous: Rendezvous,
}

/// A communicator spanning all ranks (MPI_COMM_WORLD).
#[derive(Clone)]
pub struct World {
    inner: Arc<WorldInner>,
}

impl World {
    /// Create a world from a configuration.
    pub fn new(config: WorldConfig) -> Self {
        assert!(config.size > 0, "world must have at least one rank");
        let mailboxes = (0..config.size).map(|_| Mailbox::default()).collect();
        let rendezvous = Rendezvous::new(config.size, config.inter_node);
        Self {
            inner: Arc::new(WorldInner {
                config,
                mailboxes,
                rendezvous,
            }),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.inner.config.size
    }

    /// Create the handle for `rank`, with a fresh clock at zero.
    pub fn rank(&self, rank: usize) -> Rank {
        assert!(rank < self.size());
        Rank {
            world: self.inner.clone(),
            rank,
            clock: SimClock::new(),
        }
    }

    /// Create the handle for `rank` driven by an existing clock (used when
    /// the rank also owns a GPU context on the same clock).
    pub fn rank_with_clock(&self, rank: usize, clock: SimClock) -> Rank {
        assert!(rank < self.size());
        Rank {
            world: self.inner.clone(),
            rank,
            clock,
        }
    }

    /// Spawn `size` OS threads, one per rank, run `f` on each, and return
    /// the per-rank results in rank order. The standard harness for tests
    /// and pure-MPI workloads.
    pub fn run<R: Send>(size: usize, f: impl Fn(Rank) -> R + Send + Sync) -> Vec<R> {
        Self::run_with_config(WorldConfig::single_node(size), f)
    }

    /// [`World::run`] with an explicit configuration.
    pub fn run_with_config<R: Send>(
        config: WorldConfig,
        f: impl Fn(Rank) -> R + Send + Sync,
    ) -> Vec<R> {
        let world = World::new(config);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..world.size())
                .map(|r| {
                    let rank = world.rank(r);
                    let f = &f;
                    s.spawn(move || f(rank))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

/// What completing one request yields: `Some((source, payload))` for
/// receives, `None` for sends.
pub type WaitOutcome = Option<(usize, Vec<u8>)>;

/// A pending nonblocking operation (`MPI_Isend` / `MPI_Irecv`).
#[derive(Debug)]
pub enum Request {
    /// Nonblocking send: completes locally at the given virtual time.
    Send { complete_at: f64 },
    /// Nonblocking receive: matched at [`Rank::wait`].
    Recv { src: Option<usize>, tag: i32 },
    /// Already waited on.
    Done,
}

/// One rank's handle onto the world: the MPI API surface.
pub struct Rank {
    world: Arc<WorldInner>,
    rank: usize,
    clock: SimClock,
}

impl Rank {
    /// This rank's id (`MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.world.config.size
    }

    /// The rank's virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// `MPI_Wtime`.
    pub fn wtime(&self) -> f64 {
        self.clock.now()
    }

    /// The node this rank lives on under the block mapping.
    pub fn node(&self) -> usize {
        self.node_of(self.rank)
    }

    fn node_of(&self, rank: usize) -> usize {
        rank.checked_div(self.world.config.ranks_per_node)
            .unwrap_or(0)
    }

    fn link_to(&self, dest: usize) -> &TransferModel {
        if self.node_of(dest) == self.node() {
            &self.world.config.intra_node
        } else {
            &self.world.config.inter_node
        }
    }

    fn check_rank(&self, r: usize) -> MpiResult<()> {
        if r < self.size() {
            Ok(())
        } else {
            Err(MpiError::RankOutOfRange)
        }
    }

    // ------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------

    /// Blocking standard-mode send (`MPI_Send`, eager protocol).
    pub fn send(&self, dest: usize, tag: i32, data: &[u8]) -> MpiResult<()> {
        self.isend(dest, tag, data).map(|_| ())
    }

    /// Nonblocking send (`MPI_Isend`): the message is injected immediately,
    /// the returned request completes when the local NIC would be done.
    pub fn isend(&self, dest: usize, tag: i32, data: &[u8]) -> MpiResult<Request> {
        self.check_rank(dest)?;
        let cfg = &self.world.config;
        self.clock.advance(cfg.call_overhead);
        let link = self.link_to(dest);
        let now = self.clock.now();
        let arrival = now + link.time(data.len() as u64);
        // local injection: the sender is busy while the eager buffer copy
        // runs (size-proportional at memory speed, bounded by the link)
        let inject = cfg.call_overhead + data.len() as f64 / 6.0e9;
        let mailbox = &self.world.mailboxes[dest];
        mailbox.queue.lock().push(Message {
            src: self.rank,
            tag,
            data: data.to_vec(),
            arrival,
        });
        mailbox.cv.notify_all();
        Ok(Request::Send {
            complete_at: now + inject,
        })
    }

    /// Blocking receive (`MPI_Recv`). `src = None` is `MPI_ANY_SOURCE`;
    /// `tag = ANY_TAG` matches any tag. Returns `(source, payload)`.
    pub fn recv(&self, src: Option<usize>, tag: i32) -> MpiResult<(usize, Vec<u8>)> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        self.world.config.call_overhead.pipe_advance(&self.clock);
        let mailbox = &self.world.mailboxes[self.rank];
        let mut queue = mailbox.queue.lock();
        loop {
            let matched = queue
                .iter()
                .position(|m| src.is_none_or(|s| s == m.src) && (tag == ANY_TAG || tag == m.tag));
            if let Some(idx) = matched {
                let msg = queue.remove(idx);
                drop(queue);
                // virtual wait for the payload to arrive
                self.clock.advance_to(msg.arrival);
                return Ok((msg.src, msg.data));
            }
            mailbox.cv.wait(&mut queue);
        }
    }

    /// Nonblocking receive (`MPI_Irecv`): matching deferred to [`Rank::wait`].
    pub fn irecv(&self, src: Option<usize>, tag: i32) -> MpiResult<Request> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        self.clock.advance(self.world.config.call_overhead);
        Ok(Request::Recv { src, tag })
    }

    /// `MPI_Wait`. For receives, returns `Some((source, payload))`.
    pub fn wait(&self, req: &mut Request) -> MpiResult<Option<(usize, Vec<u8>)>> {
        match std::mem::replace(req, Request::Done) {
            Request::Send { complete_at } => {
                self.clock.advance_to(complete_at);
                Ok(None)
            }
            Request::Recv { src, tag } => self.recv(src, tag).map(Some),
            Request::Done => Err(MpiError::StaleRequest),
        }
    }

    /// `MPI_Waitall` over a slice of requests; receive payloads are
    /// returned in request order.
    pub fn waitall(&self, reqs: &mut [Request]) -> MpiResult<Vec<WaitOutcome>> {
        reqs.iter_mut().map(|r| self.wait(r)).collect()
    }

    // ------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------

    fn collect(&self, call: CollectiveCall, payload: Vec<u8>) -> MpiResult<Combined> {
        self.clock.advance(self.world.config.call_overhead);
        let outcome = self
            .world
            .rendezvous
            .enter(self.rank, call, payload, self.clock.now())?;
        self.clock.advance_to(outcome.sync_time + outcome.cost);
        Ok(outcome.data)
    }

    /// `MPI_Barrier`.
    pub fn barrier(&self) -> MpiResult<()> {
        self.collect(CollectiveCall::Barrier, Vec::new())
            .map(|_| ())
    }

    /// `MPI_Bcast`: returns the root's buffer on every rank.
    pub fn bcast(&self, root: usize, data: Vec<u8>) -> MpiResult<Vec<u8>> {
        self.check_rank(root)?;
        match self.collect(CollectiveCall::Bcast { root }, data)? {
            Combined::Bytes(b) => Ok((*b).clone()),
            _ => unreachable!("bcast produces Bytes"),
        }
    }

    /// `MPI_Reduce` over `f64`: the root gets the reduction, others `None`.
    pub fn reduce_f64(
        &self,
        root: usize,
        data: &[f64],
        op: ReduceOp,
    ) -> MpiResult<Option<Vec<f64>>> {
        self.check_rank(root)?;
        match self.collect(CollectiveCall::Reduce { root, op }, f64s_to_bytes(data))? {
            Combined::Reduced(v) => Ok(if self.rank == root {
                Some((*v).clone())
            } else {
                None
            }),
            _ => unreachable!("reduce produces Reduced"),
        }
    }

    /// `MPI_Allreduce` over `f64`.
    pub fn allreduce_f64(&self, data: &[f64], op: ReduceOp) -> MpiResult<Vec<f64>> {
        match self.collect(CollectiveCall::Allreduce { op }, f64s_to_bytes(data))? {
            Combined::Reduced(v) => Ok((*v).clone()),
            _ => unreachable!("allreduce produces Reduced"),
        }
    }

    /// `MPI_Gather`: the root gets every rank's buffer in rank order.
    pub fn gather(&self, root: usize, data: &[u8]) -> MpiResult<Option<Vec<Vec<u8>>>> {
        self.check_rank(root)?;
        match self.collect(CollectiveCall::Gather { root }, data.to_vec())? {
            Combined::PerRank(v) => Ok(if self.rank == root {
                Some((*v).clone())
            } else {
                None
            }),
            _ => unreachable!("gather produces PerRank"),
        }
    }

    /// `MPI_Allgather`.
    pub fn allgather(&self, data: &[u8]) -> MpiResult<Vec<Vec<u8>>> {
        match self.collect(CollectiveCall::Allgather, data.to_vec())? {
            Combined::PerRank(v) => Ok((*v).clone()),
            _ => unreachable!("allgather produces PerRank"),
        }
    }

    /// `MPI_Alltoall`: `data` is `size` equal chunks concatenated; the
    /// result is the transposed concatenation this rank receives.
    pub fn alltoall(&self, data: &[u8]) -> MpiResult<Vec<u8>> {
        match self.collect(CollectiveCall::Alltoall, data.to_vec())? {
            Combined::PerRank(v) => Ok(v[self.rank].clone()),
            _ => unreachable!("alltoall produces PerRank"),
        }
    }

    /// Typed allreduce helper decoding to `f64`s (payload round-trip used
    /// by several applications).
    pub fn allreduce_bytes_as_f64(&self, bytes: &[u8], op: ReduceOp) -> MpiResult<Vec<f64>> {
        self.allreduce_f64(&bytes_to_f64s(bytes), op)
    }

    /// Advance this rank's clock by `dt` of local computation. Not an MPI
    /// call — the harness hook applications use to model CPU work.
    pub fn compute(&self, dt: f64) {
        self.clock.advance(dt);
    }
}

/// Tiny extension to keep `recv` tidy: advance a clock by a cost.
trait PipeAdvance {
    fn pipe_advance(self, clock: &SimClock);
}

impl PipeAdvance for f64 {
    fn pipe_advance(self, clock: &SimClock) {
        clock.advance(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_and_size_are_reported() {
        let outs = World::run(3, |rank| (rank.rank(), rank.size()));
        assert_eq!(outs, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn send_recv_roundtrip() {
        let outs = World::run(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, 7, b"hello").unwrap();
                Vec::new()
            } else {
                let (src, data) = rank.recv(Some(0), 7).unwrap();
                assert_eq!(src, 0);
                data
            }
        });
        assert_eq!(outs[1], b"hello");
    }

    #[test]
    fn recv_advances_clock_past_arrival() {
        let outs = World::run(2, |rank| {
            if rank.rank() == 0 {
                rank.compute(1.0); // sender is slow
                rank.send(1, 0, &vec![0u8; 1024]).unwrap();
                rank.wtime()
            } else {
                let (_, _) = rank.recv(Some(0), 0).unwrap();
                rank.wtime()
            }
        });
        // receiver waited for the message sent at t≈1.0
        assert!(outs[1] > 1.0, "receiver time {}", outs[1]);
    }

    #[test]
    fn any_source_and_any_tag_match() {
        let outs = World::run(3, |rank| match rank.rank() {
            0 => {
                let (s1, _) = rank.recv(ANY_SOURCE, ANY_TAG).unwrap();
                let (s2, _) = rank.recv(ANY_SOURCE, ANY_TAG).unwrap();
                let mut got = [s1, s2];
                got.sort();
                got.to_vec()
            }
            r => {
                rank.send(0, r as i32, &[r as u8]).unwrap();
                Vec::new()
            }
        });
        assert_eq!(outs[0], vec![1, 2]);
    }

    #[test]
    fn tag_matching_skips_non_matching() {
        let outs = World::run(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, 5, b"five").unwrap();
                rank.send(1, 9, b"nine").unwrap();
                Vec::new()
            } else {
                // request tag 9 first even though tag 5 arrives first
                let (_, nine) = rank.recv(Some(0), 9).unwrap();
                let (_, five) = rank.recv(Some(0), 5).unwrap();
                assert_eq!(five, b"five");
                nine
            }
        });
        assert_eq!(outs[1], b"nine");
    }

    #[test]
    fn isend_wait_completes_locally() {
        World::run(2, |rank| {
            if rank.rank() == 0 {
                let mut req = rank.isend(1, 0, &vec![1u8; 4096]).unwrap();
                assert!(rank.wait(&mut req).unwrap().is_none());
                // waiting twice is an error
                assert_eq!(rank.wait(&mut req).unwrap_err(), MpiError::StaleRequest);
            } else {
                rank.recv(Some(0), 0).unwrap();
            }
        });
    }

    #[test]
    fn irecv_wait_returns_payload() {
        let outs = World::run(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, 3, b"abc").unwrap();
                None
            } else {
                let mut req = rank.irecv(Some(0), 3).unwrap();
                rank.wait(&mut req).unwrap()
            }
        });
        assert_eq!(outs[1].as_ref().unwrap().1, b"abc");
    }

    #[test]
    fn barrier_aligns_wtime() {
        let outs = World::run(4, |rank| {
            rank.compute(rank.rank() as f64);
            rank.barrier().unwrap();
            rank.wtime()
        });
        let t0 = outs[0];
        assert!(t0 >= 3.0);
        for t in outs {
            assert!((t - t0).abs() < 1e-9);
        }
    }

    #[test]
    fn reduce_only_root_gets_result() {
        let outs = World::run(3, |rank| {
            rank.reduce_f64(2, &[rank.rank() as f64 + 1.0], ReduceOp::Prod)
                .unwrap()
        });
        assert_eq!(outs[0], None);
        assert_eq!(outs[1], None);
        assert_eq!(outs[2], Some(vec![6.0]));
    }

    #[test]
    fn allgather_returns_all() {
        let outs = World::run(3, |rank| rank.allgather(&[rank.rank() as u8]).unwrap());
        for o in outs {
            assert_eq!(o, vec![vec![0], vec![1], vec![2]]);
        }
    }

    #[test]
    fn alltoall_each_rank_gets_its_column() {
        let outs = World::run(2, |rank| {
            let r = rank.rank() as u8;
            rank.alltoall(&[r * 10, r * 10 + 1]).unwrap()
        });
        assert_eq!(outs[0], vec![0, 10]);
        assert_eq!(outs[1], vec![1, 11]);
    }

    #[test]
    fn inter_node_is_slower_than_intra_node() {
        let time_for = |ranks_per_node: usize| {
            let cfg = WorldConfig::dirac(2, ranks_per_node);
            let outs = World::run_with_config(cfg, |rank| {
                if rank.rank() == 0 {
                    rank.send(1, 0, &vec![0u8; 1 << 20]).unwrap();
                    0.0
                } else {
                    rank.recv(Some(0), 0).unwrap();
                    rank.wtime()
                }
            });
            outs[1]
        };
        let same_node = time_for(2); // both ranks on node 0
        let cross_node = time_for(1); // one rank per node
        assert!(
            cross_node > same_node,
            "cross {cross_node} vs same {same_node}"
        );
    }

    #[test]
    fn invalid_ranks_are_rejected() {
        World::run(2, |rank| {
            assert_eq!(rank.send(5, 0, b"x").unwrap_err(), MpiError::RankOutOfRange);
            assert_eq!(
                rank.bcast(9, Vec::new()).unwrap_err(),
                MpiError::RankOutOfRange
            );
        });
    }

    #[test]
    fn wtime_starts_at_zero_and_grows() {
        World::run(1, |rank| {
            assert_eq!(rank.wtime(), 0.0);
            rank.compute(2.5);
            assert!((rank.wtime() - 2.5).abs() < 1e-12);
        });
    }
}
