//! The interposable MPI API surface.
//!
//! Like [`ipm_gpu_sim::api::CudaApi`] for CUDA, [`MpiApi`] is the seam where
//! IPM interposes on MPI (the PMPI profiling interface in the real tool).
//! Applications program against this trait; installing `ipm-core`'s
//! monitoring wrapper instead of the bare [`Rank`] requires no application
//! changes.
//!
//! [`ipm_gpu_sim::api::CudaApi`]: https://docs.rs/ipm-gpu-sim

use crate::collective::ReduceOp;
use crate::comm::{Rank, Request};
use crate::error::MpiResult;

/// The MPI calls the paper's applications exercise, object-safe.
pub trait MpiApi: Send + Sync {
    /// `MPI_Comm_rank`.
    fn mpi_comm_rank(&self) -> usize;
    /// `MPI_Comm_size`.
    fn mpi_comm_size(&self) -> usize;
    /// `MPI_Send`.
    fn mpi_send(&self, dest: usize, tag: i32, data: &[u8]) -> MpiResult<()>;
    /// `MPI_Recv`; returns `(source, payload)`.
    fn mpi_recv(&self, src: Option<usize>, tag: i32) -> MpiResult<(usize, Vec<u8>)>;
    /// `MPI_Isend`.
    fn mpi_isend(&self, dest: usize, tag: i32, data: &[u8]) -> MpiResult<Request>;
    /// `MPI_Irecv`.
    fn mpi_irecv(&self, src: Option<usize>, tag: i32) -> MpiResult<Request>;
    /// `MPI_Wait`.
    fn mpi_wait(&self, req: &mut Request) -> MpiResult<Option<(usize, Vec<u8>)>>;
    /// `MPI_Barrier`.
    fn mpi_barrier(&self) -> MpiResult<()>;
    /// `MPI_Bcast`.
    fn mpi_bcast(&self, root: usize, data: Vec<u8>) -> MpiResult<Vec<u8>>;
    /// `MPI_Reduce` (f64).
    fn mpi_reduce_f64(
        &self,
        root: usize,
        data: &[f64],
        op: ReduceOp,
    ) -> MpiResult<Option<Vec<f64>>>;
    /// `MPI_Allreduce` (f64).
    fn mpi_allreduce_f64(&self, data: &[f64], op: ReduceOp) -> MpiResult<Vec<f64>>;
    /// `MPI_Gather`.
    fn mpi_gather(&self, root: usize, data: &[u8]) -> MpiResult<Option<Vec<Vec<u8>>>>;
    /// `MPI_Allgather`.
    fn mpi_allgather(&self, data: &[u8]) -> MpiResult<Vec<Vec<u8>>>;
    /// `MPI_Alltoall`.
    fn mpi_alltoall(&self, data: &[u8]) -> MpiResult<Vec<u8>>;
    /// `MPI_Wtime`.
    fn mpi_wtime(&self) -> f64;
}

impl MpiApi for Rank {
    fn mpi_comm_rank(&self) -> usize {
        self.rank()
    }
    fn mpi_comm_size(&self) -> usize {
        self.size()
    }
    fn mpi_send(&self, dest: usize, tag: i32, data: &[u8]) -> MpiResult<()> {
        self.send(dest, tag, data)
    }
    fn mpi_recv(&self, src: Option<usize>, tag: i32) -> MpiResult<(usize, Vec<u8>)> {
        self.recv(src, tag)
    }
    fn mpi_isend(&self, dest: usize, tag: i32, data: &[u8]) -> MpiResult<Request> {
        self.isend(dest, tag, data)
    }
    fn mpi_irecv(&self, src: Option<usize>, tag: i32) -> MpiResult<Request> {
        self.irecv(src, tag)
    }
    fn mpi_wait(&self, req: &mut Request) -> MpiResult<Option<(usize, Vec<u8>)>> {
        self.wait(req)
    }
    fn mpi_barrier(&self) -> MpiResult<()> {
        self.barrier()
    }
    fn mpi_bcast(&self, root: usize, data: Vec<u8>) -> MpiResult<Vec<u8>> {
        self.bcast(root, data)
    }
    fn mpi_reduce_f64(
        &self,
        root: usize,
        data: &[f64],
        op: ReduceOp,
    ) -> MpiResult<Option<Vec<f64>>> {
        self.reduce_f64(root, data, op)
    }
    fn mpi_allreduce_f64(&self, data: &[f64], op: ReduceOp) -> MpiResult<Vec<f64>> {
        self.allreduce_f64(data, op)
    }
    fn mpi_gather(&self, root: usize, data: &[u8]) -> MpiResult<Option<Vec<Vec<u8>>>> {
        self.gather(root, data)
    }
    fn mpi_allgather(&self, data: &[u8]) -> MpiResult<Vec<Vec<u8>>> {
        self.allgather(data)
    }
    fn mpi_alltoall(&self, data: &[u8]) -> MpiResult<Vec<u8>> {
        self.alltoall(data)
    }
    fn mpi_wtime(&self) -> f64 {
        self.wtime()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::World;

    #[test]
    fn trait_object_dispatch() {
        let outs = World::run(2, |rank| {
            let api: &dyn MpiApi = &rank;
            if api.mpi_comm_rank() == 0 {
                api.mpi_send(1, 0, b"via trait").unwrap();
                Vec::new()
            } else {
                api.mpi_recv(Some(0), 0).unwrap().1
            }
        });
        assert_eq!(outs[1], b"via trait");
    }

    #[test]
    fn collectives_via_trait() {
        let outs = World::run(3, |rank| {
            let api: &dyn MpiApi = &rank;
            api.mpi_allreduce_f64(&[1.0], ReduceOp::Sum).unwrap()[0]
        });
        assert_eq!(outs, vec![3.0, 3.0, 3.0]);
    }
}
