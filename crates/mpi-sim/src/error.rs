//! Error type for the MPI-like layer.

use std::fmt;

/// Result alias for MPI operations.
pub type MpiResult<T> = Result<T, MpiError>;

/// MPI-layer failures. Real MPI aborts on most of these; we return them so
/// tests can assert on misuse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MpiError {
    /// Destination or source rank outside `0..size`.
    RankOutOfRange,
    /// Root rank outside `0..size`.
    InvalidRoot,
    /// Ranks entered different collectives in the same round (matched by
    /// arrival generation) — a deadlock in real MPI, detected here.
    CollectiveMismatch,
    /// Contribution lengths disagree where the operation requires uniform
    /// sizes (e.g. `MPI_Allreduce` element counts).
    LengthMismatch,
    /// A request was waited on twice.
    StaleRequest,
}

impl MpiError {
    /// Human-readable description.
    pub fn as_str(self) -> &'static str {
        match self {
            MpiError::RankOutOfRange => "rank out of range",
            MpiError::InvalidRoot => "invalid root rank",
            MpiError::CollectiveMismatch => "mismatched collective operations",
            MpiError::LengthMismatch => "mismatched buffer lengths",
            MpiError::StaleRequest => "request already completed",
        }
    }
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::error::Error for MpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(MpiError::RankOutOfRange.to_string(), "rank out of range");
        assert_ne!(
            MpiError::InvalidRoot.as_str(),
            MpiError::LengthMismatch.as_str()
        );
    }
}
