//! Simulator configuration.
//!
//! A [`GpuConfig`] fixes the performance model of one simulated device and
//! the behavioral switches that the paper's experiments toggle
//! (`CUDA_LAUNCH_BLOCKING`, the built-in profiler, event-record overhead).
//! The default is calibrated to the paper's testbed: a Tesla C2050 behind
//! PCIe gen2 in a Dirac node, running CUDA 3.1.

use ipm_sim_core::model::{GpuComputeModel, TransferModel};
use ipm_sim_core::noise::NoiseModel;

/// Configuration of a simulated GPU device and its host link.
#[derive(Clone, Debug)]
pub struct GpuConfig {
    /// Compute roofline of the device.
    pub compute: GpuComputeModel,
    /// Host→device transfer model (pageable host memory).
    pub h2d: TransferModel,
    /// Device→host transfer model (pageable host memory).
    pub d2h: TransferModel,
    /// Device→device copy model.
    pub d2d: TransferModel,
    /// Pinned-memory transfer model (both directions).
    pub pinned: TransferModel,
    /// One-time context/runtime initialization charged to the first API
    /// call of each context (seconds). Fig. 4 of the paper shows this cost
    /// surfacing inside the first `cudaMalloc`.
    pub context_init: f64,
    /// Host-side cost of an asynchronous kernel launch (driver call,
    /// command buffer write).
    pub launch_overhead: f64,
    /// Host-side cost of a trivial API call (`cudaSetupArgument`,
    /// `cudaConfigureCall`, attribute queries, ...).
    pub api_overhead: f64,
    /// Host-side cost of `cudaMalloc`/`cudaFree` after initialization.
    pub alloc_overhead: f64,
    /// Bounds of the device-side duration of an event-record operation.
    /// IPM's event-bracketing kernel timing over-reports by roughly one of
    /// these per invocation — the paper's Table I shows 2–19 µs.
    pub event_record_overhead: (f64, f64),
    /// Device memory capacity in bytes (3 GiB on the C2050).
    pub device_memory: u64,
    /// Maximum concurrently executing kernels (16 under CUDA 3.1,
    /// Programming Guide §3.2.7.3 — quoted in the paper).
    pub max_concurrent_kernels: usize,
    /// When true, kernel launches block like `CUDA_LAUNCH_BLOCKING=1`.
    pub launch_blocking: bool,
    /// When true, the device logs a ground-truth execution trace, like
    /// `CUDA_PROFILE=1` does for the real runtime (the Table I comparator).
    pub profile: bool,
    /// When true, accumulate per-kernel hardware counters (flops, DRAM
    /// traffic, threads) — the paper's §VI future-work interface, which the
    /// simulated device can expose.
    pub counters: bool,
    /// Per-event jitter / run-level noise model.
    pub noise: NoiseModel,
    /// RNG seed for jitter draws (per-runtime streams are forked from it).
    pub seed: u64,
    /// Physical backing bytes per device allocation (see
    /// `DeviceHeap::with_fidelity`): capacity/timing use full logical
    /// sizes, but only this many bytes are really stored per allocation.
    /// Keeps paper-scale workloads (tens of MB per transfer, 1e5+ calls)
    /// from swamping wall time; numerics-verifying tests stay below it.
    pub data_fidelity_limit: usize,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::dirac_node()
    }
}

impl GpuConfig {
    /// A Dirac-node device: Tesla C2050, PCIe gen2, CUDA 3.1 behavior.
    pub fn dirac_node() -> Self {
        Self {
            compute: GpuComputeModel::tesla_c2050(),
            h2d: TransferModel::pcie_h2d_pageable(),
            d2h: TransferModel::pcie_d2h_pageable(),
            d2d: TransferModel::device_local(),
            pinned: TransferModel::pcie_pinned(),
            context_init: 1.29,
            launch_overhead: 5.0e-6,
            api_overhead: 0.3e-6,
            alloc_overhead: 60.0e-6,
            event_record_overhead: (2.0e-6, 15.0e-6),
            device_memory: 3 * 1024 * 1024 * 1024,
            max_concurrent_kernels: 16,
            launch_blocking: false,
            profile: false,
            counters: false,
            noise: NoiseModel::QUIET,
            seed: 0xD1AC_2011,
            data_fidelity_limit: 16 << 20,
        }
    }

    /// Same hardware, with the ground-truth profiler enabled
    /// (`CUDA_PROFILE=1`).
    pub fn with_profiler(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Same hardware, with per-kernel hardware counters enabled.
    pub fn with_counters(mut self) -> Self {
        self.counters = true;
        self
    }

    /// Same hardware with `CUDA_LAUNCH_BLOCKING=1` semantics.
    pub fn with_launch_blocking(mut self) -> Self {
        self.launch_blocking = true;
        self
    }

    /// Replace the noise model (e.g. [`NoiseModel::DIRAC`] for ensemble
    /// studies).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Replace the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the context-initialization cost.
    pub fn with_context_init(mut self, secs: f64) -> Self {
        self.context_init = secs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_dirac() {
        let c = GpuConfig::default();
        assert_eq!(c.max_concurrent_kernels, 16);
        assert_eq!(c.device_memory, 3 * 1024 * 1024 * 1024);
        assert!(!c.profile);
        assert!(!c.launch_blocking);
    }

    #[test]
    fn builder_toggles() {
        let c = GpuConfig::dirac_node()
            .with_profiler()
            .with_launch_blocking()
            .with_seed(7);
        assert!(c.profile);
        assert!(c.launch_blocking);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn event_overhead_bounds_ordered() {
        let c = GpuConfig::default();
        assert!(c.event_record_overhead.0 <= c.event_record_overhead.1);
        assert!(c.event_record_overhead.0 > 0.0);
    }
}
