//! Shared device state.
//!
//! One [`Device`] models one physical GPU. Several contexts (MPI ranks, in
//! the paper's shared-GPU configurations) may attach to the same device; the
//! device then owns the state they contend for:
//!
//! * the **device heap** (real backing bytes, capacity-limited),
//! * the **compute timeline** used to serialize kernels from *different*
//!   contexts (Fermi-era GPUs time-slice contexts; concurrent kernels are
//!   only possible within one context),
//! * the **device symbol table** for `cudaMemcpyToSymbol`.
//!
//! Per-context state (streams, events, launch-config stack) lives in
//! [`crate::runtime::GpuRuntime`].

use crate::config::GpuConfig;
use crate::memory::{DeviceHeap, DevicePtr};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Identifier of a CUDA stream within one context. Stream 0 is the default
/// stream with legacy synchronization semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

impl StreamId {
    /// The default (legacy, synchronizing) stream.
    pub const DEFAULT: StreamId = StreamId(0);
}

/// Identifier of a CUDA event within one context.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventId(pub u64);

/// Static properties reported by `cudaGetDeviceProperties`.
#[derive(Clone, Debug)]
pub struct DeviceProperties {
    pub name: String,
    pub total_global_mem: u64,
    pub multi_processor_count: u32,
    pub clock_rate_khz: u32,
    pub compute_capability: (u32, u32),
    pub concurrent_kernels: bool,
    pub ecc_enabled: bool,
}

impl DeviceProperties {
    /// The Dirac GPU: NVIDIA Tesla C2050 (Fermi, CC 2.0, ECC on).
    pub fn tesla_c2050(memory: u64) -> Self {
        Self {
            name: "Tesla C2050".to_owned(),
            total_global_mem: memory,
            multi_processor_count: 14,
            clock_rate_khz: 1_147_000,
            compute_capability: (2, 0),
            concurrent_kernels: true,
            ecc_enabled: true,
        }
    }
}

/// One physical GPU, shareable between contexts (rank threads).
pub struct Device {
    config: GpuConfig,
    props: DeviceProperties,
    heap: Mutex<DeviceHeap>,
    /// Earliest virtual time at which the next cross-context kernel may
    /// start. Only consulted when more than one context is attached.
    compute_free: Mutex<f64>,
    /// Device symbols (`__device__`/`__constant__` variables) addressable
    /// by name through `cudaMemcpyToSymbol`.
    symbols: Mutex<HashMap<String, DevicePtr>>,
    contexts: AtomicUsize,
    /// Contexts expected to attach (set by cluster harnesses up-front so
    /// cross-context serialization is in force from the first kernel,
    /// independent of attach order).
    expected_contexts: AtomicUsize,
}

impl Device {
    /// Create a device from a configuration.
    pub fn new(config: GpuConfig) -> Arc<Self> {
        let props = DeviceProperties::tesla_c2050(config.device_memory);
        Arc::new(Self {
            heap: Mutex::new(DeviceHeap::with_fidelity(
                config.device_memory,
                config.data_fidelity_limit,
            )),
            compute_free: Mutex::new(0.0),
            symbols: Mutex::new(HashMap::new()),
            contexts: AtomicUsize::new(0),
            expected_contexts: AtomicUsize::new(1),
            props,
            config,
        })
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Static device properties.
    pub fn properties(&self) -> &DeviceProperties {
        &self.props
    }

    /// Run `f` with the device heap locked.
    pub fn with_heap<R>(&self, f: impl FnOnce(&mut DeviceHeap) -> R) -> R {
        f(&mut self.heap.lock())
    }

    /// Register a context attaching to this device; returns the number of
    /// attached contexts afterwards.
    pub(crate) fn attach_context(&self) -> usize {
        self.contexts.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Number of contexts currently attached (ranks sharing this GPU).
    pub fn attached_contexts(&self) -> usize {
        self.contexts.load(Ordering::Acquire)
    }

    /// Declare how many contexts will share this device (cluster harness:
    /// ranks per node). Serialization applies as soon as more than one is
    /// expected, regardless of attach order.
    pub fn set_expected_contexts(&self, n: usize) {
        self.expected_contexts.store(n.max(1), Ordering::Release);
    }

    fn sharing(&self) -> bool {
        self.attached_contexts()
            .max(self.expected_contexts.load(Ordering::Acquire))
            > 1
    }

    /// Reserve the cross-context compute timeline for a kernel proposing to
    /// start at `proposed` and run for `duration`. Returns the actual start
    /// time. When only one context is attached this is a no-op (within-
    /// context concurrency is handled by the runtime's concurrency window).
    pub(crate) fn reserve_compute(&self, proposed: f64, duration: f64) -> f64 {
        if !self.sharing() {
            return proposed;
        }
        let mut free = self.compute_free.lock();
        let start = proposed.max(*free);
        *free = start + duration;
        start
    }

    /// Resolve (allocating on first use) the device symbol `name` with the
    /// given size. Subsequent lookups must use a consistent size.
    pub fn symbol(&self, name: &str, size: usize) -> crate::error::CudaResult<DevicePtr> {
        let mut symbols = self.symbols.lock();
        if let Some(&ptr) = symbols.get(name) {
            return Ok(ptr);
        }
        let ptr = self.heap.lock().malloc(size)?;
        symbols.insert(name.to_owned(), ptr);
        Ok(ptr)
    }

    /// Bytes of device memory currently allocated.
    pub fn memory_used(&self) -> u64 {
        self.heap.lock().used()
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("name", &self.props.name)
            .field("contexts", &self.attached_contexts())
            .field("memory_used", &self.memory_used())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties_are_fermi() {
        let d = Device::new(GpuConfig::default());
        let p = d.properties();
        assert_eq!(p.name, "Tesla C2050");
        assert_eq!(p.compute_capability, (2, 0));
        assert!(p.concurrent_kernels);
    }

    #[test]
    fn single_context_reserve_is_passthrough() {
        let d = Device::new(GpuConfig::default());
        d.attach_context();
        assert_eq!(d.reserve_compute(5.0, 1.0), 5.0);
        assert_eq!(d.reserve_compute(5.0, 1.0), 5.0); // no serialization
    }

    #[test]
    fn multi_context_reserve_serializes() {
        let d = Device::new(GpuConfig::default());
        d.attach_context();
        d.attach_context();
        let s1 = d.reserve_compute(1.0, 2.0);
        let s2 = d.reserve_compute(1.0, 2.0);
        assert_eq!(s1, 1.0);
        assert_eq!(s2, 3.0); // must wait for the first kernel
        let s3 = d.reserve_compute(10.0, 1.0); // idle gap: starts on time
        assert_eq!(s3, 10.0);
    }

    #[test]
    fn symbols_are_stable_and_allocated_once() {
        let d = Device::new(GpuConfig::default());
        let a = d.symbol("c_sim_params", 256).unwrap();
        let b = d.symbol("c_sim_params", 256).unwrap();
        assert_eq!(a, b);
        assert_eq!(d.heap.lock().live_allocations(), 1);
        let c = d.symbol("c_other", 64).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn heap_capacity_shared_between_contexts() {
        let cfg = GpuConfig {
            device_memory: 100,
            ..GpuConfig::default()
        };
        let d = Device::new(cfg);
        let p = d.with_heap(|h| h.malloc(80)).unwrap();
        assert!(d.with_heap(|h| h.malloc(40)).is_err());
        d.with_heap(|h| h.free(p)).unwrap();
        assert!(d.with_heap(|h| h.malloc(40)).is_ok());
    }
}
