//! Device memory: allocations with real backing storage.
//!
//! Device allocations hold actual bytes so that kernels and library calls
//! can compute real results (the `square` example of Fig. 3 really squares
//! its array; `numlib`'s GEMM really multiplies matrices). Only *durations*
//! come from the performance model.
//!
//! A [`DevicePtr`] is `(allocation id, byte offset)` — pointer arithmetic
//! inside an allocation is supported (`offset`), crossing allocations is
//! not, mirroring how real device pointers are used in practice.

use crate::error::{CudaError, CudaResult};
use std::collections::HashMap;

/// An opaque device pointer: an allocation handle plus a byte offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DevicePtr {
    pub(crate) alloc: u64,
    pub(crate) offset: usize,
}

impl DevicePtr {
    /// A null device pointer (never valid to dereference).
    pub const NULL: DevicePtr = DevicePtr {
        alloc: 0,
        offset: 0,
    };

    /// Pointer `bytes` past this one, still within the same allocation.
    pub fn byte_add(self, bytes: usize) -> DevicePtr {
        DevicePtr {
            alloc: self.alloc,
            offset: self.offset + bytes,
        }
    }

    /// True for [`DevicePtr::NULL`].
    pub fn is_null(self) -> bool {
        self.alloc == 0
    }
}

/// One device allocation: full logical extent for bounds/capacity
/// accounting, with physical backing truncated at the heap's fidelity
/// limit (see [`DeviceHeap`] docs).
#[derive(Debug)]
struct Alloc {
    logical: usize,
    data: Vec<u8>,
}

/// The memory of one device: allocation table plus capacity accounting.
///
/// ## Data fidelity limit
///
/// Paper-scale workloads move tens of megabytes per call, hundreds of
/// thousands of times; physically copying that data would dominate wall
/// time without changing any *observable timing*. The heap therefore backs
/// each allocation with at most `fidelity_limit` real bytes: bounds checks
/// still use the full logical size (out-of-range accesses are caught, and
/// capacity accounting is exact), but writes beyond the backing are
/// accepted-and-dropped and reads beyond it return zeros. Workloads that
/// verify numerics keep operands below the limit (the default is generous).
#[derive(Debug)]
pub struct DeviceHeap {
    allocs: HashMap<u64, Alloc>,
    next_id: u64,
    used: u64,
    capacity: u64,
    peak: u64,
    fidelity_limit: usize,
}

impl Default for DeviceHeap {
    fn default() -> Self {
        Self::new(u64::MAX)
    }
}

impl DeviceHeap {
    /// Create a heap with `capacity` bytes of device memory and full data
    /// fidelity.
    pub fn new(capacity: u64) -> Self {
        Self::with_fidelity(capacity, usize::MAX)
    }

    /// Create a heap whose allocations are physically backed by at most
    /// `fidelity_limit` bytes each.
    pub fn with_fidelity(capacity: u64, fidelity_limit: usize) -> Self {
        Self {
            allocs: HashMap::new(),
            next_id: 1,
            used: 0,
            capacity,
            peak: 0,
            fidelity_limit,
        }
    }

    /// Allocate `size` bytes (zero-initialized, as Fermi ECC memory
    /// effectively is after `cudaMalloc` + `cudaMemset` patterns; real CUDA
    /// leaves it undefined but deterministic zero is friendlier to tests).
    pub fn malloc(&mut self, size: usize) -> CudaResult<DevicePtr> {
        if self.used + size as u64 > self.capacity {
            return Err(CudaError::MemoryAllocation);
        }
        let id = self.next_id;
        self.next_id += 1;
        let backing = size.min(self.fidelity_limit);
        self.allocs.insert(
            id,
            Alloc {
                logical: size,
                data: vec![0u8; backing],
            },
        );
        self.used += size as u64;
        self.peak = self.peak.max(self.used);
        Ok(DevicePtr {
            alloc: id,
            offset: 0,
        })
    }

    /// Free an allocation. The pointer must be the allocation base
    /// (offset 0), as with `cudaFree`.
    pub fn free(&mut self, ptr: DevicePtr) -> CudaResult<()> {
        if ptr.offset != 0 {
            return Err(CudaError::InvalidDevicePointer);
        }
        match self.allocs.remove(&ptr.alloc) {
            Some(a) => {
                self.used -= a.logical as u64;
                Ok(())
            }
            None => Err(CudaError::InvalidDevicePointer),
        }
    }

    /// Size in bytes of the allocation containing `ptr`, minus the offset.
    pub fn remaining_len(&self, ptr: DevicePtr) -> CudaResult<usize> {
        let a = self
            .allocs
            .get(&ptr.alloc)
            .ok_or(CudaError::InvalidDevicePointer)?;
        a.logical
            .checked_sub(ptr.offset)
            .ok_or(CudaError::InvalidValue)
    }

    /// Copy host bytes into device memory. Bounds-checked against the full
    /// logical allocation; the physical copy stops at the backing store.
    pub fn write(&mut self, dst: DevicePtr, src: &[u8]) -> CudaResult<()> {
        let a = self
            .allocs
            .get_mut(&dst.alloc)
            .ok_or(CudaError::InvalidDevicePointer)?;
        let end = dst
            .offset
            .checked_add(src.len())
            .ok_or(CudaError::InvalidValue)?;
        if end > a.logical {
            return Err(CudaError::InvalidValue);
        }
        if dst.offset < a.data.len() {
            let n = src.len().min(a.data.len() - dst.offset);
            a.data[dst.offset..dst.offset + n].copy_from_slice(&src[..n]);
        }
        Ok(())
    }

    /// Copy device bytes out to host memory. Reads beyond the backing
    /// store yield zeros (see the fidelity-limit docs).
    pub fn read(&self, src: DevicePtr, dst: &mut [u8]) -> CudaResult<()> {
        let a = self
            .allocs
            .get(&src.alloc)
            .ok_or(CudaError::InvalidDevicePointer)?;
        let end = src
            .offset
            .checked_add(dst.len())
            .ok_or(CudaError::InvalidValue)?;
        if end > a.logical {
            return Err(CudaError::InvalidValue);
        }
        dst.fill(0);
        if src.offset < a.data.len() {
            let n = dst.len().min(a.data.len() - src.offset);
            dst[..n].copy_from_slice(&a.data[src.offset..src.offset + n]);
        }
        Ok(())
    }

    /// Device-to-device copy (may be within one allocation; overlapping
    /// ranges copy via a temporary, like `cudaMemcpy` with `cudaMemcpyDeviceToDevice`).
    pub fn copy(&mut self, dst: DevicePtr, src: DevicePtr, len: usize) -> CudaResult<()> {
        let mut tmp = vec![0u8; len];
        self.read(src, &mut tmp)?;
        self.write(dst, &tmp)
    }

    /// `cudaMemset`: fill `len` bytes with `value`.
    pub fn memset(&mut self, dst: DevicePtr, value: u8, len: usize) -> CudaResult<()> {
        let a = self
            .allocs
            .get_mut(&dst.alloc)
            .ok_or(CudaError::InvalidDevicePointer)?;
        let end = dst.offset.checked_add(len).ok_or(CudaError::InvalidValue)?;
        if end > a.logical {
            return Err(CudaError::InvalidValue);
        }
        if dst.offset < a.data.len() {
            let n = len.min(a.data.len() - dst.offset);
            a.data[dst.offset..dst.offset + n].fill(value);
        }
        Ok(())
    }

    /// Typed write of an `f64` slice.
    pub fn write_f64(&mut self, dst: DevicePtr, src: &[f64]) -> CudaResult<()> {
        let bytes: Vec<u8> = src.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write(dst, &bytes)
    }

    /// Typed read of an `f64` slice.
    pub fn read_f64(&self, src: DevicePtr, dst: &mut [f64]) -> CudaResult<()> {
        let mut bytes = vec![0u8; dst.len() * 8];
        self.read(src, &mut bytes)?;
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            dst[i] = f64::from_le_bytes(chunk.try_into().unwrap());
        }
        Ok(())
    }

    /// Apply an in-place transformation to an allocation viewed as `f64`s.
    /// This is how simulated kernels with real effects touch device data.
    pub fn map_f64(
        &mut self,
        ptr: DevicePtr,
        len: usize,
        f: impl FnMut(usize, f64) -> f64,
    ) -> CudaResult<()> {
        let mut vals = vec![0.0f64; len];
        self.read_f64(ptr, &mut vals)?;
        let mut f = f;
        for (i, v) in vals.iter_mut().enumerate() {
            *v = f(i, *v);
        }
        self.write_f64(ptr, &vals)
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark of allocated bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.allocs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> DeviceHeap {
        DeviceHeap::new(1 << 20)
    }

    #[test]
    fn roundtrip_bytes() {
        let mut h = heap();
        let p = h.malloc(16).unwrap();
        h.write(p, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        h.read(p, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn roundtrip_f64_with_offset() {
        let mut h = heap();
        let p = h.malloc(64).unwrap();
        h.write_f64(p.byte_add(16), &[2.5, -1.0]).unwrap();
        let mut out = [0.0f64; 2];
        h.read_f64(p.byte_add(16), &mut out).unwrap();
        assert_eq!(out, [2.5, -1.0]);
    }

    #[test]
    fn oob_write_fails() {
        let mut h = heap();
        let p = h.malloc(8).unwrap();
        assert_eq!(h.write(p, &[0u8; 9]).unwrap_err(), CudaError::InvalidValue);
        assert_eq!(
            h.write(p.byte_add(4), &[0u8; 5]).unwrap_err(),
            CudaError::InvalidValue
        );
    }

    #[test]
    fn capacity_enforced_and_freed() {
        let mut h = DeviceHeap::new(100);
        let a = h.malloc(60).unwrap();
        assert_eq!(h.malloc(60).unwrap_err(), CudaError::MemoryAllocation);
        h.free(a).unwrap();
        assert!(h.malloc(60).is_ok());
        assert_eq!(h.peak(), 60);
    }

    #[test]
    fn double_free_fails() {
        let mut h = heap();
        let p = h.malloc(8).unwrap();
        h.free(p).unwrap();
        assert_eq!(h.free(p).unwrap_err(), CudaError::InvalidDevicePointer);
    }

    #[test]
    fn free_of_interior_pointer_fails() {
        let mut h = heap();
        let p = h.malloc(8).unwrap();
        assert_eq!(
            h.free(p.byte_add(4)).unwrap_err(),
            CudaError::InvalidDevicePointer
        );
    }

    #[test]
    fn memset_fills() {
        let mut h = heap();
        let p = h.malloc(8).unwrap();
        h.memset(p.byte_add(2), 0xAB, 4).unwrap();
        let mut out = [0u8; 8];
        h.read(p, &mut out).unwrap();
        assert_eq!(out, [0, 0, 0xAB, 0xAB, 0xAB, 0xAB, 0, 0]);
    }

    #[test]
    fn d2d_copy_handles_overlap() {
        let mut h = heap();
        let p = h.malloc(8).unwrap();
        h.write(p, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        h.copy(p.byte_add(2), p, 4).unwrap();
        let mut out = [0u8; 8];
        h.read(p, &mut out).unwrap();
        assert_eq!(out, [1, 2, 1, 2, 3, 4, 7, 8]);
    }

    #[test]
    fn map_f64_transforms_in_place() {
        let mut h = heap();
        let p = h.malloc(24).unwrap();
        h.write_f64(p, &[1.0, 2.0, 3.0]).unwrap();
        h.map_f64(p, 3, |_, v| v * v).unwrap();
        let mut out = [0.0; 3];
        h.read_f64(p, &mut out).unwrap();
        assert_eq!(out, [1.0, 4.0, 9.0]);
    }

    #[test]
    fn fidelity_limit_truncates_backing_but_keeps_bounds() {
        let mut h = DeviceHeap::with_fidelity(1 << 30, 8);
        let p = h.malloc(32).unwrap();
        // writes past the backing are accepted (timing-only region)
        h.write(p, &[7u8; 32]).unwrap();
        let mut out = [0u8; 32];
        h.read(p, &mut out).unwrap();
        assert_eq!(&out[..8], &[7u8; 8]); // backed prefix is real
        assert_eq!(&out[8..], &[0u8; 24]); // beyond backing reads zero
                                           // but true out-of-bounds is still an error
        assert_eq!(h.write(p, &[0u8; 33]).unwrap_err(), CudaError::InvalidValue);
        // capacity accounting uses the logical size
        assert_eq!(h.used(), 32);
        // memset respects the same rules
        h.memset(p.byte_add(4), 0xEE, 28).unwrap();
        h.read(p, &mut out).unwrap();
        assert_eq!(out[4], 0xEE);
        assert_eq!(out[9], 0);
    }

    #[test]
    fn null_pointer_is_invalid() {
        let h = heap();
        let mut out = [0u8; 1];
        assert_eq!(
            h.read(DevicePtr::NULL, &mut out).unwrap_err(),
            CudaError::InvalidDevicePointer
        );
        assert!(DevicePtr::NULL.is_null());
    }
}
