//! CUDA-style error codes.
//!
//! The simulated runtime reports failures through [`CudaError`], mirroring
//! the `cudaError_t` values a real CUDA 3.1 runtime returns. IPM's wrappers
//! pass return codes through unchanged (Fig. 2 of the paper), so the
//! monitored and unmonitored stacks must agree on this type.

use std::fmt;

/// Result alias used across the simulated runtime and driver APIs.
pub type CudaResult<T> = Result<T, CudaError>;

/// Error codes modeled on `cudaError_t` / `CUresult`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CudaError {
    /// Asynchronous operation has not completed (`cudaErrorNotReady`).
    /// Returned by `cudaEventQuery` / `cudaStreamQuery`.
    NotReady,
    /// Out of device memory (`cudaErrorMemoryAllocation`).
    MemoryAllocation,
    /// A pointer argument does not reference a live allocation
    /// (`cudaErrorInvalidDevicePointer`).
    InvalidDevicePointer,
    /// Copy would run past the end of an allocation or host buffer
    /// (`cudaErrorInvalidValue`).
    InvalidValue,
    /// Unknown or destroyed stream handle (`cudaErrorInvalidResourceHandle`).
    InvalidResourceHandle,
    /// Event used before being recorded.
    EventNotRecorded,
    /// Device ordinal out of range (`cudaErrorInvalidDevice`).
    InvalidDevice,
    /// `cudaLaunch` without a preceding `cudaConfigureCall`
    /// (`cudaErrorMissingConfiguration`).
    MissingConfiguration,
    /// Launch configuration exceeds device limits
    /// (`cudaErrorInvalidConfiguration`).
    InvalidConfiguration,
    /// Driver API call before `cuInit` (`CUDA_ERROR_NOT_INITIALIZED`).
    NotInitialized,
}

impl CudaError {
    /// The `cudaGetErrorString`-style description.
    pub fn as_str(self) -> &'static str {
        match self {
            CudaError::NotReady => "device not ready",
            CudaError::MemoryAllocation => "out of memory",
            CudaError::InvalidDevicePointer => "invalid device pointer",
            CudaError::InvalidValue => "invalid argument",
            CudaError::InvalidResourceHandle => "invalid resource handle",
            CudaError::EventNotRecorded => "event has not been recorded",
            CudaError::InvalidDevice => "invalid device ordinal",
            CudaError::MissingConfiguration => "launch without configuration",
            CudaError::InvalidConfiguration => "invalid launch configuration",
            CudaError::NotInitialized => "driver not initialized",
        }
    }
}

impl fmt::Display for CudaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::error::Error for CudaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_strings_are_distinct() {
        let all = [
            CudaError::NotReady,
            CudaError::MemoryAllocation,
            CudaError::InvalidDevicePointer,
            CudaError::InvalidValue,
            CudaError::InvalidResourceHandle,
            CudaError::EventNotRecorded,
            CudaError::InvalidDevice,
            CudaError::MissingConfiguration,
            CudaError::InvalidConfiguration,
            CudaError::NotInitialized,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.as_str(), b.as_str());
            }
        }
    }

    #[test]
    fn display_matches_as_str() {
        assert_eq!(CudaError::NotReady.to_string(), "device not ready");
    }
}
