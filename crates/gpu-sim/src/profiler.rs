//! The device-side ground-truth profiler (`CUDA_PROFILE=1` analogue).
//!
//! Section IV-A of the paper validates IPM's event-based kernel timing
//! against "the CUDA profiler", which the real runtime activates through the
//! `CUDA_PROFILE` environment variable and which logs per-invocation kernel
//! statistics to a file. Our simulator records exactly what that profiler
//! sees: the **true device-side duration** of every kernel and memory
//! transfer, free of the event-bracketing overhead that IPM's method pays.
//! This is the comparator column of Table I.

use crate::device::StreamId;

/// Kind of device operation recorded by the profiler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfKind {
    Kernel,
    MemcpyH2D,
    MemcpyD2H,
    MemcpyD2D,
    MemcpyToSymbol,
    Memset,
}

/// One line of the profiler log.
#[derive(Clone, Debug)]
pub struct ProfRecord {
    /// Kernel symbol or `memcpy*` method name.
    pub method: String,
    pub kind: ProfKind,
    pub stream: StreamId,
    /// Device start timestamp (virtual seconds).
    pub start: f64,
    /// True device-side duration (virtual seconds).
    pub gputime: f64,
    /// Host-side duration of the submitting call (virtual seconds).
    pub cputime: f64,
    /// Process-unique correlation id linking this device record to the
    /// host-side API call that submitted it (0 when untracked). The
    /// nvprof/CUPTI `correlationId` analogue; trace exporters use it to
    /// draw launch→kernel flow arrows.
    pub corr: u64,
}

/// Accumulates profiler records for one context.
#[derive(Debug, Default)]
pub struct Profiler {
    enabled: bool,
    records: Vec<ProfRecord>,
}

impl Profiler {
    /// A profiler in the given state; disabled profilers drop records.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            records: Vec::new(),
        }
    }

    /// Whether recording is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one device operation (no-op when disabled).
    pub fn record(&mut self, rec: ProfRecord) {
        if self.enabled {
            self.records.push(rec);
        }
    }

    /// All records so far, in submission order.
    pub fn records(&self) -> &[ProfRecord] {
        &self.records
    }

    /// Sum of true device durations for the kernel `name` — the number the
    /// paper's Table I derives from the CUDA profiler log ("we sum the
    /// kernel execution times over all invocations").
    pub fn kernel_time_total(&self, name: &str) -> f64 {
        self.records
            .iter()
            .filter(|r| r.kind == ProfKind::Kernel && r.method == name)
            .map(|r| r.gputime)
            .sum()
    }

    /// Sum of true device durations over *all* kernels.
    pub fn all_kernel_time(&self) -> f64 {
        self.records
            .iter()
            .filter(|r| r.kind == ProfKind::Kernel)
            .map(|r| r.gputime)
            .sum()
    }

    /// Number of kernel invocations of `name`.
    pub fn kernel_invocations(&self, name: &str) -> usize {
        self.records
            .iter()
            .filter(|r| r.kind == ProfKind::Kernel && r.method == name)
            .count()
    }

    /// Distinct kernel names seen, in first-seen order.
    pub fn kernel_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for r in &self.records {
            if r.kind == ProfKind::Kernel && !names.iter().any(|n| n == &r.method) {
                names.push(r.method.clone());
            }
        }
        names
    }

    /// Render the log in the text format of the CUDA 3.x profiler:
    ///
    /// ```text
    /// # CUDA_PROFILE_LOG_VERSION 2.0
    /// method=[ square ] gputime=[ 1153.376 ] cputime=[ 8.000 ]
    /// ```
    ///
    /// Times are microseconds, as in the real log.
    pub fn render_log(&self) -> String {
        let mut out = String::from("# CUDA_PROFILE_LOG_VERSION 2.0\n# CUDA_DEVICE 0 Tesla C2050\n");
        for r in &self.records {
            out.push_str(&format!(
                "method=[ {} ] gputime=[ {:.3} ] cputime=[ {:.3} ]\n",
                r.method,
                r.gputime * 1e6,
                r.cputime * 1e6,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(method: &str, kind: ProfKind, gputime: f64) -> ProfRecord {
        ProfRecord {
            method: method.to_owned(),
            kind,
            stream: StreamId::DEFAULT,
            start: 0.0,
            gputime,
            cputime: 1e-6,
            corr: 0,
        }
    }

    #[test]
    fn disabled_profiler_drops_records() {
        let mut p = Profiler::new(false);
        p.record(rec("k", ProfKind::Kernel, 0.1));
        assert!(p.records().is_empty());
        assert_eq!(p.kernel_time_total("k"), 0.0);
    }

    #[test]
    fn kernel_totals_sum_invocations() {
        let mut p = Profiler::new(true);
        p.record(rec("k", ProfKind::Kernel, 0.1));
        p.record(rec("k", ProfKind::Kernel, 0.2));
        p.record(rec("other", ProfKind::Kernel, 1.0));
        p.record(rec("memcpyHtoD", ProfKind::MemcpyH2D, 5.0));
        assert!((p.kernel_time_total("k") - 0.3).abs() < 1e-12);
        assert_eq!(p.kernel_invocations("k"), 2);
        assert!((p.all_kernel_time() - 1.3).abs() < 1e-12);
        assert_eq!(p.kernel_names(), vec!["k".to_owned(), "other".to_owned()]);
    }

    #[test]
    fn log_format_is_cuda_profile_like() {
        let mut p = Profiler::new(true);
        p.record(rec("square", ProfKind::Kernel, 1.153376e-3));
        let log = p.render_log();
        assert!(log.starts_with("# CUDA_PROFILE_LOG_VERSION 2.0"));
        assert!(log.contains("method=[ square ] gputime=[ 1153.376 ]"));
    }
}
