//! The interposable CUDA API surface.
//!
//! [`CudaApi`] is the seam that plays the role of dynamic library
//! interposition (`LD_PRELOAD` / `ld --wrap`) in the paper: applications
//! program against this trait, and the process can install either the bare
//! runtime ([`GpuRuntime`] implements the trait directly — the "unmonitored"
//! link) or IPM's monitoring layer (`ipm-core`'s `IpmCuda`, which wraps a
//! `GpuRuntime` and forwards every call — the "`LD_PRELOAD`ed" link). The
//! application source is identical in both cases, which is the paper's
//! headline deployment property: *no source changes, recompilation, or
//! re-linking*.

use crate::device::{DeviceProperties, EventId, StreamId};
use crate::error::CudaResult;
use crate::kernel::{Kernel, KernelArg, LaunchConfig};
use crate::memory::DevicePtr;
use crate::runtime::GpuRuntime;

/// The CUDA runtime API as seen by applications (object-safe).
///
/// Each method's doc comment leads with the backticked `cuda*` entry point
/// it models — `ipm-speccheck` extracts those names as the modeled facade
/// surface and reconciles them against the call spec and the monitor
/// wrappers, so keep them in the `` /// `cudaXxx` `` form. See
/// [`GpuRuntime`] for the timing semantics of each call.
pub trait CudaApi: Send + Sync {
    /// `cudaMalloc`.
    fn cuda_malloc(&self, size: usize) -> CudaResult<DevicePtr>;
    /// `cudaFree`.
    fn cuda_free(&self, ptr: DevicePtr) -> CudaResult<()>;
    /// `cudaMemcpy` (host→device).
    fn cuda_memcpy_h2d(&self, dst: DevicePtr, src: &[u8]) -> CudaResult<()>;
    /// `cudaMemcpy` (device→host).
    fn cuda_memcpy_d2h(&self, dst: &mut [u8], src: DevicePtr) -> CudaResult<()>;
    /// Scale adapter: a synchronous H2D copy of `total_bytes` virtual
    /// bytes of which only the `src` prefix is physically transferred
    /// (see `GpuRuntime::memcpy_h2d_sized`).
    fn cuda_memcpy_h2d_sized(&self, dst: DevicePtr, src: &[u8], total_bytes: u64)
        -> CudaResult<()>;
    /// Scale adapter: the D2H counterpart of `cuda_memcpy_h2d_sized`.
    fn cuda_memcpy_d2h_sized(
        &self,
        dst: &mut [u8],
        src: DevicePtr,
        total_bytes: u64,
    ) -> CudaResult<()>;
    /// `cudaMemcpy` (device→device).
    fn cuda_memcpy_d2d(&self, dst: DevicePtr, src: DevicePtr, len: usize) -> CudaResult<()>;
    /// `cudaMemcpyAsync` (host→device).
    fn cuda_memcpy_h2d_async(&self, dst: DevicePtr, src: &[u8], stream: StreamId)
        -> CudaResult<()>;
    /// `cudaMemcpyAsync` (device→host).
    fn cuda_memcpy_d2h_async(
        &self,
        dst: &mut [u8],
        src: DevicePtr,
        stream: StreamId,
    ) -> CudaResult<()>;
    /// `cudaMemcpyToSymbol`.
    fn cuda_memcpy_to_symbol(&self, symbol: &str, src: &[u8]) -> CudaResult<()>;
    /// `cudaMemset`.
    fn cuda_memset(&self, dst: DevicePtr, value: u8, len: usize) -> CudaResult<()>;
    /// `cudaConfigureCall`.
    fn cuda_configure_call(&self, config: LaunchConfig) -> CudaResult<()>;
    /// `cudaSetupArgument`.
    fn cuda_setup_argument(&self, arg: KernelArg) -> CudaResult<()>;
    /// `cudaLaunch`.
    fn cuda_launch(&self, kernel: &Kernel) -> CudaResult<()>;
    /// `cudaStreamCreate`.
    fn cuda_stream_create(&self) -> CudaResult<StreamId>;
    /// `cudaStreamDestroy`.
    fn cuda_stream_destroy(&self, stream: StreamId) -> CudaResult<()>;
    /// `cudaStreamSynchronize`.
    fn cuda_stream_synchronize(&self, stream: StreamId) -> CudaResult<()>;
    /// `cudaStreamQuery`.
    fn cuda_stream_query(&self, stream: StreamId) -> CudaResult<()>;
    /// `cudaEventCreate`.
    fn cuda_event_create(&self) -> CudaResult<EventId>;
    /// `cudaEventDestroy`.
    fn cuda_event_destroy(&self, event: EventId) -> CudaResult<()>;
    /// `cudaEventRecord`.
    fn cuda_event_record(&self, event: EventId, stream: StreamId) -> CudaResult<()>;
    /// `cudaEventQuery`.
    fn cuda_event_query(&self, event: EventId) -> CudaResult<()>;
    /// `cudaEventSynchronize`.
    fn cuda_event_synchronize(&self, event: EventId) -> CudaResult<()>;
    /// `cudaEventElapsedTime`.
    fn cuda_event_elapsed_time(&self, start: EventId, stop: EventId) -> CudaResult<f64>;
    /// `cudaThreadSynchronize`.
    fn cuda_thread_synchronize(&self) -> CudaResult<()>;
    /// `cudaGetDeviceCount`.
    fn cuda_get_device_count(&self) -> CudaResult<i32>;
    /// `cudaSetDevice`.
    fn cuda_set_device(&self, ordinal: i32) -> CudaResult<()>;
    /// `cudaGetDeviceProperties`.
    fn cuda_get_device_properties(&self) -> CudaResult<DeviceProperties>;
    /// `cudaGetLastError`: returns and clears the sticky error.
    fn cuda_get_last_error(&self) -> Option<crate::error::CudaError>;

    /// Correlation id of the calling thread's most recent kernel launch
    /// (the CUPTI `correlationId` analogue), 0 when the backend does not
    /// track launches. Defaulted so alternative backends and wrappers stay
    /// source-compatible.
    fn cuda_last_launch_correlation_id(&self) -> u64 {
        0
    }

    /// Absolute device completion timestamp of a recorded event, for
    /// placing event-bracketed intervals on the device timeline. Defaulted
    /// to "unsupported" (`EventNotRecorded`) for backends without
    /// timestamp introspection; consumers must degrade gracefully.
    fn cuda_event_timestamp(&self, _event: EventId) -> CudaResult<f64> {
        Err(crate::error::CudaError::EventNotRecorded)
    }
}

impl CudaApi for GpuRuntime {
    fn cuda_malloc(&self, size: usize) -> CudaResult<DevicePtr> {
        self.malloc(size)
    }
    fn cuda_free(&self, ptr: DevicePtr) -> CudaResult<()> {
        self.free(ptr)
    }
    fn cuda_memcpy_h2d(&self, dst: DevicePtr, src: &[u8]) -> CudaResult<()> {
        self.memcpy_h2d(dst, src)
    }
    fn cuda_memcpy_d2h(&self, dst: &mut [u8], src: DevicePtr) -> CudaResult<()> {
        self.memcpy_d2h(dst, src)
    }
    fn cuda_memcpy_h2d_sized(
        &self,
        dst: DevicePtr,
        src: &[u8],
        total_bytes: u64,
    ) -> CudaResult<()> {
        self.memcpy_h2d_sized(dst, src, total_bytes)
    }
    fn cuda_memcpy_d2h_sized(
        &self,
        dst: &mut [u8],
        src: DevicePtr,
        total_bytes: u64,
    ) -> CudaResult<()> {
        self.memcpy_d2h_sized(dst, src, total_bytes)
    }
    fn cuda_memcpy_d2d(&self, dst: DevicePtr, src: DevicePtr, len: usize) -> CudaResult<()> {
        self.memcpy_d2d(dst, src, len)
    }
    fn cuda_memcpy_h2d_async(
        &self,
        dst: DevicePtr,
        src: &[u8],
        stream: StreamId,
    ) -> CudaResult<()> {
        self.memcpy_h2d_async(dst, src, stream)
    }
    fn cuda_memcpy_d2h_async(
        &self,
        dst: &mut [u8],
        src: DevicePtr,
        stream: StreamId,
    ) -> CudaResult<()> {
        self.memcpy_d2h_async(dst, src, stream)
    }
    fn cuda_memcpy_to_symbol(&self, symbol: &str, src: &[u8]) -> CudaResult<()> {
        self.memcpy_to_symbol(symbol, src)
    }
    fn cuda_memset(&self, dst: DevicePtr, value: u8, len: usize) -> CudaResult<()> {
        self.memset(dst, value, len)
    }
    fn cuda_configure_call(&self, config: LaunchConfig) -> CudaResult<()> {
        self.configure_call(config)
    }
    fn cuda_setup_argument(&self, arg: KernelArg) -> CudaResult<()> {
        self.setup_argument(arg)
    }
    fn cuda_launch(&self, kernel: &Kernel) -> CudaResult<()> {
        self.launch(kernel)
    }
    fn cuda_stream_create(&self) -> CudaResult<StreamId> {
        self.stream_create()
    }
    fn cuda_stream_destroy(&self, stream: StreamId) -> CudaResult<()> {
        self.stream_destroy(stream)
    }
    fn cuda_stream_synchronize(&self, stream: StreamId) -> CudaResult<()> {
        self.stream_synchronize(stream)
    }
    fn cuda_stream_query(&self, stream: StreamId) -> CudaResult<()> {
        self.stream_query(stream)
    }
    fn cuda_event_create(&self) -> CudaResult<EventId> {
        self.event_create()
    }
    fn cuda_event_destroy(&self, event: EventId) -> CudaResult<()> {
        self.event_destroy(event)
    }
    fn cuda_event_record(&self, event: EventId, stream: StreamId) -> CudaResult<()> {
        self.event_record(event, stream)
    }
    fn cuda_event_query(&self, event: EventId) -> CudaResult<()> {
        self.event_query(event)
    }
    fn cuda_event_synchronize(&self, event: EventId) -> CudaResult<()> {
        self.event_synchronize(event)
    }
    fn cuda_event_elapsed_time(&self, start: EventId, stop: EventId) -> CudaResult<f64> {
        self.event_elapsed_time(start, stop)
    }
    fn cuda_thread_synchronize(&self) -> CudaResult<()> {
        self.thread_synchronize()
    }
    fn cuda_get_device_count(&self) -> CudaResult<i32> {
        self.get_device_count()
    }
    fn cuda_set_device(&self, ordinal: i32) -> CudaResult<()> {
        self.set_device(ordinal)
    }
    fn cuda_get_device_properties(&self) -> CudaResult<DeviceProperties> {
        self.get_device_properties()
    }
    fn cuda_get_last_error(&self) -> Option<crate::error::CudaError> {
        self.get_last_error()
    }
    fn cuda_last_launch_correlation_id(&self) -> u64 {
        crate::runtime::last_launch_correlation_id()
    }
    fn cuda_event_timestamp(&self, event: EventId) -> CudaResult<f64> {
        self.event_timestamp(event)
    }
}

/// Launch `kernel` via the canonical `cudaConfigureCall` →
/// `cudaSetupArgument`* → `cudaLaunch` sequence, as `nvcc`-generated host
/// stubs do. Going through the trio means an interposition layer sees the
/// same three calls the paper's IPM wrappers see.
pub fn launch_kernel(
    api: &dyn CudaApi,
    kernel: &Kernel,
    config: LaunchConfig,
    args: &[KernelArg],
) -> CudaResult<()> {
    api.cuda_configure_call(config)?;
    for &arg in args {
        api.cuda_setup_argument(arg)?;
    }
    api.cuda_launch(kernel)
}

/// Typed convenience: synchronous H2D copy of an `f64` slice.
pub fn memcpy_h2d_f64(api: &dyn CudaApi, dst: DevicePtr, src: &[f64]) -> CudaResult<()> {
    let bytes: Vec<u8> = src.iter().flat_map(|v| v.to_le_bytes()).collect();
    api.cuda_memcpy_h2d(dst, &bytes)
}

/// Typed convenience: synchronous D2H copy into an `f64` slice.
pub fn memcpy_d2h_f64(api: &dyn CudaApi, dst: &mut [f64], src: DevicePtr) -> CudaResult<()> {
    let mut bytes = vec![0u8; dst.len() * 8];
    api.cuda_memcpy_d2h(&mut bytes, src)?;
    for (i, chunk) in bytes.chunks_exact(8).enumerate() {
        dst[i] = f64::from_le_bytes(chunk.try_into().unwrap());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::kernel::KernelCost;

    fn rt() -> GpuRuntime {
        GpuRuntime::single(GpuConfig::dirac_node().with_context_init(0.0))
    }

    #[test]
    fn trait_object_dispatch_works() {
        let rt = rt();
        let api: &dyn CudaApi = &rt;
        let p = api.cuda_malloc(64).unwrap();
        api.cuda_memset(p, 0, 64).unwrap();
        api.cuda_free(p).unwrap();
    }

    #[test]
    fn launch_helper_uses_the_trio() {
        let rt = rt();
        let k = Kernel::timed("k", KernelCost::Fixed(0.01));
        launch_kernel(
            &rt,
            &k,
            LaunchConfig::simple(4u32, 64u32),
            &[KernelArg::I32(7)],
        )
        .unwrap();
        rt.cuda_thread_synchronize().unwrap();
        assert!(rt.clock().now() >= 0.01);
    }

    #[test]
    fn typed_f64_copies_roundtrip() {
        let rt = rt();
        let p = rt.cuda_malloc(32).unwrap();
        memcpy_h2d_f64(&rt, p, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut out = [0.0f64; 4];
        memcpy_d2h_f64(&rt, &mut out, p).unwrap();
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
    }
}
