//! GPU hardware performance counters.
//!
//! The paper's first item of future work (§VI): "the integration of GPU
//! hardware performance counters would be useful for gaining more insight
//! into kernel behavior than is possible from timing information only.
//! Unfortunately there is currently no documented interface to access the
//! counters" — in 2011. Our simulated device *can* expose them: when
//! [`crate::GpuConfig::counters`] is set, every kernel execution
//! accumulates per-kernel counters (invocations, flops, DRAM traffic,
//! thread count, device time), the data a CUPTI/PAPI-CUDA component would
//! deliver. `ipm-core`'s `papi` module reads these as IPM's "GPU counter
//! component".
//!
//! Roofline-cost kernels report exact modeled flops/bytes; fixed-cost
//! kernels report only time and launch geometry (their arithmetic content
//! is unknown to the model, as it would be to a timing-only tool).

use std::collections::HashMap;

/// Accumulated counters for one kernel symbol.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelCounters {
    /// Number of launches.
    pub invocations: u64,
    /// Floating-point operations executed (0 for kernels whose cost model
    /// does not specify arithmetic).
    pub flops: f64,
    /// Device-memory bytes moved.
    pub dram_bytes: f64,
    /// Total CUDA threads launched.
    pub threads: u64,
    /// Device time occupied, seconds.
    pub device_time: f64,
}

impl KernelCounters {
    /// Achieved flops per second over the kernel's device time.
    pub fn achieved_flops(&self) -> f64 {
        if self.device_time > 0.0 {
            self.flops / self.device_time
        } else {
            0.0
        }
    }

    /// Achieved DRAM bandwidth over the kernel's device time.
    pub fn achieved_bandwidth(&self) -> f64 {
        if self.device_time > 0.0 {
            self.dram_bytes / self.device_time
        } else {
            0.0
        }
    }

    /// Arithmetic intensity (flops per DRAM byte); 0 when no traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.dram_bytes > 0.0 {
            self.flops / self.dram_bytes
        } else {
            0.0
        }
    }

    fn add(&mut self, flops: f64, bytes: f64, threads: u64, time: f64) {
        self.invocations += 1;
        self.flops += flops;
        self.dram_bytes += bytes;
        self.threads += threads;
        self.device_time += time;
    }
}

/// The per-context counter store.
#[derive(Clone, Debug, Default)]
pub struct CounterStore {
    enabled: bool,
    per_kernel: HashMap<String, KernelCounters>,
}

impl CounterStore {
    /// A store in the given state; disabled stores drop events.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            per_kernel: HashMap::new(),
        }
    }

    /// Whether counting is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one kernel execution.
    pub fn record(&mut self, name: &str, flops: f64, bytes: f64, threads: u64, time: f64) {
        if !self.enabled {
            return;
        }
        self.per_kernel
            .entry(name.to_owned())
            .or_default()
            .add(flops, bytes, threads, time);
    }

    /// Counters for one kernel symbol.
    pub fn get(&self, name: &str) -> Option<KernelCounters> {
        self.per_kernel.get(name).copied()
    }

    /// Snapshot of all counters, sorted by device time descending.
    pub fn snapshot(&self) -> Vec<(String, KernelCounters)> {
        let mut out: Vec<_> = self
            .per_kernel
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        out.sort_by(|a, b| {
            b.1.device_time
                .partial_cmp(&a.1.device_time)
                .expect("finite device time")
        });
        out
    }

    /// Aggregate over all kernels.
    pub fn total(&self) -> KernelCounters {
        let mut acc = KernelCounters::default();
        for c in self.per_kernel.values() {
            acc.invocations += c.invocations;
            acc.flops += c.flops;
            acc.dram_bytes += c.dram_bytes;
            acc.threads += c.threads;
            acc.device_time += c.device_time;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_store_drops_records() {
        let mut s = CounterStore::new(false);
        s.record("k", 100.0, 50.0, 32, 1e-3);
        assert!(s.get("k").is_none());
        assert_eq!(s.total(), KernelCounters::default());
    }

    #[test]
    fn records_accumulate_per_kernel() {
        let mut s = CounterStore::new(true);
        s.record("k", 100.0, 50.0, 32, 1e-3);
        s.record("k", 300.0, 150.0, 32, 3e-3);
        s.record("other", 10.0, 0.0, 1, 1e-6);
        let k = s.get("k").unwrap();
        assert_eq!(k.invocations, 2);
        assert_eq!(k.flops, 400.0);
        assert_eq!(k.dram_bytes, 200.0);
        assert_eq!(k.threads, 64);
        let total = s.total();
        assert_eq!(total.invocations, 3);
        assert!((total.flops - 410.0).abs() < 1e-12);
    }

    #[test]
    fn derived_rates() {
        let mut c = KernelCounters::default();
        c.add(2e9, 1e9, 1024, 1.0);
        assert!((c.achieved_flops() - 2e9).abs() < 1.0);
        assert!((c.achieved_bandwidth() - 1e9).abs() < 1.0);
        assert!((c.arithmetic_intensity() - 2.0).abs() < 1e-12);
        // zero-time kernels don't divide by zero
        let z = KernelCounters::default();
        assert_eq!(z.achieved_flops(), 0.0);
        assert_eq!(z.arithmetic_intensity(), 0.0);
    }

    #[test]
    fn snapshot_sorted_by_device_time() {
        let mut s = CounterStore::new(true);
        s.record("small", 1.0, 1.0, 1, 1e-6);
        s.record("big", 1.0, 1.0, 1, 1.0);
        let snap = s.snapshot();
        assert_eq!(snap[0].0, "big");
        assert_eq!(snap[1].0, "small");
    }
}
