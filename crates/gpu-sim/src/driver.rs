//! The CUDA **driver API** (`cu*`) facade.
//!
//! CUDA exposes two overlapping APIs (paper §III-A): the runtime API
//! (`cudaMalloc`, aimed at application developers) and the driver API
//! (`cuMemAlloc`, richer resource control, preferred by library and
//! middleware authors — CUBLAS and CUFFT sit on it). IPM wraps both. This
//! module models the driver API as a thin layer over the same context state,
//! with the driver's explicit initialization discipline: every call before
//! [`DriverContext::cu_init`] fails with `NotInitialized`, mirroring
//! `CUDA_ERROR_NOT_INITIALIZED`.

use crate::device::{EventId, StreamId};
use crate::error::{CudaError, CudaResult};
use crate::kernel::{Kernel, KernelArg, LaunchConfig};
use crate::memory::DevicePtr;
use crate::runtime::GpuRuntime;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A driver-API context over a shared [`GpuRuntime`].
pub struct DriverContext {
    rt: Arc<GpuRuntime>,
    initialized: AtomicBool,
    modules: parking_lot::Mutex<std::collections::HashMap<ModuleHandle, Module>>,
    launch_state: parking_lot::Mutex<LaunchState>,
}

impl DriverContext {
    /// Wrap a runtime in the driver-API discipline (uninitialized).
    pub fn new(rt: Arc<GpuRuntime>) -> Self {
        Self {
            rt,
            initialized: AtomicBool::new(false),
            modules: parking_lot::Mutex::new(std::collections::HashMap::new()),
            launch_state: parking_lot::Mutex::new(LaunchState::default()),
        }
    }

    /// Access to the underlying runtime (used by library layers that mix
    /// driver and runtime calls, as real CUBLAS does).
    pub fn runtime(&self) -> &Arc<GpuRuntime> {
        &self.rt
    }

    fn check_init(&self) -> CudaResult<()> {
        if self.initialized.load(Ordering::Acquire) {
            Ok(())
        } else {
            Err(CudaError::NotInitialized)
        }
    }

    /// `cuInit` — mandatory first driver call.
    pub fn cu_init(&self, flags: u32) -> CudaResult<()> {
        if flags != 0 {
            return Err(CudaError::InvalidValue);
        }
        self.initialized.store(true, Ordering::Release);
        Ok(())
    }

    /// `cuDeviceGetCount`.
    pub fn cu_device_get_count(&self) -> CudaResult<i32> {
        self.check_init()?;
        self.rt.get_device_count()
    }

    /// `cuDeviceGet` — returns the device ordinal handle.
    pub fn cu_device_get(&self, ordinal: i32) -> CudaResult<i32> {
        self.check_init()?;
        if ordinal != 0 {
            return Err(CudaError::InvalidDevice);
        }
        Ok(0)
    }

    /// `cuDeviceGetName`.
    pub fn cu_device_get_name(&self, device: i32) -> CudaResult<String> {
        self.check_init()?;
        if device != 0 {
            return Err(CudaError::InvalidDevice);
        }
        Ok(self.rt.get_device_properties()?.name)
    }

    /// `cuDeviceTotalMem`.
    pub fn cu_device_total_mem(&self, device: i32) -> CudaResult<u64> {
        self.check_init()?;
        if device != 0 {
            return Err(CudaError::InvalidDevice);
        }
        Ok(self.rt.get_device_properties()?.total_global_mem)
    }

    /// `cuMemAlloc`.
    pub fn cu_mem_alloc(&self, size: usize) -> CudaResult<DevicePtr> {
        self.check_init()?;
        self.rt.malloc(size)
    }

    /// `cuMemFree`.
    pub fn cu_mem_free(&self, ptr: DevicePtr) -> CudaResult<()> {
        self.check_init()?;
        self.rt.free(ptr)
    }

    /// `cuMemcpyHtoD` (synchronous, implicit blocking).
    pub fn cu_memcpy_htod(&self, dst: DevicePtr, src: &[u8]) -> CudaResult<()> {
        self.check_init()?;
        self.rt.memcpy_h2d(dst, src)
    }

    /// `cuMemcpyDtoH` (synchronous, implicit blocking).
    pub fn cu_memcpy_dtoh(&self, dst: &mut [u8], src: DevicePtr) -> CudaResult<()> {
        self.check_init()?;
        self.rt.memcpy_d2h(dst, src)
    }

    /// `cuMemcpyDtoD`.
    pub fn cu_memcpy_dtod(&self, dst: DevicePtr, src: DevicePtr, len: usize) -> CudaResult<()> {
        self.check_init()?;
        self.rt.memcpy_d2d(dst, src, len)
    }

    /// `cuMemsetD8` — like `cudaMemset`, **not** implicitly blocking
    /// (the paper's microbenchmark singles out both `cudaMemset` and
    /// `cuMemset` as the exceptions).
    pub fn cu_memset_d8(&self, dst: DevicePtr, value: u8, len: usize) -> CudaResult<()> {
        self.check_init()?;
        self.rt.memset(dst, value, len)
    }

    /// `cuLaunchKernel` — the driver API launches in one call rather than
    /// through the configure/setup/launch trio.
    pub fn cu_launch_kernel(
        &self,
        kernel: &Kernel,
        config: LaunchConfig,
        args: &[KernelArg],
    ) -> CudaResult<()> {
        self.check_init()?;
        self.rt.configure_call(config)?;
        for &arg in args {
            self.rt.setup_argument(arg)?;
        }
        self.rt.launch(kernel)
    }

    /// `cuStreamCreate`.
    pub fn cu_stream_create(&self) -> CudaResult<StreamId> {
        self.check_init()?;
        self.rt.stream_create()
    }

    /// `cuStreamSynchronize`.
    pub fn cu_stream_synchronize(&self, stream: StreamId) -> CudaResult<()> {
        self.check_init()?;
        self.rt.stream_synchronize(stream)
    }

    /// `cuStreamDestroy`.
    pub fn cu_stream_destroy(&self, stream: StreamId) -> CudaResult<()> {
        self.check_init()?;
        self.rt.stream_destroy(stream)
    }

    /// `cuEventCreate`.
    pub fn cu_event_create(&self) -> CudaResult<EventId> {
        self.check_init()?;
        self.rt.event_create()
    }

    /// `cuEventRecord`.
    pub fn cu_event_record(&self, event: EventId, stream: StreamId) -> CudaResult<()> {
        self.check_init()?;
        self.rt.event_record(event, stream)
    }

    /// `cuEventQuery`.
    pub fn cu_event_query(&self, event: EventId) -> CudaResult<()> {
        self.check_init()?;
        self.rt.event_query(event)
    }

    /// `cuEventSynchronize`.
    pub fn cu_event_synchronize(&self, event: EventId) -> CudaResult<()> {
        self.check_init()?;
        self.rt.event_synchronize(event)
    }

    /// `cuEventElapsedTime` (seconds; see the runtime-API note).
    pub fn cu_event_elapsed_time(&self, start: EventId, stop: EventId) -> CudaResult<f64> {
        self.check_init()?;
        self.rt.event_elapsed_time(start, stop)
    }

    /// `cuEventDestroy`.
    pub fn cu_event_destroy(&self, event: EventId) -> CudaResult<()> {
        self.check_init()?;
        self.rt.event_destroy(event)
    }

    /// `cuCtxSynchronize`.
    pub fn cu_ctx_synchronize(&self) -> CudaResult<()> {
        self.check_init()?;
        self.rt.thread_synchronize()
    }

    // ----------------------------------------------------------------
    // Module management and the old-style launch path
    // (cuModuleLoad → cuModuleGetFunction → cuFuncSetBlockShape →
    //  cuParamSet* → cuLaunchGrid), the API pre-4.0 middleware used.
    // ----------------------------------------------------------------

    /// `cuModuleLoad`: register a module (a named bag of kernels).
    pub fn cu_module_load(&self, name: &str) -> CudaResult<ModuleHandle> {
        self.check_init()?;
        let mut modules = self.modules.lock();
        let id = ModuleHandle(modules.len() as u64 + 1);
        modules.insert(
            id,
            Module {
                name: name.to_owned(),
                functions: Vec::new(),
            },
        );
        Ok(id)
    }

    /// Register a kernel in a module so `cuModuleGetFunction` can find it
    /// (the analogue of the kernel being present in the cubin).
    pub fn register_function(&self, module: ModuleHandle, kernel: Kernel) -> CudaResult<()> {
        let mut modules = self.modules.lock();
        let m = modules
            .get_mut(&module)
            .ok_or(CudaError::InvalidResourceHandle)?;
        m.functions.push(kernel);
        Ok(())
    }

    /// `cuModuleGetFunction`.
    pub fn cu_module_get_function(&self, module: ModuleHandle, name: &str) -> CudaResult<Kernel> {
        self.check_init()?;
        let modules = self.modules.lock();
        let m = modules
            .get(&module)
            .ok_or(CudaError::InvalidResourceHandle)?;
        m.functions
            .iter()
            .find(|k| k.name() == name)
            .cloned()
            .ok_or(CudaError::InvalidValue)
    }

    /// `cuFuncSetBlockShape`.
    pub fn cu_func_set_block_shape(&self, x: u32, y: u32, z: u32) -> CudaResult<()> {
        self.check_init()?;
        if x == 0 || y == 0 || z == 0 {
            return Err(CudaError::InvalidValue);
        }
        self.launch_state.lock().block = crate::kernel::Dim3 { x, y, z };
        Ok(())
    }

    /// `cuParamSetv` (also standing in for `cuParamSeti`/`cuParamSetf`:
    /// one entry point taking the already-marshalled argument).
    pub fn cu_param_set(&self, arg: KernelArg) -> CudaResult<()> {
        self.check_init()?;
        self.launch_state.lock().args.push(arg);
        Ok(())
    }

    /// `cuLaunchGrid`: launch with the accumulated block shape and
    /// parameters on the default stream, clearing them afterwards.
    pub fn cu_launch_grid(&self, kernel: &Kernel, grid_x: u32, grid_y: u32) -> CudaResult<()> {
        self.check_init()?;
        let (block, args) = {
            let mut st = self.launch_state.lock();
            (st.block, std::mem::take(&mut st.args))
        };
        let config = LaunchConfig {
            grid: crate::kernel::Dim3::xy(grid_x, grid_y),
            block,
            shared_mem: 0,
            stream: StreamId::DEFAULT,
        };
        self.rt.configure_call(config)?;
        for arg in args {
            self.rt.setup_argument(arg)?;
        }
        self.rt.launch(kernel)
    }
}

/// Handle to a loaded module (`CUmodule`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ModuleHandle(u64);

struct Module {
    #[allow(dead_code)] // kept for diagnostics / future listing APIs
    name: String,
    functions: Vec<Kernel>,
}

#[derive(Default)]
struct LaunchState {
    block: crate::kernel::Dim3,
    args: Vec<KernelArg>,
}

impl Default for crate::kernel::Dim3 {
    fn default() -> Self {
        crate::kernel::Dim3::x(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::kernel::KernelCost;

    fn ctx() -> DriverContext {
        DriverContext::new(Arc::new(GpuRuntime::single(
            GpuConfig::dirac_node().with_context_init(0.0),
        )))
    }

    #[test]
    fn calls_before_cu_init_fail() {
        let c = ctx();
        assert_eq!(
            c.cu_device_get_count().unwrap_err(),
            CudaError::NotInitialized
        );
        assert_eq!(c.cu_mem_alloc(64).unwrap_err(), CudaError::NotInitialized);
        c.cu_init(0).unwrap();
        assert_eq!(c.cu_device_get_count().unwrap(), 1);
    }

    #[test]
    fn cu_init_rejects_flags() {
        let c = ctx();
        assert_eq!(c.cu_init(1).unwrap_err(), CudaError::InvalidValue);
    }

    #[test]
    fn device_queries() {
        let c = ctx();
        c.cu_init(0).unwrap();
        assert_eq!(c.cu_device_get(0).unwrap(), 0);
        assert_eq!(c.cu_device_get(1).unwrap_err(), CudaError::InvalidDevice);
        assert_eq!(c.cu_device_get_name(0).unwrap(), "Tesla C2050");
        assert_eq!(c.cu_device_total_mem(0).unwrap(), 3 * 1024 * 1024 * 1024);
    }

    #[test]
    fn memory_roundtrip_through_driver_api() {
        let c = ctx();
        c.cu_init(0).unwrap();
        let p = c.cu_mem_alloc(8).unwrap();
        c.cu_memcpy_htod(p, &[9, 8, 7, 6, 5, 4, 3, 2]).unwrap();
        let mut out = [0u8; 8];
        c.cu_memcpy_dtoh(&mut out, p).unwrap();
        assert_eq!(out, [9, 8, 7, 6, 5, 4, 3, 2]);
        c.cu_mem_free(p).unwrap();
    }

    #[test]
    fn single_call_launch_and_sync() {
        let c = ctx();
        c.cu_init(0).unwrap();
        let k = Kernel::timed("drv_kernel", KernelCost::Fixed(0.2));
        c.cu_launch_kernel(&k, LaunchConfig::simple(8u32, 32u32), &[])
            .unwrap();
        let before = c.runtime().clock().now();
        c.cu_ctx_synchronize().unwrap();
        assert!(c.runtime().clock().now() >= before + 0.19);
    }

    #[test]
    fn module_and_param_launch_path() {
        let c = ctx();
        c.cu_init(0).unwrap();
        let m = c.cu_module_load("hpl_kernels.cubin").unwrap();
        c.register_function(
            m,
            Kernel::timed("dgemm_nn_e_kernel", KernelCost::Fixed(0.05)),
        )
        .unwrap();
        let f = c.cu_module_get_function(m, "dgemm_nn_e_kernel").unwrap();
        assert_eq!(f.name(), "dgemm_nn_e_kernel");
        assert_eq!(
            c.cu_module_get_function(m, "missing").unwrap_err(),
            CudaError::InvalidValue
        );
        c.cu_func_set_block_shape(16, 16, 1).unwrap();
        c.cu_param_set(KernelArg::I32(128)).unwrap();
        c.cu_launch_grid(&f, 8, 8).unwrap();
        let before = c.runtime().clock().now();
        c.cu_ctx_synchronize().unwrap();
        assert!(c.runtime().clock().now() >= before + 0.049);
        // params were consumed: a second launch starts clean
        c.cu_func_set_block_shape(1, 1, 1).unwrap();
        c.cu_launch_grid(&f, 1, 1).unwrap();
        c.cu_ctx_synchronize().unwrap();
    }

    #[test]
    fn bad_block_shape_rejected() {
        let c = ctx();
        c.cu_init(0).unwrap();
        assert_eq!(
            c.cu_func_set_block_shape(0, 1, 1).unwrap_err(),
            CudaError::InvalidValue
        );
    }

    #[test]
    fn driver_events_bracket_kernels() {
        let c = ctx();
        c.cu_init(0).unwrap();
        let start = c.cu_event_create().unwrap();
        let stop = c.cu_event_create().unwrap();
        c.cu_event_record(start, StreamId::DEFAULT).unwrap();
        let k = Kernel::timed("k", KernelCost::Fixed(0.1));
        c.cu_launch_kernel(&k, LaunchConfig::simple(1u32, 1u32), &[])
            .unwrap();
        c.cu_event_record(stop, StreamId::DEFAULT).unwrap();
        c.cu_ctx_synchronize().unwrap();
        let dt = c.cu_event_elapsed_time(start, stop).unwrap();
        assert!((0.1..0.1 + 1e-3).contains(&dt), "dt = {dt}");
    }
}
