//! Kernel descriptors and launch configuration.
//!
//! A simulated kernel is a name (what IPM reports per `@CUDA_EXEC_STRMxx`
//! entry and the XML per-kernel breakdown), a **cost model** (how long it
//! occupies the device), and optionally a **host-side effect** that applies
//! the kernel's semantics to device memory so applications compute real
//! results.

use crate::memory::{DeviceHeap, DevicePtr};
use std::fmt;
use std::sync::Arc;

/// Grid/block dimensions, as in `<<<grid, block>>>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dim3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Dim3 {
    /// One-dimensional extent.
    pub fn x(x: u32) -> Self {
        Self { x, y: 1, z: 1 }
    }

    /// Two-dimensional extent.
    pub fn xy(x: u32, y: u32) -> Self {
        Self { x, y, z: 1 }
    }

    /// Total element count `x*y*z`.
    pub fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::x(x)
    }
}

/// The execution configuration established by `cudaConfigureCall`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    pub grid: Dim3,
    pub block: Dim3,
    pub shared_mem: usize,
    pub stream: crate::StreamId,
}

impl LaunchConfig {
    /// Configuration on the default stream with no dynamic shared memory.
    pub fn simple(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> Self {
        Self {
            grid: grid.into(),
            block: block.into(),
            shared_mem: 0,
            stream: crate::StreamId::DEFAULT,
        }
    }

    /// Same configuration on an explicit stream.
    pub fn on_stream(mut self, stream: crate::StreamId) -> Self {
        self.stream = stream;
        self
    }

    /// Total number of CUDA threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid.count() * self.block.count()
    }
}

/// How long a kernel occupies the device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KernelCost {
    /// A fixed duration in seconds, independent of the launch shape.
    Fixed(f64),
    /// Roofline model: per-thread work scaled by the launch's total thread
    /// count and priced against the device's compute/bandwidth peaks.
    Roofline {
        /// Floating-point operations per CUDA thread.
        flops_per_thread: f64,
        /// Device-memory bytes moved per CUDA thread.
        bytes_per_thread: f64,
        /// Achieved fraction of the device roofline (0, 1].
        efficiency: f64,
    },
}

impl KernelCost {
    /// A roofline cost with a typical 60% efficiency.
    pub fn roofline(flops_per_thread: f64, bytes_per_thread: f64) -> Self {
        KernelCost::Roofline {
            flops_per_thread,
            bytes_per_thread,
            efficiency: 0.6,
        }
    }
}

/// Kernel arguments (the values `cudaSetupArgument` marshals).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KernelArg {
    Ptr(DevicePtr),
    I32(i32),
    U64(u64),
    F64(f64),
}

impl KernelArg {
    /// The argument as a device pointer, if it is one.
    pub fn as_ptr(&self) -> Option<DevicePtr> {
        match self {
            KernelArg::Ptr(p) => Some(*p),
            _ => None,
        }
    }

    /// The argument as an `i32`, if it is one.
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            KernelArg::I32(v) => Some(*v),
            _ => None,
        }
    }

    /// Size in bytes on the (simulated) argument stack — what the real
    /// `cudaSetupArgument` would push.
    pub fn size(&self) -> usize {
        match self {
            KernelArg::Ptr(_) | KernelArg::U64(_) | KernelArg::F64(_) => 8,
            KernelArg::I32(_) => 4,
        }
    }
}

/// Context handed to a kernel's host-side effect.
pub struct KernelCtx<'a> {
    /// The launch configuration of this invocation.
    pub config: LaunchConfig,
    /// The marshalled arguments.
    pub args: &'a [KernelArg],
    /// The device heap; effects read and write real device bytes.
    pub heap: &'a mut DeviceHeap,
}

/// The host-side semantic effect of a kernel (optional).
pub type KernelEffect = Arc<dyn Fn(&mut KernelCtx<'_>) + Send + Sync>;

/// A simulated `__global__` function.
#[derive(Clone)]
pub struct Kernel {
    name: Arc<str>,
    cost: KernelCost,
    effect: Option<KernelEffect>,
}

impl Kernel {
    /// A kernel with a cost model and no semantic effect (pure timing).
    pub fn timed(name: &str, cost: KernelCost) -> Self {
        Self {
            name: Arc::from(name),
            cost,
            effect: None,
        }
    }

    /// A kernel with both a cost model and a real effect on device memory.
    pub fn with_effect(
        name: &str,
        cost: KernelCost,
        effect: impl Fn(&mut KernelCtx<'_>) + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: Arc::from(name),
            cost,
            effect: Some(Arc::new(effect)),
        }
    }

    /// The kernel symbol name (as reported in profiles).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernel's cost model.
    pub fn cost(&self) -> KernelCost {
        self.cost
    }

    /// The kernel's effect, if any.
    pub(crate) fn effect(&self) -> Option<&KernelEffect> {
        self.effect.as_ref()
    }

    /// Duration of one launch under `model`, before jitter.
    pub fn duration(
        &self,
        config: &LaunchConfig,
        model: &ipm_sim_core::model::GpuComputeModel,
    ) -> f64 {
        match self.cost {
            KernelCost::Fixed(d) => d,
            KernelCost::Roofline {
                flops_per_thread,
                bytes_per_thread,
                efficiency,
            } => {
                let threads = config.total_threads() as f64;
                model.kernel_time(
                    flops_per_thread * threads,
                    bytes_per_thread * threads,
                    efficiency,
                )
            }
        }
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("name", &self.name)
            .field("cost", &self.cost)
            .field("has_effect", &self.effect.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipm_sim_core::model::GpuComputeModel;

    #[test]
    fn dim3_counts() {
        assert_eq!(Dim3::x(100).count(), 100);
        assert_eq!(Dim3::xy(4, 8).count(), 32);
        let d: Dim3 = 7u32.into();
        assert_eq!(d, Dim3::x(7));
    }

    #[test]
    fn launch_config_total_threads() {
        let c = LaunchConfig::simple(100u32, 256u32);
        assert_eq!(c.total_threads(), 25_600);
        assert_eq!(c.stream, crate::StreamId::DEFAULT);
    }

    #[test]
    fn fixed_cost_ignores_shape() {
        let k = Kernel::timed("k", KernelCost::Fixed(0.5));
        let m = GpuComputeModel::tesla_c2050();
        let small = k.duration(&LaunchConfig::simple(1u32, 1u32), &m);
        let big = k.duration(&LaunchConfig::simple(1000u32, 256u32), &m);
        assert_eq!(small, 0.5);
        assert_eq!(big, 0.5);
    }

    #[test]
    fn roofline_cost_scales_with_threads() {
        let k = Kernel::timed("k", KernelCost::roofline(1000.0, 16.0));
        let m = GpuComputeModel::tesla_c2050();
        let t1 = k.duration(&LaunchConfig::simple(100u32, 32u32), &m);
        let t2 = k.duration(&LaunchConfig::simple(200u32, 32u32), &m);
        assert!(t2 > t1);
        assert!((t2 - m.kernel_overhead) / (t1 - m.kernel_overhead) > 1.9);
    }

    #[test]
    fn kernel_arg_accessors() {
        let p = DevicePtr::NULL;
        assert_eq!(KernelArg::Ptr(p).as_ptr(), Some(p));
        assert_eq!(KernelArg::I32(3).as_i32(), Some(3));
        assert_eq!(KernelArg::F64(1.0).as_ptr(), None);
        assert_eq!(KernelArg::I32(3).size(), 4);
        assert_eq!(KernelArg::U64(3).size(), 8);
    }

    #[test]
    fn debug_formats_without_effect_dump() {
        let k = Kernel::with_effect("sq", KernelCost::Fixed(0.1), |_| {});
        let dbg = format!("{k:?}");
        assert!(dbg.contains("sq"));
        assert!(dbg.contains("has_effect: true"));
    }
}
