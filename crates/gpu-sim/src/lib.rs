//! # ipm-gpu-sim
//!
//! A deterministic, virtual-time simulator of a CUDA-3.1-era GPU runtime —
//! the substrate standing in for NVIDIA CUDA in this reproduction of
//! *"Comprehensive Performance Monitoring for GPU Cluster Systems"*.
//!
//! What the paper's IPM observes is not kernels' internal behavior but the
//! **host-visible semantics of the CUDA runtime**: asynchronous launches,
//! implicitly blocking synchronous memory operations, device-side event
//! timestamps, per-stream ordering, an expensive lazy context
//! initialization, and a concurrent-kernel limit of 16. This crate
//! implements all of those faithfully over a virtual clock, with a
//! performance model calibrated to the paper's Tesla C2050 testbed, plus a
//! built-in ground-truth profiler (the `CUDA_PROFILE=1` analogue used as
//! the comparator in the paper's Table I).
//!
//! ## Layout
//!
//! * [`runtime::GpuRuntime`] — the `cuda*` runtime API for one context.
//! * [`driver::DriverContext`] — the `cu*` driver API over the same state.
//! * [`api::CudaApi`] — the object-safe trait applications program against;
//!   the monitoring layer in `ipm-core` interposes on this seam.
//! * [`device::Device`] — one physical GPU, shareable between contexts.
//! * [`profiler::Profiler`] — true device-side durations (`CUDA_PROFILE`).
//!
//! ## Quick taste
//!
//! ```
//! use ipm_gpu_sim::{GpuConfig, GpuRuntime, Kernel, KernelCost, LaunchConfig};
//!
//! let rt = GpuRuntime::single(GpuConfig::dirac_node().with_context_init(0.0));
//! let k = Kernel::timed("demo", KernelCost::Fixed(0.25));
//! rt.configure_call(LaunchConfig::simple(64u32, 128u32)).unwrap();
//! rt.launch(&k).unwrap();              // asynchronous: host barely moves
//! assert!(rt.clock().now() < 0.01);
//! rt.thread_synchronize().unwrap();    // now the host waits for the device
//! assert!(rt.clock().now() >= 0.25);
//! ```

pub mod api;
pub mod config;
pub mod counters;
pub mod device;
pub mod driver;
pub mod error;
pub mod kernel;
pub mod memory;
pub mod profiler;
pub mod runtime;

pub use api::{launch_kernel, memcpy_d2h_f64, memcpy_h2d_f64, CudaApi};
pub use config::GpuConfig;
pub use counters::{CounterStore, KernelCounters};
pub use device::{Device, DeviceProperties, EventId, StreamId};
pub use driver::{DriverContext, ModuleHandle};
pub use error::{CudaError, CudaResult};
pub use kernel::{Dim3, Kernel, KernelArg, KernelCost, KernelCtx, LaunchConfig};
pub use memory::{DeviceHeap, DevicePtr};
pub use profiler::{ProfKind, ProfRecord, Profiler};
pub use runtime::{last_launch_correlation_id, GpuRuntime};
